"""CI observability gate: the traced quickstart pipeline must tell the truth.

Runs the quickstart CLI pipeline (``simulate`` → ``index`` → ``query``) as
real ``python -m repro`` subprocesses with ``REPRO_TRACE`` and
``REPRO_LOG_JSON`` set — the same knobs an operator would export — then
validates everything the subsystem promises:

* every trace file is well-formed (Chrome ``traceEvents`` or JSONL), spans
  cover at least 90% of the command's wall time, and the Chrome variant
  embeds a metrics snapshot;
* every stderr log line is one parseable JSON object with level/logger/
  message fields (no stray prints allowed on the hot paths);
* ``repro stats`` renders both a trace file and an index directory.

Then the **live plane** gets the same treatment on a real 3-worker
localhost cluster: the in-process exporter is started, the pipeline's
index build + query run on the cluster while a background poller scrapes
``/metrics`` mid-run, and the gate asserts that the scrape obeys a
strict OpenMetrics line grammar, that fleet-merged per-worker task
counters and the query-latency histogram are present, that ``/healthz``
reports every worker live with a heartbeat age, and that the sampling
profiler's collapsed-stack output round-trips through its parser.

All traces, captured logs, scrapes, and the profile land in ``--out`` so
the workflow can upload them as artifacts.  Any violation exits non-zero
and fails the job.

Usage::

    PYTHONPATH=src python scripts/ci_obs.py --out .ci/obs
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro.obs import ENV_LOG_JSON, ENV_TRACE, configure_logging, get_logger

logger = get_logger("repro.scripts.ci_obs")

#: Coverage floor for CLI traces: the cli.<command> root span alone covers
#: the whole command, so anything below this means the lifecycle broke.
COVERAGE_FLOOR = 0.9


def fail(message: str) -> None:
    sys.exit(f"observability gate FAILED: {message}")


def run_repro(args: list[str], out: Path, name: str, trace: Path | None) -> str:
    """Run ``python -m repro ...`` traced + JSON-logged; return stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env[ENV_LOG_JSON] = "1"
    if trace is not None:
        env[ENV_TRACE] = str(trace)
    else:
        env.pop(ENV_TRACE, None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
    )
    (out / f"{name}.stdout").write_text(proc.stdout)
    (out / f"{name}.stderr").write_text(proc.stderr)
    if proc.returncode != 0:
        fail(f"`repro {args[0]}` exited {proc.returncode}:\n{proc.stderr}")
    check_json_log_lines(proc.stderr, name)
    return proc.stdout


def check_json_log_lines(stderr: str, name: str) -> None:
    for line in stderr.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            fail(f"{name}: non-JSON stderr line under {ENV_LOG_JSON}: {line!r}")
        for field in ("ts", "level", "logger", "message"):
            if field not in entry:
                fail(f"{name}: log entry missing {field!r}: {line!r}")


def check_chrome_trace(path: Path, command: str) -> None:
    document = json.loads(path.read_text())
    events = document.get("traceEvents")
    if not events:
        fail(f"{path.name}: no traceEvents")
    names = {e["name"] for e in events if e.get("ph") == "X"}
    if f"cli.{command}" not in names:
        fail(f"{path.name}: missing cli.{command} root span (got {sorted(names)})")
    extra = document.get("repro", {})
    coverage = extra.get("coverage", 0.0)
    if coverage < COVERAGE_FLOOR:
        fail(f"{path.name}: spans cover {coverage:.0%} < {COVERAGE_FLOOR:.0%}")
    if "counters" not in extra.get("metrics", {}):
        fail(f"{path.name}: no embedded metrics snapshot")
    logger.info(
        "%s: %d spans, %.0f%% coverage", path.name, len(names), coverage * 100
    )


def check_jsonl_trace(path: Path, command: str) -> None:
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    if header.get("name") != command:
        fail(f"{path.name}: header names {header.get('name')!r}, not {command!r}")
    if header.get("n_spans") != len(lines) - 1:
        fail(f"{path.name}: header n_spans does not match the span lines")
    sidecar = path.with_suffix(".metrics.json")
    if not sidecar.exists():
        fail(f"{path.name}: missing metrics sidecar {sidecar.name}")
    metrics = json.loads(sidecar.read_text())
    if not any(k.startswith("repro.query.seconds") for k in metrics["histograms"]):
        fail(f"{sidecar.name}: query latency histogram absent")
    logger.info("%s: %d spans + metrics sidecar", path.name, len(lines) - 1)


#: One OpenMetrics sample line: name, optional {label="value",...}, value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (?:[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
)
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")

#: Suffixes a sample name may add to its declared family, per kind.
_FAMILY_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
}


def validate_openmetrics(text: str, name: str) -> None:
    """Strict line-grammar check of an exporter scrape.

    Every line must be a ``# TYPE`` declaration, a sample matching
    :data:`_SAMPLE_RE` whose family was declared first with a suffix legal
    for its kind, or the single terminal ``# EOF``.
    """
    if not text.endswith("# EOF\n"):
        fail(f"{name}: scrape does not end with the terminal '# EOF' line")
    families: dict[str, str] = {}
    lines = text.splitlines()
    if lines.count("# EOF") != 1:
        fail(f"{name}: exactly one '# EOF' line expected")
    for lineno, line in enumerate(lines[:-1], start=1):
        declared = _TYPE_RE.match(line)
        if declared:
            if declared.group(1) in families:
                fail(f"{name}:{lineno}: duplicate # TYPE for {declared.group(1)}")
            families[declared.group(1)] = declared.group(2)
            continue
        if line.startswith("#"):
            fail(f"{name}:{lineno}: unexpected comment line {line!r}")
        if not _SAMPLE_RE.match(line):
            fail(f"{name}:{lineno}: malformed sample line {line!r}")
        sample = line.split("{", 1)[0].split(" ", 1)[0]
        if not any(
            sample == family + suffix
            for family, kind in families.items()
            for suffix in _FAMILY_SUFFIXES[kind]
        ):
            fail(f"{name}:{lineno}: sample {sample!r} has no # TYPE family")


def _scrape(url: str) -> str | None:
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.read().decode("utf-8")
    except OSError:
        return None


def check_live_cluster(out: Path) -> None:
    """Exporter + heartbeat shipping + profiler on a real 3-host cluster."""
    from repro import obs
    from repro.core.corpus import Corpus
    from repro.distributed import local_cluster
    from repro.synth import nyc_urban_collection
    from repro.temporal.resolution import TemporalResolution

    exporter = obs.start_exporter(0)
    obs.start_profile()
    mid_run_scrapes: list[str] = []
    done = threading.Event()

    def poll() -> None:
        while not done.is_set():
            text = _scrape(f"{exporter.url}/metrics")
            if text is not None:
                mid_run_scrapes.append(text)
            done.wait(0.2)

    poller = threading.Thread(target=poll, daemon=True, name="ci-obs-poller")
    try:
        collection = nyc_urban_collection(seed=5, n_days=30, scale=0.25)
        corpus = Corpus(collection.datasets, collection.city)
        with local_cluster(3) as engine:
            poller.start()
            index = corpus.build_index(
                temporal=(TemporalResolution.DAY,), engine=engine
            )
            index.query(n_permutations=25, engine=engine)

            # Heartbeats ship metrics deltas on a 1 s cadence; give the
            # fleet registry a few beats to converge, then hold the gate.
            def tasks_counter_workers(text: str) -> set[str]:
                found = set()
                for line in text.splitlines():
                    if line.startswith("repro_worker_tasks_total{"):
                        match = re.search(r'worker="([^"]*)"', line)
                        if match:
                            found.add(match.group(1))
                return found

            required = {f"host{i}" for i in range(3)}
            deadline = time.monotonic() + 30.0
            final = ""
            while time.monotonic() < deadline:
                final = _scrape(f"{exporter.url}/metrics") or final
                if required <= tasks_counter_workers(final):
                    break
                time.sleep(0.5)
            (out / "cluster.metrics").write_text(final)
            validate_openmetrics(final, "cluster.metrics")
            missing = required - tasks_counter_workers(final)
            if missing:
                fail(
                    "per-worker repro_worker_tasks_total never arrived for "
                    f"{sorted(missing)} (heartbeat shipping broken?)"
                )
            if 'repro_query_seconds_bucket{le="' not in final:
                fail("/metrics lacks the query latency histogram buckets")

            health_text = _scrape(f"{exporter.url}/healthz")
            if health_text is None:
                fail("/healthz unreachable while the cluster is live")
            (out / "cluster.healthz.json").write_text(health_text)
            health = json.loads(health_text)
            coordinators = [
                value
                for key, value in health.get("sources", {}).items()
                if key.startswith("coordinator:")
            ]
            if len(coordinators) != 1:
                fail(f"/healthz shows {len(coordinators)} coordinators, not 1")
            workers = coordinators[0].get("workers", {})
            if len(workers) != 3:
                fail(f"/healthz shows {len(workers)} workers, not 3")
            for worker_id, worker in workers.items():
                if not worker.get("live"):
                    fail(f"/healthz reports {worker_id} not live: {worker}")
                if not isinstance(worker.get("heartbeat_age_seconds"), float):
                    fail(f"/healthz {worker_id} lacks heartbeat age: {worker}")
    finally:
        done.set()
        poller.join(timeout=5.0)
        profiler = obs.end_profile()
        obs.stop_exporter()

    if not mid_run_scrapes:
        fail("poller never scraped /metrics while the cluster was running")
    validate_openmetrics(mid_run_scrapes[0], "mid-run scrape")

    if profiler is None or profiler.samples == 0:
        fail("sampling profiler collected no samples during the cluster run")
    profile_path = out / "cluster.collapsed"
    profiler.write(profile_path)
    parsed = obs.parse_collapsed(profile_path.read_text())
    if parsed != profiler.counts():
        fail("collapsed-stack profile did not round-trip through its parser")
    logger.info(
        "live cluster OK: %d mid-run scrapes, %d workers live, "
        "%d profile samples over %d stacks",
        len(mid_run_scrapes),
        len(workers),
        profiler.samples,
        len(parsed),
    )


def main(argv: list[str] | None = None) -> None:
    configure_logging()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=".ci/obs", help="artifact directory")
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    cat, idx = out / "cat", out / "idx"

    simulate = ["simulate", "--out", str(cat), "--days", "21", "--scale", "0.3"]
    simulate += ["--datasets", "taxi,weather", "--seed", "5"]
    run_repro(simulate, out, "simulate", out / "simulate.json")
    check_chrome_trace(out / "simulate.json", "simulate")

    index = ["index", "--data", str(cat), "--out", str(idx), "--temporal", "day"]
    run_repro(index, out, "index", out / "index.json")
    check_chrome_trace(out / "index.json", "index")

    query = ["query", "--index", str(idx), "--permutations", "50", "--seed", "0"]
    run_repro(query, out, "query", out / "query.jsonl")
    check_jsonl_trace(out / "query.jsonl", "query")

    stats_trace = run_repro(
        ["stats", str(out / "index.json")], out, "stats_trace", None
    )
    if "index.build" not in stats_trace:
        fail("`repro stats` on a trace did not render the span breakdown")
    stats_index = run_repro(["stats", str(idx)], out, "stats_index", None)
    if "taxi" not in stats_index:
        fail("`repro stats` on an index did not render per-dataset usage")

    stats_json = run_repro(
        ["stats", "--json", str(idx)], out, "stats_index_json", None
    )
    document = json.loads(stats_json)
    if document.get("type") != "index" or "taxi" not in document.get(
        "per_dataset_bytes", {}
    ):
        fail("`repro stats --json` did not emit the index document")

    check_live_cluster(out)

    logger.info(
        "observability gate OK: traces, logs, stats and the live plane "
        "all validated"
    )


if __name__ == "__main__":
    main()
