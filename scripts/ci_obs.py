"""CI observability gate: the traced quickstart pipeline must tell the truth.

Runs the quickstart CLI pipeline (``simulate`` → ``index`` → ``query``) as
real ``python -m repro`` subprocesses with ``REPRO_TRACE`` and
``REPRO_LOG_JSON`` set — the same knobs an operator would export — then
validates everything the subsystem promises:

* every trace file is well-formed (Chrome ``traceEvents`` or JSONL), spans
  cover at least 90% of the command's wall time, and the Chrome variant
  embeds a metrics snapshot;
* every stderr log line is one parseable JSON object with level/logger/
  message fields (no stray prints allowed on the hot paths);
* ``repro stats`` renders both a trace file and an index directory.

All traces and captured logs land in ``--out`` so the workflow can upload
them as artifacts.  Any violation exits non-zero and fails the job.

Usage::

    PYTHONPATH=src python scripts/ci_obs.py --out .ci/obs
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.obs import ENV_LOG_JSON, ENV_TRACE, configure_logging, get_logger

logger = get_logger("repro.scripts.ci_obs")

#: Coverage floor for CLI traces: the cli.<command> root span alone covers
#: the whole command, so anything below this means the lifecycle broke.
COVERAGE_FLOOR = 0.9


def fail(message: str) -> None:
    sys.exit(f"observability gate FAILED: {message}")


def run_repro(args: list[str], out: Path, name: str, trace: Path | None) -> str:
    """Run ``python -m repro ...`` traced + JSON-logged; return stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env[ENV_LOG_JSON] = "1"
    if trace is not None:
        env[ENV_TRACE] = str(trace)
    else:
        env.pop(ENV_TRACE, None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
    )
    (out / f"{name}.stdout").write_text(proc.stdout)
    (out / f"{name}.stderr").write_text(proc.stderr)
    if proc.returncode != 0:
        fail(f"`repro {args[0]}` exited {proc.returncode}:\n{proc.stderr}")
    check_json_log_lines(proc.stderr, name)
    return proc.stdout


def check_json_log_lines(stderr: str, name: str) -> None:
    for line in stderr.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            fail(f"{name}: non-JSON stderr line under {ENV_LOG_JSON}: {line!r}")
        for field in ("ts", "level", "logger", "message"):
            if field not in entry:
                fail(f"{name}: log entry missing {field!r}: {line!r}")


def check_chrome_trace(path: Path, command: str) -> None:
    document = json.loads(path.read_text())
    events = document.get("traceEvents")
    if not events:
        fail(f"{path.name}: no traceEvents")
    names = {e["name"] for e in events if e.get("ph") == "X"}
    if f"cli.{command}" not in names:
        fail(f"{path.name}: missing cli.{command} root span (got {sorted(names)})")
    extra = document.get("repro", {})
    coverage = extra.get("coverage", 0.0)
    if coverage < COVERAGE_FLOOR:
        fail(f"{path.name}: spans cover {coverage:.0%} < {COVERAGE_FLOOR:.0%}")
    if "counters" not in extra.get("metrics", {}):
        fail(f"{path.name}: no embedded metrics snapshot")
    logger.info(
        "%s: %d spans, %.0f%% coverage", path.name, len(names), coverage * 100
    )


def check_jsonl_trace(path: Path, command: str) -> None:
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    if header.get("name") != command:
        fail(f"{path.name}: header names {header.get('name')!r}, not {command!r}")
    if header.get("n_spans") != len(lines) - 1:
        fail(f"{path.name}: header n_spans does not match the span lines")
    sidecar = path.with_suffix(".metrics.json")
    if not sidecar.exists():
        fail(f"{path.name}: missing metrics sidecar {sidecar.name}")
    metrics = json.loads(sidecar.read_text())
    if not any(k.startswith("repro.query.seconds") for k in metrics["histograms"]):
        fail(f"{sidecar.name}: query latency histogram absent")
    logger.info("%s: %d spans + metrics sidecar", path.name, len(lines) - 1)


def main(argv: list[str] | None = None) -> None:
    configure_logging()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=".ci/obs", help="artifact directory")
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    cat, idx = out / "cat", out / "idx"

    simulate = ["simulate", "--out", str(cat), "--days", "21", "--scale", "0.3"]
    simulate += ["--datasets", "taxi,weather", "--seed", "5"]
    run_repro(simulate, out, "simulate", out / "simulate.json")
    check_chrome_trace(out / "simulate.json", "simulate")

    index = ["index", "--data", str(cat), "--out", str(idx), "--temporal", "day"]
    run_repro(index, out, "index", out / "index.json")
    check_chrome_trace(out / "index.json", "index")

    query = ["query", "--index", str(idx), "--permutations", "50", "--seed", "0"]
    run_repro(query, out, "query", out / "query.jsonl")
    check_jsonl_trace(out / "query.jsonl", "query")

    stats_trace = run_repro(
        ["stats", str(out / "index.json")], out, "stats_trace", None
    )
    if "index.build" not in stats_trace:
        fail("`repro stats` on a trace did not render the span breakdown")
    stats_index = run_repro(["stats", str(idx)], out, "stats_index", None)
    if "taxi" not in stats_index:
        fail("`repro stats` on an index did not render per-dataset usage")

    logger.info("observability gate OK: traces, logs and stats all validated")


if __name__ == "__main__":
    main()
