"""CI chaos scenario: the pipeline must survive an injected-fault plan.

Runs the paper pipeline (index + query) twice over the same synthetic
corpus — once serially in-process, once on the env-steered cluster
(``REPRO_EXECUTOR=cluster`` against live ``repro worker`` daemons) with a
``REPRO_FAULT_PLAN`` armed in every process — and asserts the results are
**bit-identical**.  The coordinator side of the plan arms itself when the
engine builds its coordinator; each worker daemon armed itself at startup
from the same variable.

The plan must be *recoverable* (frame corruption, connection drops,
forced artifact re-fetches, compute delays — not unbounded crashes): the
script additionally asserts the run finished **on the cluster**, i.e. the
graceful-degradation fallback never engaged.

Any divergence, fallback, or missing fault plan exits non-zero, failing
the workflow.

Usage::

    REPRO_EXECUTOR=cluster REPRO_CLUSTER=127.0.0.1:7079 REPRO_WORKERS=3 \
        REPRO_FAULT_PLAN="seed=7;..." PYTHONPATH=src \
        python scripts/ci_chaos.py
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.core.corpus import Corpus
from repro.obs import configure_logging, get_logger
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.distributed.faults import ENV_VAR, FaultPlan
from repro.mapreduce.engine import LocalEngine, default_engine
from repro.spatial.city import CityModel
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution

HOUR = 3600
QUERY_KWARGS = dict(n_permutations=60, seed=3)


def check(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"chaos scenario FAILED: {message}")


def build_corpus() -> Corpus:
    """Two correlated city/hour data sets plus noise (a shrunken §6.2)."""
    rng = np.random.default_rng(5)
    n_hours = 360
    ts = np.arange(n_hours, dtype=np.int64) * HOUR
    t = np.arange(n_hours)
    a = 10 + 1.5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.2, n_hours)
    b = 5 + 0.8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.1, n_hours)
    for e in rng.choice(n_hours - 6, 12, replace=False):
        a[e : e + 4] += 8
        b[e : e + 4] += 6
    noise = 10 + rng.normal(0, 1.0, n_hours)

    def city_dataset(name, values):
        schema = DatasetSchema(
            name,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            numeric_attributes=("v",),
        )
        return Dataset(schema, timestamps=ts, numerics={"v": values})

    city = CityModel.synthetic(nbhd_grid=(2, 2), zip_grid=(2, 2))
    return Corpus(
        [
            city_dataset("alpha", a),
            city_dataset("beta", b),
            city_dataset("gamma", noise),
        ],
        city,
    )


def result_rows(result) -> list[tuple]:
    return [
        (
            x.function1,
            x.function2,
            x.feature_type,
            x.score,
            x.strength,
            x.p_value,
            x.n_related,
        )
        for x in result.results
    ]


logger = get_logger("repro.scripts.ci_chaos")


def main() -> None:
    configure_logging()
    raw_plan = os.environ.get(ENV_VAR, "")
    check(bool(raw_plan), f"{ENV_VAR} must be set — this is the chaos job")
    plan = FaultPlan.parse(raw_plan)  # typed error on a bad plan
    logger.info("%s", plan.describe())

    check(
        os.environ.get("REPRO_EXECUTOR") == "cluster",
        "REPRO_EXECUTOR=cluster required",
    )

    corpus = build_corpus()
    temporal = (TemporalResolution.HOUR,)

    serial_index = corpus.build_index(temporal=temporal, engine=LocalEngine())
    serial_result = serial_index.query(engine=LocalEngine(), **QUERY_KWARGS)

    engine = default_engine()  # env-steered: the live cluster + fault plan
    start = time.monotonic()
    cluster_index = corpus.build_index(temporal=temporal, engine=engine)
    check(
        engine.last_run_fallback is None,
        f"index build fell back off the cluster: {engine.last_run_fallback}",
    )
    cluster_result = cluster_index.query(engine=engine, **QUERY_KWARGS)
    check(
        engine.last_run_fallback is None,
        f"query fell back off the cluster: {engine.last_run_fallback}",
    )
    elapsed = time.monotonic() - start

    check(
        result_rows(serial_result) == result_rows(cluster_result),
        "cluster query diverged from serial under the fault plan",
    )
    check(
        (
            serial_result.n_evaluated,
            serial_result.n_candidates,
            serial_result.n_significant,
        )
        == (
            cluster_result.n_evaluated,
            cluster_result.n_candidates,
            cluster_result.n_significant,
        ),
        "query counters diverged under the fault plan",
    )
    logger.info(
        "chaos scenario OK: bit-identical under faults in %.1fs; "
        "retries=%s worker_tasks=%s",
        elapsed,
        engine.last_run_retries,
        engine.last_run_worker_tasks,
    )


if __name__ == "__main__":
    main()
