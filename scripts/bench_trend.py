"""Benchmark trend gate: compare fresh BENCH records against HEAD's.

The benchmark harness writes one ``BENCH_<name>.json`` record per figure
(see ``benchmarks/conftest.py``); the repo commits a reference copy of
each at its root.  This script diffs the records a fresh run just
produced against the copies committed at ``HEAD`` (via ``git show``, so
it works from a dirty tree) and flags perf regressions:

* Only records from the **same host provenance class** are compared —
  usable CPU budget, smoke flag, and Python major.minor must match,
  otherwise a container downgrade would read as a code regression.
  Older committed records predate the ``host``/``metrics`` provenance
  blocks; both formats load fine.
* Metric direction is inferred from the name: ``*seconds*`` is
  lower-is-better, ``*speedup*``/``*per_minute*``/``*rate*``/
  ``*throughput*`` higher-is-better.  Everything else (counts, flags)
  is ignored — it is correctness, not performance.
* A change worse than ``THRESHOLD`` (20%) prints a GitHub Actions
  ``::warning::`` annotation.  The default exit code is 0 either way —
  smoke-mode timings on shared CI runners are noisy, so the trend is an
  annotation, not a gate.  ``--strict`` turns regressions into a
  non-zero exit for local full-scale runs.

Usage::

    PYTHONPATH=src python scripts/bench_trend.py [--dir .] [--strict]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.obs import get_logger

logger = get_logger("repro.scripts.bench_trend")

#: Fractional change (in the worse direction) that counts as a regression.
THRESHOLD = 0.20

#: Record keys that are provenance/context, never perf metrics.
_CONTEXT_KEYS = frozenset(
    {
        "benchmark",
        "python",
        "usable_cpus",
        "smoke",
        "host",
        "metrics",
        "figure",
        "seed",
        "hosts",
        "notice",
    }
)

LOWER_IS_BETTER = ("seconds",)
HIGHER_IS_BETTER = ("speedup", "per_minute", "rate", "throughput")


def provenance_class(record: dict) -> tuple:
    """The comparability key: CPU budget, smoke flag, Python major.minor.

    Tolerates pre-provenance records (no ``host`` block) — the three
    fields used here have been in every record format.
    """
    python = str(record.get("python", "?"))
    return (
        record.get("usable_cpus"),
        bool(record.get("smoke", False)),
        ".".join(python.split(".")[:2]),
    )


def metric_direction(path: str) -> str | None:
    """'lower', 'higher', or None when the metric has no perf direction."""
    name = path.lower()
    if any(token in name for token in LOWER_IS_BETTER):
        return "lower"
    if any(token in name for token in HIGHER_IS_BETTER):
        return "higher"
    return None


def flatten_metrics(record: dict, prefix: str = "") -> dict[str, float]:
    """Dotted-path → numeric value for every perf-directional leaf."""
    out: dict[str, float] = {}
    for key, value in record.items():
        if not prefix and key in _CONTEXT_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if metric_direction(path) is not None:
                out[path] = float(value)
    return out


def compare_records(fresh: dict, baseline: dict) -> list[dict]:
    """Diff two same-benchmark records; one row per shared perf metric.

    Each row carries the metric path, both values, the fractional change
    in the *worse* direction (positive = got worse), and a ``regression``
    flag at :data:`THRESHOLD`.
    """
    rows: list[dict] = []
    old_metrics = flatten_metrics(baseline)
    new_metrics = flatten_metrics(fresh)
    for path in sorted(old_metrics.keys() & new_metrics.keys()):
        old, new = old_metrics[path], new_metrics[path]
        direction = metric_direction(path)
        if old <= 0:
            continue  # ratio undefined; zero-second baselines are noise
        worse = (new - old) / old if direction == "lower" else (old - new) / old
        rows.append(
            {
                "metric": path,
                "baseline": old,
                "fresh": new,
                "worse_frac": worse,
                "direction": direction,
                "regression": worse > THRESHOLD,
            }
        )
    return rows


def committed_record(name: str) -> dict | None:
    """The BENCH record committed at HEAD, or None if absent/unreadable."""
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{name}"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, json.JSONDecodeError, OSError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=".",
        help="directory holding the fresh BENCH_*.json records (default: .)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any regression is flagged",
    )
    args = parser.parse_args(argv)

    fresh_paths = sorted(Path(args.dir).glob("BENCH_*.json"))
    if not fresh_paths:
        print(f"bench-trend: no BENCH_*.json records under {args.dir}")
        return 0

    regressions = 0
    compared = 0
    for path in fresh_paths:
        try:
            fresh = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            print(f"bench-trend: skipping unreadable {path.name}: {exc}")
            continue
        baseline = committed_record(path.name)
        if baseline is None:
            print(f"bench-trend: {path.name}: no committed baseline at HEAD")
            continue
        if provenance_class(fresh) != provenance_class(baseline):
            print(
                f"bench-trend: {path.name}: host provenance differs "
                f"(fresh {provenance_class(fresh)} vs committed "
                f"{provenance_class(baseline)}) — not comparable"
            )
            continue
        compared += 1
        for row in compare_records(fresh, baseline):
            arrow = "slower" if row["direction"] == "lower" else "lost"
            line = (
                f"{path.name}: {row['metric']} {row['baseline']:.4g} -> "
                f"{row['fresh']:.4g} ({row['worse_frac']:+.1%} {arrow})"
            )
            if row["regression"]:
                regressions += 1
                print(f"::warning title=bench regression::{line}")
            else:
                print(f"bench-trend: ok {line}")

    print(
        f"bench-trend: compared {compared} record(s), "
        f"{regressions} regression(s) over {THRESHOLD:.0%}"
    )
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
