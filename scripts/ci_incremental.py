"""CI incremental-maintenance scenario: update must equal a from-scratch build.

One self-contained run (executed twice by CI, under ``REPRO_EXECUTOR=process``
and ``=cluster``) that walks the whole maintenance lifecycle through the real
CLI verbs:

1. simulate a base catalog (taxi + weather + citibike) and ``repro index`` it;
2. mutate the catalog: taxi gains a week of records, citibike is dropped;
3. ``repro update`` the index against the mutated catalog — the engine comes
   from ``$REPRO_EXECUTOR`` / ``$REPRO_WORKERS`` / ``$REPRO_CLUSTER``, so the
   same script exercises the process pool or a live worker cluster;
4. ``repro index --force`` the mutated catalog into a second directory
   (the from-scratch reference, same env-steered engine);
5. assert the two directories are bit-identical — manifests up to wall-clock
   timings, partition files byte for byte — and that both answer the
   reference query identically.  Reuse is asserted too: weather's partitions
   must survive the update untouched (same inode, same mtime).

Any mismatch exits non-zero, failing the workflow.

Usage::

    REPRO_EXECUTOR=process REPRO_WORKERS=4 PYTHONPATH=src \
        python scripts/ci_incremental.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from pathlib import Path

from repro.__main__ import main as repro_main
from repro.obs import configure_logging, get_logger
from repro.core.corpus import CorpusIndex
from repro.data.catalog import load_catalog, save_catalog

BASE_SIM = ["--days", "21", "--scale", "0.2", "--seed", "11"]
EXTENDED_SIM = ["--days", "28", "--scale", "0.2", "--seed", "11"]
QUERY_KWARGS = dict(n_permutations=60, seed=0)

logger = get_logger("repro.scripts.ci_incremental")


def check(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"incremental scenario FAILED: {message}")


def run_cli(*argv: str) -> None:
    code = repro_main(list(argv))
    check(code == 0, f"`repro {' '.join(argv)}` exited {code}")


def normalized_manifest(path: Path) -> dict:
    manifest = json.loads((path / "index.json").read_text())
    manifest.pop("manifest_sha256")
    for stats in [manifest["stats"]] + [
        r["stats"] for r in manifest["partitions"] if "stats" in r
    ]:
        stats["scalar_seconds"] = 0.0
        stats["feature_seconds"] = 0.0
    return manifest


def file_identities(index_dir: Path) -> dict:
    manifest = json.loads((index_dir / "index.json").read_text())
    return {
        (r["dataset"], r["spatial"], r["temporal"]): (
            (index_dir / r["file"]).stat().st_ino,
            (index_dir / r["file"]).stat().st_mtime_ns,
        )
        for r in manifest["partitions"]
    }


def main() -> int:
    configure_logging()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default="", help="scratch directory (default: a temp dir)"
    )
    args = parser.parse_args()
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="ci-incremental-"))
    workdir.mkdir(parents=True, exist_ok=True)
    cat, cat2 = workdir / "cat", workdir / "cat2"
    idx, scratch = workdir / "idx", workdir / "scratch"
    for stale in (cat, cat2, idx, scratch):
        if stale.exists():
            shutil.rmtree(stale)

    executor = os.environ.get("REPRO_EXECUTOR", "serial")
    logger.info("== incremental scenario under executor=%r", executor)

    # 1. Base catalog + index.
    run_cli(
        "simulate", "--out", str(cat), *BASE_SIM, "--datasets", "taxi,weather,citibike"
    )
    run_cli("index", "--data", str(cat), "--out", str(idx), "--temporal", "day")

    # 2. Mutated catalog: taxi gains a week of records (the extended
    #    simulation shares the seed and city, so weather's records — taken
    #    from the *base* catalog — stay bit-identical), citibike is dropped.
    run_cli(
        "simulate", "--out", str(workdir / "ext"), *EXTENDED_SIM, "--datasets", "taxi"
    )
    ext_datasets, city = load_catalog(workdir / "ext")
    base_datasets, _city = load_catalog(cat)
    mutated = [ds for ds in ext_datasets if ds.name == "taxi"]
    mutated += [ds for ds in base_datasets if ds.name == "weather"]
    save_catalog(cat2, mutated, city)
    logger.info("mutated catalog: %s (citibike dropped)", [ds.name for ds in mutated])

    # 3. Incremental update (plan first, so reuse can be asserted).
    before = file_identities(idx)
    run_cli("update", "--data", str(cat2), "--index", str(idx))

    # 4. From-scratch reference (--force exercises the clobber satellite).
    (scratch / "partitions").mkdir(parents=True)
    (scratch / "index.json").write_text("{}")
    code = repro_main(["index", "--data", str(cat2), "--out", str(scratch)])
    check(code == 2, "`repro index` onto an existing index must refuse")
    run_cli(
        "index",
        "--data",
        str(cat2),
        "--out",
        str(scratch),
        "--temporal",
        "day",
        "--force",
    )

    # 5a. Bit-identical directories.
    m_updated, m_scratch = normalized_manifest(idx), normalized_manifest(scratch)
    check(m_updated == m_scratch, "manifests differ (beyond timings)")
    for record in m_updated["partitions"]:
        check(
            (idx / record["file"]).read_bytes()
            == (scratch / record["file"]).read_bytes(),
            f"partition bytes differ: {record['file']}",
        )
    logger.info("bit-identical: %d partitions", len(m_updated["partitions"]))

    # 5b. Weather reused untouched (same inode + mtime), taxi rebuilt,
    #     citibike gone.
    after = file_identities(idx)
    weather_keys = [k for k in before if k[0] == "weather"]
    check(bool(weather_keys), "scenario must contain weather partitions")
    for key in weather_keys:
        check(key in after, f"weather partition {key} vanished")
        check(before[key] == after[key], f"weather partition {key} was rewritten")
    check(all(k[0] != "citibike" for k in after), "citibike partitions remain")
    logger.info("reuse proven: %d weather partition(s) untouched", len(weather_keys))

    # 5c. Identical query answers.
    updated, rebuilt = CorpusIndex.load(idx), CorpusIndex.load(scratch)
    r1 = updated.query(**QUERY_KWARGS)
    r2 = rebuilt.query(**QUERY_KWARGS)
    check(
        r1.n_evaluated == r2.n_evaluated and r1.n_evaluated > 0,
        "evaluation counts differ",
    )
    rows1 = [(x.function1, x.function2, x.score, x.p_value) for x in r1.results]
    rows2 = [(x.function1, x.function2, x.score, x.p_value) for x in r2.results]
    check(rows1 == rows2, "query results differ")
    logger.info(
        "queries identical: %d evaluations, %d significant",
        r1.n_evaluated,
        len(rows1),
    )
    logger.info("incremental scenario OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
