"""CI persistence round-trip: prove the index format is host-independent.

Two modes, run in *separate* CI jobs with the index shipped between them as
a workflow artifact (see ``.github/workflows/ci.yml``):

* ``build`` — simulate the deterministic reference collection, build the
  index, and save it to ``--out``.
* ``verify`` — on a fresh host, rebuild the same index from the same
  deterministic collection, load the artifact written by ``build``, and
  assert that (a) the loaded index matches the rebuilt one bit for bit and
  (b) both answer the reference query identically under serial *and*
  threaded execution.

Any mismatch exits non-zero, failing the workflow.

Usage::

    PYTHONPATH=src python scripts/ci_roundtrip.py build --out index-artifact
    PYTHONPATH=src python scripts/ci_roundtrip.py verify --index index-artifact
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.corpus import Corpus, CorpusIndex
from repro.obs import configure_logging, get_logger
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution

#: Deterministic reference configuration shared by both modes.  Changing any
#: of these invalidates artifacts produced by older commits — bump alongside
#: the on-disk format version if the reference setup ever needs to move.
COLLECTION = dict(
    seed=11, n_days=60, scale=0.25, subset=("taxi", "weather", "citibike")
)
INDEX_KWARGS = dict(
    spatial=(SpatialResolution.CITY, SpatialResolution.NEIGHBORHOOD),
    temporal=(TemporalResolution.DAY, TemporalResolution.WEEK),
)
QUERY_KWARGS = dict(n_permutations=100, seed=0)

logger = get_logger("repro.scripts.ci_roundtrip")


def reference_index() -> CorpusIndex:
    coll = nyc_urban_collection(**COLLECTION)
    return Corpus(coll.datasets, coll.city).build_index(**INDEX_KWARGS)


def check(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"round-trip FAILED: {message}")


def assert_indexes_equal(rebuilt: CorpusIndex, loaded: CorpusIndex) -> None:
    check(list(rebuilt.datasets) == list(loaded.datasets), "data set order differs")
    # Timing fields (scalar_seconds/feature_seconds) are wall-clock and
    # legitimately differ across hosts; the counters must not.
    counters = lambda s: (  # noqa: E731 - tiny accessor
        s.n_scalar_functions,
        s.n_feature_sets,
        s.raw_bytes,
        s.function_bytes,
        s.feature_bytes,
    )
    check(
        counters(rebuilt.stats) == counters(loaded.stats),
        "IndexStats counters differ",
    )
    for name, ds1 in rebuilt.datasets.items():
        ds2 = loaded.datasets[name]
        check(
            list(ds1.functions) == list(ds2.functions),
            f"{name}: resolution set differs",
        )
        for key, fns1 in ds1.functions.items():
            fns2 = ds2.functions[key]
            ids1 = [f.function_id for f in fns1]
            ids2 = [f.function_id for f in fns2]
            check(ids1 == ids2, f"{name}/{key}: function list differs")
            for f1, f2 in zip(fns1, fns2):
                check(
                    np.array_equal(f1.function.values, f2.function.values),
                    f"{f1.function_id}: value matrices differ",
                )
                for feature_type in ("salient", "extreme"):
                    s1 = f1.feature_set(feature_type)
                    s2 = f2.feature_set(feature_type)
                    check(
                        np.array_equal(s1.positive, s2.positive)
                        and np.array_equal(s1.negative, s2.negative),
                        f"{f1.function_id}: {feature_type} feature masks differ",
                    )


def query_rows(result) -> list[tuple]:
    return [
        (x.function1, x.function2, x.feature_type, x.score, x.strength,
         x.p_value, x.n_related, x.precision, x.recall)
        for x in result.results
    ]


def cmd_build(args: argparse.Namespace) -> None:
    start = time.perf_counter()
    index = reference_index()
    logger.info(
        "built reference index: %d scalar functions in %.1fs",
        index.stats.n_scalar_functions,
        time.perf_counter() - start,
    )
    index.save(args.out)
    logger.info("saved to %s", args.out)


def cmd_verify(args: argparse.Namespace) -> None:
    rebuilt = reference_index()
    start = time.perf_counter()
    loaded = CorpusIndex.load(args.index)
    logger.info("loaded artifact index in %.2fs", time.perf_counter() - start)

    assert_indexes_equal(rebuilt, loaded)
    logger.info("index structure: identical")

    reference = rebuilt.query(**QUERY_KWARGS)
    serial = loaded.query(**QUERY_KWARGS)
    threaded = loaded.query(**QUERY_KWARGS, n_workers=4, executor="thread")
    check(
        query_rows(reference) == query_rows(serial),
        "loaded-index query differs from rebuilt-index query (serial)",
    )
    check(
        query_rows(reference) == query_rows(threaded),
        "loaded-index query differs from rebuilt-index query (threaded)",
    )
    check(
        (reference.n_evaluated, reference.n_candidates, reference.n_significant)
        == (serial.n_evaluated, serial.n_candidates, serial.n_significant),
        "query counters differ",
    )
    logger.info(
        "query equality: OK (%d evaluated, %d significant, "
        "serial == threaded == rebuilt)",
        reference.n_evaluated,
        reference.n_significant,
    )


def main(argv: list[str] | None = None) -> None:
    configure_logging()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build + save the reference index")
    build.add_argument("--out", required=True, help="output index directory")
    build.set_defaults(func=cmd_build)

    verify = sub.add_parser("verify", help="compare artifact vs. fresh rebuild")
    verify.add_argument("--index", required=True, help="artifact index directory")
    verify.set_defaults(func=cmd_verify)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
