"""CI docs gate: every relative link in the documentation must resolve.

The repository's documentation — ``README.md`` and everything under
``docs/`` — links liberally into the source tree (``src/repro/...``),
between documents, and at test files.  Those links rot silently when a
file is moved or renamed; this script walks every markdown link whose
target is a relative path and exits non-zero if the target does not
exist, so the ``docs`` CI job fails the commit instead.

What counts as a link: inline markdown ``[text](target)`` and reference
definitions ``[label]: target``.  External targets (``http://``,
``https://``, ``mailto:``) and pure in-page anchors (``#section``) are
skipped; a ``path#fragment`` target is checked as ``path`` (fragment
resolution would need a markdown parser; existence is the load-bearing
half).  Targets are resolved against the *linking file's* directory, the
way GitHub renders them.

Usage::

    python scripts/ci_docs.py            # check README.md + docs/*.md
    python scripts/ci_docs.py FILE...    # check specific files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Runnable bare (`python scripts/ci_docs.py`, no PYTHONPATH): reach the
# in-repo package for the shared repro.* logger hierarchy.
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import configure_logging, get_logger  # noqa: E402

logger = get_logger("repro.scripts.ci_docs")

#: Inline links ``[text](target)``.  Images ``![alt](target)`` match too —
#: the leading ``!`` is simply not part of the match.  Targets containing
#: spaces or closing parens need angle brackets in markdown; none of ours do.
_INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Reference-style definitions ``[label]: target`` at line start.
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_EXTERNAL = ("http://", "https://", "mailto:")


def iter_link_targets(text: str):
    """Yield every link target in a markdown document, in order."""
    for match in _INLINE_LINK.finditer(text):
        yield match.group(1)
    for match in _REF_DEF.finditer(text):
        yield match.group(1)


def check_file(md_path: Path) -> list[str]:
    """Return one error string per broken relative link in ``md_path``."""
    errors = []
    text = md_path.read_text(encoding="utf-8")
    for target in iter_link_targets(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md_path.parent / path_part).resolve()
        if not resolved.exists():
            try:
                shown = md_path.relative_to(REPO_ROOT)
            except ValueError:  # explicit file outside the repo
                shown = md_path
            errors.append(f"{shown}: broken link -> {target}")
    return errors


def default_doc_files() -> list[Path]:
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    return [REPO_ROOT / "README.md", *docs]


def main(argv: list[str]) -> int:
    configure_logging()
    files = [Path(a).resolve() for a in argv] if argv else default_doc_files()
    missing = [f for f in files if not f.is_file()]
    if missing:
        for f in missing:
            logger.error("no such documentation file: %s", f)
        return 2

    all_errors = []
    n_links = 0
    for md_path in files:
        text = md_path.read_text(encoding="utf-8")
        n_links += sum(1 for _ in iter_link_targets(text))
        all_errors.extend(check_file(md_path))

    if all_errors:
        logger.error("%d broken link(s):", len(all_errors))
        for err in all_errors:
            logger.error("  %s", err)
        return 1
    logger.info(
        "docs OK: %d links across %d file(s), all relative targets resolve",
        n_links,
        len(files),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
