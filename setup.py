"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (the default ``pip install -e .`` path) cannot build
the editable wheel.  This shim lets ``pip install -e . --no-use-pep517`` (and
plain ``pip install -e .`` on older pips) fall back to ``setup.py develop``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
