"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file only enables
fallback install paths.  Offline environments that ship setuptools without
the ``wheel`` package cannot build the PEP 660 editable wheel that plain
``pip install -e .`` requires — there, use ``python setup.py develop`` (or
``pip install -e . --no-use-pep517`` on older pips), which resolves the
``src/`` layout and console script from the same pyproject metadata.
"""

from setuptools import setup

setup()
