"""Whole-index save/load on top of the partition format (:mod:`.format`).

Both directions run through the map-reduce engine, mirroring how the index
was built in the first place:

* :class:`PartitionSaveJob` maps over (data set, resolution) partitions,
  writing one NPZ file each (parallelizable — NumPy I/O releases the GIL),
  and reduces the per-file records into the manifest's partition list.
* :class:`PartitionLoadJob` maps over manifest records — checksum
  verification plus NPZ decoding per partition — and reduces them into one
  :class:`~repro.core.operator.DatasetIndex` per data set, exactly like
  :class:`~repro.core.corpus.IndexPartitionJob` does when indexing from
  scratch.

A loaded index therefore answers queries **bit-identically** to the freshly
built index it was saved from, under serial and threaded execution alike:
data set order, per-resolution function order, value matrices, feature
masks, and the extractor configuration are all preserved, and per-pair RNG
seeds depend only on those.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from .. import obs
from ..core.corpus import CorpusIndex, IndexStats
from ..core.features import FeatureExtractor
from ..core.operator import DatasetIndex, IndexedFunction
from ..data.catalog import city_from_dict, city_to_dict
from ..mapreduce.engine import default_engine
from ..mapreduce.job import Engine, MapReduceJob
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import PersistError
from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    INDEX_MANIFEST,
    PARTITION_DIR,
    SUPPORTED_VERSIONS,
    extractor_from_dict,
    extractor_to_dict,
    manifest_digest,
    partition_filename,
    read_partition,
    write_partition,
)

_MANIFEST_KEYS = ("city", "extractor", "fill", "datasets", "stats", "partitions")


class PartitionSaveJob(MapReduceJob):
    """Write one partition file per map task; reduce to the manifest list.

    Map input: ``((seq, dataset, s_res, t_res), functions)`` where ``seq`` is
    the partition's position in the index's canonical iteration order.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def map(self, key: Any, value: Any):
        seq, dataset, spatial, temporal = key
        functions: list[IndexedFunction] = value
        filename = partition_filename(seq, dataset, spatial, temporal)
        path = self.directory / PARTITION_DIR / filename
        meta = write_partition(path, functions)  # includes sha256 + nbytes
        record = {
            "seq": int(seq),
            "dataset": dataset,
            "spatial": spatial.value,
            "temporal": temporal.value,
            "file": f"{PARTITION_DIR}/{filename}",
            **meta,
        }
        yield "partitions", record

    def reduce(self, key: Any, values: list[Any]):
        yield key, sorted(values, key=lambda record: record["seq"])


class PartitionLoadJob(MapReduceJob):
    """Verify + decode one partition file per map task; reduce per data set.

    Map input: ``((seq, dataset), record)`` with ``record`` a manifest
    partition entry.  The reducer reassembles resolutions in ``seq`` order,
    so the loaded :class:`DatasetIndex` lists them exactly as the original
    build did.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def map(self, key: Any, value: Any):
        seq, dataset = key
        record = value
        path = self.directory / record["file"]
        if not path.is_file():
            raise PersistError(f"missing partition file {record['file']!r}")
        # One read per partition: hash the bytes in memory, then decode the
        # same buffer (re-reading multi-GB indexes would double the I/O).
        payload = path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != record["sha256"]:
            raise PersistError(
                f"checksum mismatch for {record['file']!r}: manifest says "
                f"{record['sha256'][:12]}..., file is {digest[:12]}..."
            )
        try:
            spatial = SpatialResolution(record["spatial"])
            temporal = TemporalResolution(record["temporal"])
        except ValueError as exc:
            raise PersistError(
                f"{record['file']!r}: unknown resolution: {exc}"
            ) from exc
        functions = read_partition(path, record, spatial, temporal, data=payload)
        yield dataset, (seq, (spatial, temporal), functions)

    def reduce(self, key: Any, values: list[Any]):
        ds_index = DatasetIndex(dataset=key)
        for _seq, resolution, functions in sorted(values, key=lambda v: v[0]):
            ds_index.functions[resolution] = functions
        yield key, ds_index


def save_index(
    index: CorpusIndex, path: str | Path, engine: Engine | None = None
) -> Path:
    """Serialize ``index`` to directory ``path``; returns the manifest path.

    ``path`` is resolved to an absolute path before any job runs: partition
    files are written by engine tasks, and cluster workers are separate
    processes whose working directory is not the caller's.  (Cluster saves
    and loads additionally assume the workers share the caller's
    filesystem, as on a localhost cluster or NFS.)

    Overwriting an existing index is all-or-nothing up to the final rename
    pair: the new index is written into a ``.<name>.tmp`` sibling and only
    swapped in once its manifest is on disk, so a crash or full disk while
    *writing* leaves the previous index untouched.  The swap itself retires
    the old directory to ``.<name>.old`` before moving the new one in; a
    crash in that narrow window leaves the data in the retired sibling
    rather than at ``path``.  Both leftover siblings are cleaned up by the
    next successful save.
    """
    directory = Path(path).expanduser().resolve()
    staging = directory.parent / f".{directory.name}.tmp"
    retired = directory.parent / f".{directory.name}.old"
    if staging.exists():
        shutil.rmtree(staging)
    (staging / PARTITION_DIR).mkdir(parents=True)

    inputs: list[tuple[Any, Any]] = []
    seq = 0
    for name, ds_index in index.datasets.items():
        for (spatial, temporal), functions in ds_index.functions.items():
            inputs.append(((seq, name, spatial, temporal), functions))
            seq += 1

    run_engine = engine if engine is not None else default_engine()
    with obs.span("persist.save", index=directory.name, n_partitions=len(inputs)):
        outputs, _ = run_engine.run(PartitionSaveJob(staging), inputs)
        records = outputs[0][1] if outputs else []

        # v2 enrichment: per-partition content fingerprints and IndexStats
        # contributions, when the index carries them (freshly built or loaded
        # from a v2 directory).  A v1-loaded index has neither — its records
        # stay bare, and a later `repro update` schedules full rebuilds.
        for record in records:
            key = (
                record["dataset"],
                SpatialResolution(record["spatial"]),
                TemporalResolution(record["temporal"]),
            )
            stats = index.partition_stats.get(key)
            if stats is not None:
                record["stats"] = asdict(stats)
            fingerprint = index.partition_fingerprints.get(key)
            if fingerprint is not None:
                record["fingerprint"] = fingerprint

        manifest = build_manifest(
            city=index.city,
            extractor=index.extractor,
            fill=index.fill,
            datasets=list(index.datasets),
            stats=index.stats,
            records=records,
            scope=index.scope,
        )
        write_manifest(staging / INDEX_MANIFEST, manifest)

        replace_directory(staging, directory, retired)
    return directory / INDEX_MANIFEST


def build_manifest(
    city,
    extractor: FeatureExtractor | None,
    fill: str,
    datasets: list[str],
    stats: IndexStats,
    records: list[dict],
    scope: dict | None = None,
) -> dict:
    """Assemble and sign a format-v2 manifest.

    The single source of truth for manifest layout: :func:`save_index` and
    the incremental applier (:func:`repro.incremental.update.apply_update`)
    both call this, which is what makes an incrementally updated manifest
    byte-compatible with a from-scratch save of the same content.

    ``scope`` records the resolution whitelists the index was built with
    (see :func:`repro.core.corpus.resolution_scope`); ``None`` = unknown
    (an index loaded from a v1 directory and re-saved).
    """
    from ..incremental.fingerprint import city_digest, config_digest

    extractor = extractor if extractor is not None else FeatureExtractor()
    payload = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "city": city_to_dict(city),
        "extractor": extractor_to_dict(extractor),
        "fill": fill,
        "fingerprints": {
            "config": config_digest(extractor, fill),
            "city": city_digest(city),
        },
        "scope": scope,
        "datasets": datasets,
        "stats": asdict(stats),
        "partitions": records,
    }
    manifest = dict(payload)
    manifest["manifest_sha256"] = manifest_digest(payload)
    return manifest


def write_manifest(path: Path, manifest: dict) -> None:
    """Write a manifest exactly as :func:`save_index` does (stable layout)."""
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2)


def replace_directory(staging: Path, directory: Path, retired: Path) -> None:
    """Atomically swap ``staging`` into place at ``directory``.

    The previous content (if any) is retired to ``retired`` before the new
    directory moves in; a crash in that narrow window leaves the data in the
    retired sibling rather than at ``directory``.  The retired sibling —
    including orphans of an interrupted earlier swap — is removed on the way
    out.  Shared by :func:`save_index` and
    :func:`repro.incremental.update.apply_update`.
    """
    if directory.exists():
        if retired.exists():
            shutil.rmtree(retired)
        directory.rename(retired)
        staging.rename(directory)
    else:
        staging.rename(directory)
    if retired.exists():
        shutil.rmtree(retired)


def load_index(path: str | Path, engine: Engine | None = None) -> CorpusIndex:
    """Rebuild a :class:`CorpusIndex` from a directory written by
    :func:`save_index`, skipping re-indexing entirely.

    The loaded index has no backing :class:`~repro.core.corpus.Corpus` (raw
    data is not part of the format); everything a query needs — functions,
    features, extractor configuration, city model — is restored from disk.
    ``path`` is resolved to an absolute path up front so engine tasks read
    the right files from any working directory (cluster workers included).
    """
    directory = Path(path).expanduser().resolve()
    manifest = read_manifest(directory)

    city = city_from_dict(manifest["city"])
    extractor = extractor_from_dict(manifest["extractor"])
    try:
        stats = IndexStats(**manifest["stats"])
    except TypeError as exc:
        raise PersistError(f"malformed stats record: {exc}") from exc

    inputs = [
        ((record["seq"], record["dataset"]), record)
        for record in manifest["partitions"]
    ]
    run_engine = engine if engine is not None else default_engine()
    with obs.span("persist.load", index=directory.name, n_partitions=len(inputs)):
        outputs, job_stats = run_engine.run(PartitionLoadJob(directory), inputs)
    loaded = dict(outputs)

    datasets: dict[str, DatasetIndex] = {}
    for name in manifest["datasets"]:
        # Data sets with no viable partition stay indexed-but-empty, exactly
        # as Corpus.build_index leaves them.
        datasets[name] = loaded.get(name) or DatasetIndex(dataset=name)

    # v2 bookkeeping survives the round trip, so a loaded index can be
    # re-saved (or incrementally updated) without losing reuse evidence.
    partition_stats = {}
    partition_fingerprints = {}
    for record in manifest["partitions"]:
        key = (
            record["dataset"],
            SpatialResolution(record["spatial"]),
            TemporalResolution(record["temporal"]),
        )
        if "stats" in record:
            try:
                partition_stats[key] = IndexStats(**record["stats"])
            except TypeError as exc:
                raise PersistError(
                    f"{record['file']!r}: malformed stats record: {exc}"
                ) from exc
        if "fingerprint" in record:
            partition_fingerprints[key] = record["fingerprint"]

    return CorpusIndex(
        city=city,
        corpus=None,
        datasets=datasets,
        stats=stats,
        job_stats=job_stats,
        extractor=extractor,
        fill=manifest["fill"],
        partition_stats=partition_stats,
        partition_fingerprints=partition_fingerprints,
        scope=manifest.get("scope"),
    )


def read_manifest(path: str | Path) -> dict:
    """Read and integrity-check an index manifest (format + version + digest)."""
    directory = Path(path)
    manifest_path = directory / INDEX_MANIFEST
    if not manifest_path.is_file():
        raise PersistError(
            f"{directory}: no {INDEX_MANIFEST} found (not an index directory?)"
        )
    try:
        text = manifest_path.read_text()
    except UnicodeDecodeError as exc:
        raise PersistError(
            f"{manifest_path}: manifest is not valid JSON "
            f"(truncated or corrupt): {exc}"
        ) from exc
    except OSError as exc:
        raise PersistError(f"{manifest_path}: cannot read manifest: {exc}") from exc
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        # The cause is chained (`from exc`) so callers see the parser's own
        # line/column diagnosis, not just that *something* was wrong.
        raise PersistError(
            f"{manifest_path}: manifest is not valid JSON "
            f"(truncated or corrupt): {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise PersistError(f"{manifest_path}: not a {FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise PersistError(
            f"unsupported index format version {version!r} "
            f"(this build reads versions {supported})"
        )
    claimed = manifest.get("manifest_sha256")
    payload = {k: v for k, v in manifest.items() if k != "manifest_sha256"}
    if claimed != manifest_digest(payload):
        raise PersistError(
            f"{manifest_path}: manifest integrity check failed "
            "(edited or truncated after writing)"
        )
    missing = [key for key in _MANIFEST_KEYS if key not in manifest]
    if missing:
        raise PersistError(f"{manifest_path}: manifest is missing {missing}")
    return manifest


@dataclass(frozen=True)
class DiskUsage:
    """On-disk byte accounting of one index directory (§5.4 reconciliation).

    ``function_bytes`` and ``feature_bytes`` count the raw array payloads and
    equal the in-memory :class:`IndexStats` counters exactly (arrays are
    stored uncompressed).  ``threshold_bytes`` covers the per-interval salient
    extremum values, ``structure_bytes`` the step labels and region adjacency,
    and ``total_bytes`` the actual file sizes including container overhead.
    """

    function_bytes: int
    feature_bytes: int
    threshold_bytes: int
    structure_bytes: int
    manifest_bytes: int
    total_bytes: int


def disk_usage(path: str | Path) -> DiskUsage:
    """Byte breakdown of an index directory written by :func:`save_index`.

    The per-category counts come from the digest-protected manifest (recorded
    at write time by :func:`~repro.persist.format.write_partition`), so this
    only stats the partition files instead of decoding every array.
    """
    directory = Path(path)
    manifest = read_manifest(directory)
    function_bytes = feature_bytes = threshold_bytes = structure_bytes = 0
    total_bytes = manifest_bytes = (directory / INDEX_MANIFEST).stat().st_size
    for record in manifest["partitions"]:
        file_path = directory / record["file"]
        if not file_path.is_file():
            raise PersistError(f"missing partition file {record['file']!r}")
        total_bytes += file_path.stat().st_size
        try:
            counters = record["bytes"]
            function_bytes += counters["function"]
            feature_bytes += counters["feature"]
            threshold_bytes += counters["threshold"]
            structure_bytes += counters["structure"]
        except KeyError as exc:
            raise PersistError(
                f"{record.get('file')!r}: partition record has no byte "
                f"accounting ({exc})"
            ) from exc
    return DiskUsage(
        function_bytes=function_bytes,
        feature_bytes=feature_bytes,
        threshold_bytes=threshold_bytes,
        structure_bytes=structure_bytes,
        manifest_bytes=manifest_bytes,
        total_bytes=total_bytes,
    )
