"""On-disk format of a persisted corpus index (version 2; version 1 readable).

An index directory is a JSON manifest plus one NPZ file per indexed
(data set, resolution) partition::

    idx/
      index.json            # manifest: format version, city model, extractor
                            # config, §5.4 stats, per-partition records
      partitions/
        p0000_taxi_city_hour.npz
        p0001_taxi_city_day.npz
        ...

The partition files are the unit of serialization and correspond 1:1 with
the map outputs of :class:`repro.core.corpus.IndexPartitionJob`, so
incremental maintenance (:mod:`repro.incremental`) can rewrite individual
partitions without touching the rest.  Each NPZ stores, per scalar function:
the raw value matrix (float64, the §5.4 ``function_bytes`` payload), the
step labels, the four feature masks in the packed ``uint64`` bit-vector form
of Appendix C (the ``feature_bytes`` payload), and the per-interval salient
extremum values; the partition's region adjacency is stored once.  Arrays
are written uncompressed so the on-disk byte counts reconcile exactly with
the in-memory :class:`~repro.core.corpus.IndexStats` accounting.

Determinism.  Partition files are byte-deterministic: the NPZ container is
written with pinned zip timestamps (:func:`deterministic_savez`), so the
same functions always serialize to the same bytes.  This is the property
that makes incremental updates *verifiable* — an updated index can be
compared bit-for-bit against a from-scratch rebuild.

Version 2 additions (version 1 files still load):

* each partition record may carry a ``fingerprint`` — a SHA-256 content
  fingerprint of the raw inputs that produced the partition (data set
  schema + columns, function specs, city model, extractor config, fill
  policy) — and a ``stats`` record, the partition's own
  :class:`~repro.core.corpus.IndexStats` contribution, so partial rebuilds
  can merge bookkeeping without re-deriving it;
* the manifest may carry a top-level ``fingerprints`` object with the
  ``config`` (extractor + fill) and ``city`` digests, letting the update
  planner report *why* everything is being rebuilt.

Integrity.  The manifest records a SHA-256 digest per partition file and a
digest of its own payload (``manifest_sha256`` over the canonical JSON of
every other key).  Any mismatch — as well as a truncated manifest or an
unsupported ``format_version`` — surfaces as
:class:`repro.utils.errors.PersistError`, never as a raw numpy/JSON
traceback.
"""

from __future__ import annotations

import hashlib
import io
import json
import re
import zipfile
from pathlib import Path

import numpy as np

from ..core.features import (
    FeatureExtractor,
    FeatureSet,
    FunctionFeatures,
    IntervalReport,
)
from ..core.operator import IndexedFunction
from ..core.scalar_function import ScalarFunction
from ..core.thresholds import SalientThresholds
from ..graph.domain_graph import DomainGraph
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.bitvector import BitVector
from ..utils.errors import PersistError

FORMAT_NAME = "repro-corpus-index"
FORMAT_VERSION = 2
#: Versions :func:`repro.persist.index_io.read_manifest` accepts.  Version 1
#: predates fingerprints/per-partition stats; its partitions load fine, but
#: the update planner cannot prove reuse and schedules full rebuilds.
SUPPORTED_VERSIONS = (1, 2)
INDEX_MANIFEST = "index.json"
PARTITION_DIR = "partitions"

#: Pinned zip member timestamp (the zip epoch): partition bytes must depend
#: on array content only, never on the wall clock at save time.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

#: NPZ key suffixes of the four packed feature-mask channels, in a fixed
#: order shared by the writer, the reader, and the disk-usage accounting.
_MASK_KEYS = ("salient_pos", "salient_neg", "extreme_pos", "extreme_neg")


def manifest_digest(payload: dict) -> str:
    """SHA-256 of the canonical JSON rendering of a manifest payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def deterministic_savez(buffer, arrays: dict[str, np.ndarray]) -> None:
    """``np.savez`` with byte-deterministic output.

    ``np.savez`` stamps each zip member with the current local time, so two
    saves of identical arrays differ on disk.  Incremental maintenance needs
    the converse guarantee — same content, same bytes — so the members are
    written with a pinned timestamp (and, like ``np.savez``, stored
    uncompressed: §5.4 byte reconciliation).
    """
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
        for name, array in arrays.items():
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            info.external_attr = 0o600 << 16  # fixed mode bits, not umask
            with archive.open(info, "w", force_zip64=True) as member:
                np.lib.format.write_array(
                    member, np.asanyarray(array), allow_pickle=False
                )


def partition_filename(
    seq: int, dataset: str, spatial: SpatialResolution, temporal: TemporalResolution
) -> str:
    """Stable, filesystem-safe name of one partition file."""
    safe = re.sub(r"[^A-Za-z0-9_.-]", "-", dataset)
    return f"p{seq:04d}_{safe}_{spatial.value}_{temporal.value}.npz"


def extractor_to_dict(extractor: FeatureExtractor) -> dict:
    """JSON-serializable form of a feature-extractor configuration."""
    return {
        "seasonal": bool(extractor.seasonal),
        "use_index": bool(extractor.use_index),
        "extreme_fence": float(extractor.extreme_fence),
        "max_feature_fraction": float(extractor.max_feature_fraction),
    }


def extractor_from_dict(data: dict) -> FeatureExtractor:
    """Inverse of :func:`extractor_to_dict`."""
    try:
        return FeatureExtractor(
            seasonal=bool(data["seasonal"]),
            use_index=bool(data["use_index"]),
            extreme_fence=float(data["extreme_fence"]),
            max_feature_fraction=float(data["max_feature_fraction"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistError(f"malformed extractor record: {exc}") from exc


def _optional_float(value: float | None) -> float | None:
    return None if value is None else float(value)


def write_partition(path: Path, functions: list[IndexedFunction]) -> dict:
    """Write one partition's functions to ``path`` (NPZ, uncompressed).

    Returns the partition's manifest metadata: one record per function
    (identifier, extreme thetas, per-interval scalar fields) in file order,
    plus the ``bytes`` breakdown of the array payload by category (§5.4
    accounting, so :func:`~repro.persist.index_io.disk_usage` never has to
    decode the arrays again) and the file's ``sha256``/``nbytes`` — the NPZ
    is serialized in memory, hashed, and written in one pass.  The caller
    owns the enclosing record (resolution, file name).
    """
    arrays: dict[str, np.ndarray] = {}
    if functions:
        arrays["spatial_pairs"] = functions[0].function.graph.spatial_pairs
    else:
        arrays["spatial_pairs"] = np.zeros((0, 2), dtype=np.int64)
    nbytes = {"function": 0, "feature": 0, "threshold": 0, "structure": 0}
    nbytes["structure"] += int(arrays["spatial_pairs"].nbytes)

    records: list[dict] = []
    for i, indexed in enumerate(functions):
        function, features = indexed.function, indexed.features
        # The adjacency is stored once per partition; every function must
        # share it, else the reader would silently reattach the wrong graph.
        if not np.array_equal(function.graph.spatial_pairs, arrays["spatial_pairs"]):
            raise PersistError(
                f"{function.function_id}: functions of one partition must "
                "share their spatial adjacency"
            )
        prefix = f"f{i:04d}"
        arrays[f"{prefix}__values"] = function.values
        arrays[f"{prefix}__steps"] = function.graph.step_labels
        nbytes["function"] += int(function.values.nbytes)
        nbytes["structure"] += int(function.graph.step_labels.nbytes)
        masks = features.salient.to_bitvectors() + features.extreme.to_bitvectors()
        for suffix, vector in zip(_MASK_KEYS, masks):
            arrays[f"{prefix}__{suffix}"] = vector.words
            nbytes["feature"] += vector.nbytes()

        intervals: list[dict] = []
        for j, report in enumerate(features.intervals):
            arrays[f"{prefix}__iv{j:03d}__max"] = report.thresholds.salient_max_values
            arrays[f"{prefix}__iv{j:03d}__min"] = report.thresholds.salient_min_values
            nbytes["threshold"] += int(
                report.thresholds.salient_max_values.nbytes
                + report.thresholds.salient_min_values.nbytes
            )
            intervals.append(
                {
                    "step_start": int(report.step_start),
                    "step_stop": int(report.step_stop),
                    "theta_pos": _optional_float(report.thresholds.theta_pos),
                    "theta_neg": _optional_float(report.thresholds.theta_neg),
                    "n_maxima": int(report.n_maxima),
                    "n_minima": int(report.n_minima),
                }
            )
        records.append(
            {
                "function_id": function.function_id,
                "dataset": function.dataset,
                "extreme_theta_pos": _optional_float(features.extreme_theta_pos),
                "extreme_theta_neg": _optional_float(features.extreme_theta_neg),
                "intervals": intervals,
            }
        )

    # Uncompressed on purpose: on-disk array bytes == IndexStats accounting.
    # Serialized to memory first so the checksum never re-reads the file.
    buffer = io.BytesIO()
    deterministic_savez(buffer, arrays)
    payload = buffer.getvalue()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    return {
        "functions": records,
        "bytes": nbytes,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "nbytes": len(payload),
    }


def read_partition(
    path: Path,
    record: dict,
    spatial: SpatialResolution,
    temporal: TemporalResolution,
    data: bytes | None = None,
) -> list[IndexedFunction]:
    """Rebuild one partition's :class:`IndexedFunction` list from disk.

    ``record`` is the partition's manifest entry (function metadata in file
    order).  Pass ``data`` when the file content is already in memory (the
    load job reads it once for checksum verification); ``path`` is then only
    used in error messages.  Malformed or truncated files raise
    :class:`PersistError`.
    """
    source = io.BytesIO(data) if data is not None else path
    try:
        with np.load(source) as npz:
            return _decode_partition(npz, record, spatial, temporal)
    except PersistError:
        raise
    except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
        raise PersistError(f"{path.name}: corrupt partition file: {exc}") from exc


def _decode_partition(
    npz, record: dict, spatial: SpatialResolution, temporal: TemporalResolution
) -> list[IndexedFunction]:
    spatial_pairs = np.asarray(npz["spatial_pairs"], dtype=np.int64).reshape(-1, 2)
    functions: list[IndexedFunction] = []
    for i, meta in enumerate(record["functions"]):
        prefix = f"f{i:04d}"
        values = npz[f"{prefix}__values"]
        if values.ndim != 2:
            raise PersistError(
                f"{prefix}: value matrix must be 2-D, got shape {values.shape}"
            )
        steps = npz[f"{prefix}__steps"]
        graph = DomainGraph(
            n_regions=values.shape[1],
            n_steps=values.shape[0],
            spatial_pairs=spatial_pairs,
            step_labels=steps,
        )
        function = ScalarFunction(
            function_id=meta["function_id"],
            values=values,
            graph=graph,
            spatial=spatial,
            temporal=temporal,
            dataset=meta["dataset"],
        )

        unpacked = [
            BitVector.from_words(values.size, npz[f"{prefix}__{suffix}"])
            .to_bools()
            .reshape(values.shape)
            for suffix in _MASK_KEYS
        ]
        salient = FeatureSet(unpacked[0], unpacked[1])
        extreme = FeatureSet(unpacked[2], unpacked[3])

        intervals: list[IntervalReport] = []
        for j, interval in enumerate(meta["intervals"]):
            thresholds = SalientThresholds(
                theta_pos=interval["theta_pos"],
                theta_neg=interval["theta_neg"],
                salient_max_values=npz[f"{prefix}__iv{j:03d}__max"],
                salient_min_values=npz[f"{prefix}__iv{j:03d}__min"],
            )
            intervals.append(
                IntervalReport(
                    step_start=interval["step_start"],
                    step_stop=interval["step_stop"],
                    thresholds=thresholds,
                    n_maxima=interval["n_maxima"],
                    n_minima=interval["n_minima"],
                )
            )
        features = FunctionFeatures(
            function_id=meta["function_id"],
            salient=salient,
            extreme=extreme,
            extreme_theta_pos=meta["extreme_theta_pos"],
            extreme_theta_neg=meta["extreme_theta_neg"],
            intervals=intervals,
        )
        functions.append(IndexedFunction(function=function, features=features))
    return functions
