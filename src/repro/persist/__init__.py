"""Index persistence: serialize a :class:`~repro.core.corpus.CorpusIndex`
to a versioned on-disk format and load it back without re-indexing.

See :mod:`repro.persist.format` for the format specification and
:mod:`repro.persist.index_io` for the engine-backed save/load pipeline.
The public entry points are also exposed as ``CorpusIndex.save(path)`` /
``CorpusIndex.load(path)`` and the ``repro index`` / ``repro query --index``
CLI verbs.
"""

from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    INDEX_MANIFEST,
    PARTITION_DIR,
    SUPPORTED_VERSIONS,
    deterministic_savez,
    partition_filename,
    read_partition,
    write_partition,
)
from .index_io import (
    DiskUsage,
    PartitionLoadJob,
    PartitionSaveJob,
    disk_usage,
    load_index,
    read_manifest,
    replace_directory,
    save_index,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "INDEX_MANIFEST",
    "PARTITION_DIR",
    "SUPPORTED_VERSIONS",
    "deterministic_savez",
    "partition_filename",
    "read_partition",
    "write_partition",
    "DiskUsage",
    "PartitionLoadJob",
    "PartitionSaveJob",
    "disk_usage",
    "load_index",
    "read_manifest",
    "replace_directory",
    "save_index",
]
