"""Deterministic, seeded fault injection for the cluster backend.

Chaos testing the scheduler by hand-rolling one failure per test (kill a
worker here, corrupt a byte there) does not scale to a failure *matrix*.
This module turns faults into data: a :class:`FaultPlan` is a list of
:class:`FaultSpec` entries — *the Nth time event X happens at site Y, do
Z* — installed per process and consulted from small hook points threaded
through ``protocol.py`` (frame send/recv), ``dataplane.py`` (artifact
read/serve), ``worker.py`` (compute/prefetch/dial/heartbeat) and
``coordinator.py`` (dispatch/handler).

Determinism: which events fire is decided by per-spec event *counters*
(never wall-clock sampling), and byte corruption draws its flip position
from a :class:`random.Random` seeded by the plan — the same plan against
the same event sequence injects the same faults.

Activation:

* ``local_cluster(fault_plan=...)`` installs the plan in the driver
  process and exports it to every spawned worker via the
  ``REPRO_FAULT_PLAN`` environment variable (per-worker targeting stays
  possible through ``worker_env`` overrides).
* A worker daemon (``run_worker``) and a coordinator both call
  :func:`install_from_env` at startup, so env-steered clusters (CI) can
  inject faults without touching any code.

When no plan is installed the hooks cost one module-global read and a
``None`` check — the production hot path stays untouched.

Plan grammar (the ``REPRO_FAULT_PLAN`` value)::

    seed=7;worker.compute:crash;dataplane.serve:corrupt:times=2,role=coordinator

i.e. ``;``-separated entries, each ``site:kind[:key=value,...]`` (one
optional ``seed=N`` entry), with keys ``times`` (count or ``inf``),
``after`` (skip the first N matching events), ``seconds`` (hang/delay
duration), ``role`` (``coordinator``/``worker``: only fire in processes
installed under that role) and ``msg`` (protocol sites: only fire for
that message type).
"""

from __future__ import annotations

import math
import os
import random
import socket
import struct
import threading
import time
from collections import Counter
from dataclasses import dataclass

from ..obs import counter as obs_counter
from ..utils.errors import MapReduceError

#: Environment variable carrying an encoded plan to worker subprocesses.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit code of an injected worker crash (distinct from the hand-rolled
#: kill-worker tests' 23, so logs tell the two apart).
CRASH_EXIT_CODE = 43

#: Hook points.  ``protocol.*`` fire per frame, ``dataplane.*`` per
#: artifact, ``worker.*``/``coordinator.*`` per scheduler event.
FAULT_SITES = frozenset(
    {
        "protocol.send",
        "protocol.recv",
        "dataplane.serve",
        "dataplane.read",
        "worker.compute",
        "worker.prefetch",
        "worker.dial",
        "worker.heartbeat",
        "coordinator.dispatch",
        "coordinator.handler",
    }
)

#: What an eligible event does.
FAULT_KINDS = frozenset(
    {"crash", "hang", "delay", "error", "drop", "corrupt", "truncate"}
)

#: Sites whose hook carries a byte payload that can be mangled in flight.
BYTE_SITES = frozenset({"protocol.send", "dataplane.serve"})

_ROLES = ("", "coordinator", "worker")

#: Default sleep per kind: ``delay`` models a slow link/straggler, ``hang``
#: models a stuck-but-heartbeating worker (effectively forever — the task
#: deadline, not the sleep, must end it).
_DEFAULT_SECONDS = {"delay": 0.05, "hang": 3600.0}

#: Frame header layout, kept in lockstep with ``protocol._HEADER`` (the
#: truncate fault must emit a *valid* header promising more bytes than it
#: sends — a genuine mid-frame EOF, not a short frame).
_HEADER = struct.Struct("!Q")


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: at ``site``, events ``[after, after+times)`` do ``kind``."""

    site: str
    kind: str
    times: float = 1  # int, or math.inf for "every time"
    after: int = 0
    seconds: float | None = None
    role: str = ""  # "", "coordinator" or "worker"
    msg: str = ""  # protocol sites: restrict to one message type name

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise MapReduceError(
                f"unknown fault site {self.site!r}; sites: "
                f"{', '.join(sorted(FAULT_SITES))}"
            )
        if self.kind not in FAULT_KINDS:
            raise MapReduceError(
                f"unknown fault kind {self.kind!r}; kinds: "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )
        if self.kind in ("corrupt", "truncate") and self.site not in BYTE_SITES:
            raise MapReduceError(
                f"fault kind {self.kind!r} needs a byte-carrying site "
                f"({', '.join(sorted(BYTE_SITES))}), not {self.site!r}"
            )
        if self.role not in _ROLES:
            raise MapReduceError(
                f"fault role must be 'coordinator' or 'worker', got {self.role!r}"
            )
        if not (self.times == math.inf or (isinstance(self.times, int) and self.times >= 1)):
            raise MapReduceError(
                f"fault times must be an integer >= 1 or 'inf', got {self.times!r}"
            )
        if not (isinstance(self.after, int) and self.after >= 0):
            raise MapReduceError(
                f"fault after must be an integer >= 0, got {self.after!r}"
            )
        if self.seconds is not None and not self.seconds >= 0:
            raise MapReduceError(
                f"fault seconds must be >= 0, got {self.seconds!r}"
            )

    @property
    def sleep_seconds(self) -> float:
        return (
            self.seconds
            if self.seconds is not None
            else _DEFAULT_SECONDS.get(self.kind, 0.05)
        )

    def encode(self) -> str:
        options = []
        if self.times != 1:
            options.append(f"times={'inf' if self.times == math.inf else self.times}")
        if self.after:
            options.append(f"after={self.after}")
        if self.seconds is not None:
            options.append(f"seconds={self.seconds:g}")
        if self.role:
            options.append(f"role={self.role}")
        if self.msg:
            options.append(f"msg={self.msg}")
        head = f"{self.site}:{self.kind}"
        return f"{head}:{','.join(options)}" if options else head


@dataclass(frozen=True)
class FaultPlan:
    """A seeded list of fault rules, encodable to ``REPRO_FAULT_PLAN``."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the plan grammar (see module docstring); raises typed errors."""
        seed = 0
        specs: list[FaultSpec] = []
        for raw_entry in text.split(";"):
            entry = raw_entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                try:
                    seed = int(entry[len("seed=") :])
                except ValueError:
                    raise MapReduceError(
                        f"{ENV_VAR}: seed must be an integer, got {entry!r}"
                    ) from None
                continue
            site, _, rest = entry.partition(":")
            kind, _, option_text = rest.partition(":")
            if not kind:
                raise MapReduceError(
                    f"{ENV_VAR}: each entry is site:kind[:key=value,...], "
                    f"got {entry!r}"
                )
            options: dict = {}
            for raw_option in option_text.split(",") if option_text else []:
                key, sep, value = raw_option.partition("=")
                key = key.strip()
                if not sep or key not in ("times", "after", "seconds", "role", "msg"):
                    raise MapReduceError(
                        f"{ENV_VAR}: unknown fault option {raw_option!r} in "
                        f"{entry!r} (keys: times, after, seconds, role, msg)"
                    )
                try:
                    if key == "times":
                        options[key] = math.inf if value == "inf" else int(value)
                    elif key == "after":
                        options[key] = int(value)
                    elif key == "seconds":
                        options[key] = float(value)
                    else:
                        options[key] = value
                except ValueError:
                    raise MapReduceError(
                        f"{ENV_VAR}: bad value for {key!r} in {entry!r}"
                    ) from None
            specs.append(FaultSpec(site=site, kind=kind, **options))
        return cls(specs=tuple(specs), seed=seed)

    def encode(self) -> str:
        """The canonical ``REPRO_FAULT_PLAN`` string (parse round-trips)."""
        parts = [f"seed={self.seed}"] if self.seed else []
        parts.extend(spec.encode() for spec in self.specs)
        return ";".join(parts)

    def describe(self) -> str:
        """Human-readable one-line-per-rule rendering (for logs)."""
        lines = [f"fault plan (seed={self.seed}):"]
        for spec in self.specs:
            window = (
                "every time"
                if spec.times == math.inf
                else f"event(s) {spec.after}..{spec.after + int(spec.times) - 1}"
            )
            scope = f" [{spec.role}]" if spec.role else ""
            msg = f" msg={spec.msg}" if spec.msg else ""
            lines.append(f"  {spec.site}: {spec.kind} ({window}){scope}{msg}")
        return "\n".join(lines)


class FaultInjector:
    """Per-process runtime of one plan: counts events, fires eligible ones.

    Thread-safe: hook points are called concurrently from reader, compute,
    prefetch and heartbeat threads.  First matching spec wins per event.
    """

    def __init__(self, plan: FaultPlan, role: str) -> None:
        if role not in ("coordinator", "worker"):
            raise MapReduceError(
                f"injector role must be 'coordinator' or 'worker', got {role!r}"
            )
        self.plan = plan
        self.role = role
        self._lock = threading.Lock()
        self._counts = [0] * len(plan.specs)
        self._rng = random.Random(plan.seed)
        #: ``"site:kind"`` -> times fired, for test introspection.
        self.fired: Counter = Counter()

    def _claim(self, site: str, detail: str) -> FaultSpec | None:
        """Count this event against matching specs; return one due to fire."""
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                if spec.role and spec.role != self.role:
                    continue
                if spec.msg and spec.msg != detail:
                    continue
                count = self._counts[index]
                self._counts[index] = count + 1
                if count < spec.after or count >= spec.after + spec.times:
                    continue
                self.fired[f"{site}:{spec.kind}"] += 1
                obs_counter(
                    "repro.faults.fired", site=site, kind=spec.kind
                ).inc()
                return spec
        return None

    def _flip_position(self, length: int) -> int:
        with self._lock:
            return self._rng.randrange(length)

    def _act(self, spec: FaultSpec, site: str, sock: socket.socket | None) -> None:
        """Perform a non-byte-mangling fault (byte kinds are no-ops here)."""
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind in ("hang", "delay"):
            time.sleep(spec.sleep_seconds)
            return
        if spec.kind == "drop":
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
            raise OSError(f"injected fault: connection dropped at {site}")
        if spec.kind == "error":
            raise OSError(f"injected fault: error at {site}")

    def fire(self, site: str, detail: str = "", sock: socket.socket | None = None) -> None:
        """Hook for non-byte sites: maybe crash/hang/delay/drop/error."""
        spec = self._claim(site, detail)
        if spec is not None:
            self._act(spec, site, sock)

    def frame_out(self, sock: socket.socket, payload: bytes, detail: str) -> bytes:
        """Hook inside ``protocol.send_msg``: maybe mangle the frame.

        ``corrupt`` flips one payload byte (the receiver's unpickle fails →
        ``WireError`` → worker-loss recovery); ``truncate`` sends a header
        promising the full payload, half the bytes, then closes the socket
        (a genuine mid-frame EOF) and raises ``OSError`` so the sender sees
        the loss too.  Other kinds behave as in :meth:`fire`.
        """
        spec = self._claim("protocol.send", detail)
        if spec is None:
            return payload
        if spec.kind == "corrupt" and payload:
            # Flip inside the pickle header region: frames carry no
            # checksum, so the fault must be one the receiver *detects*
            # (unpickle failure), not a silent deep-payload bit flip —
            # arbitrary-position corruption is modeled at the artifact
            # layer, where SHA-256 catches any position.
            mangled = bytearray(payload)
            mangled[self._flip_position(min(len(mangled), 8))] ^= 0xFF
            return bytes(mangled)
        if spec.kind == "truncate":
            try:
                sock.sendall(_HEADER.pack(len(payload)) + payload[: len(payload) // 2])
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
            raise OSError("injected fault: frame truncated at protocol.send")
        self._act(spec, "protocol.send", sock)
        return payload

    def bytes_out(self, site: str, data: bytes, detail: str = "") -> bytes:
        """Hook for byte-serving sites (``dataplane.serve``): maybe mangle."""
        spec = self._claim(site, detail)
        if spec is None:
            return data
        if spec.kind == "corrupt" and data:
            mangled = bytearray(data)
            mangled[self._flip_position(len(mangled))] ^= 0xFF
            return bytes(mangled)
        if spec.kind == "truncate":
            return data[: len(data) // 2]
        self._act(spec, site, None)
        return data


#: The process-wide injector; ``None`` (the default) keeps every hook inert.
INJECTOR: FaultInjector | None = None

_INSTALL_LOCK = threading.Lock()


def install(plan: FaultPlan, role: str) -> FaultInjector:
    """Install ``plan`` as this process's injector (replacing any prior one)."""
    global INJECTOR
    with _INSTALL_LOCK:
        INJECTOR = FaultInjector(plan, role)
        return INJECTOR


def uninstall() -> None:
    """Remove the process's injector; hooks become inert again."""
    global INJECTOR
    with _INSTALL_LOCK:
        INJECTOR = None


def install_from_env(role: str) -> FaultInjector | None:
    """Install from ``REPRO_FAULT_PLAN`` if set and nothing is installed yet."""
    with _INSTALL_LOCK:
        if INJECTOR is not None:
            return INJECTOR
    raw = os.environ.get(ENV_VAR, "")
    if not raw:
        return None
    return install(FaultPlan.parse(raw), role)


# -- hook shims (call sites use these; inert = one global read) --------------


def fire(site: str, detail: str = "", sock: socket.socket | None = None) -> None:
    injector = INJECTOR
    if injector is not None:
        injector.fire(site, detail, sock)


def frame_out(sock: socket.socket, payload: bytes, detail: str) -> bytes:
    injector = INJECTOR
    if injector is not None:
        return injector.frame_out(sock, payload, detail)
    return payload


def bytes_out(site: str, data: bytes, detail: str = "") -> bytes:
    injector = INJECTOR
    if injector is not None:
        return injector.bytes_out(site, data, detail)
    return data
