"""Length-prefixed wire protocol of the cluster backend.

Every connection between a worker daemon and the coordinator speaks the
same framing: a fixed 5-byte preamble (magic + protocol version) exchanged
once at connect time, then a stream of frames, each an 8-byte big-endian
length followed by that many bytes of pickled message.  The preamble lets
both ends reject foreign connections (a port scanner, an old worker build)
before any pickle bytes are interpreted; the version byte makes a protocol
bump an explicit handshake failure instead of an unpickling crash.

Messages are the small dataclasses below.  They pickle by reference, so a
worker only needs ``repro`` importable — no schema registry.  Task payloads
and artifact bytes are opaque ``bytes`` fields produced by the data plane
(:mod:`repro.distributed.dataplane`), which keeps the framing layer free of
NumPy concerns.

The normative specification of the protocol — framing, preamble, heartbeat
rules, and the scheduler conversation (:class:`StealRequest` /
:class:`TaskStream` / :class:`JoinRun`) — lives in ``docs/protocol.md``; a
test asserts every message type and constant defined here is covered there,
so the document cannot silently drift from the code.

Trust model: pickle over a socket executes arbitrary code by design, which
is the standard posture of cluster compute planes (Spark, Dask, Ray all
ship pickled closures).  Workers must only ever be pointed at a coordinator
on a trusted network — the preamble is a liveness/compatibility check, not
authentication.
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass
from typing import Any

from ..utils.errors import MapReduceError
from . import faults

#: Connection preamble: 4 magic bytes + 1 version byte.
MAGIC = b"RPDC"
#: Version 2: the streaming scheduler.  Workers pull work with
#: :class:`StealRequest` instead of being handed one task per exchange,
#: the coordinator streams batches via :class:`TaskStream`, and
#: :class:`JoinRun` attaches (possibly late-joining) workers to the active
#: run.  Version-1 peers are rejected at the preamble, never mid-pickle.
PROTOCOL_VERSION = 2
#: Revision within the version — additive, wire-compatible changes only.
#: Revision 1 ("v2.1") added :attr:`Artifact.sha256`: artifact replies
#: carry the SHA-256 of their payload bytes so workers detect in-flight
#: corruption and re-fetch instead of computing on garbage.  The field
#: defaults to empty, so a v2.0 peer's frames still unpickle; only the
#: version byte participates in the preamble handshake.
#: Revision 2 ("v2.2") added the tracing piggyback: :attr:`JoinRun.trace`
#: tells workers the driver is collecting a trace, and
#: :attr:`TaskResult.spans` ships each task's worker-side spans back as
#: ``(name, offset_seconds, duration_seconds, attrs)`` tuples, re-based
#: onto the coordinator clock on arrival.  Both fields default to empty,
#: so v2.0/v2.1 peers' frames still unpickle.
#: Revision 3 ("v2.3") added the live-observability piggybacks:
#: :attr:`Heartbeat.seq` / :attr:`Heartbeat.metrics` ship a per-worker
#: metrics-registry delta on each heartbeat (folded fleet-wide by the
#: coordinator, deduplicated by sequence number and shipper epoch), and
#: :attr:`JoinRun.profile` / :attr:`TaskResult.profile` do for the
#: sampling profiler what v2.2 did for spans: per-task collapsed-stack
#: counts shipped back and tagged by worker.  All four fields default to
#: inert values and receivers ``getattr``-gate them, so v2.0–v2.2 peers'
#: frames still unpickle in both directions.
PROTOCOL_REVISION = 3
PREAMBLE = MAGIC + bytes([PROTOCOL_VERSION])

#: Frame header: payload length as an unsigned 64-bit big-endian integer.
_HEADER = struct.Struct("!Q")

#: Upper bound on a single frame.  Generous (an artifact frame carries one
#: whole value matrix) but finite, so a corrupted length prefix fails fast
#: instead of attempting a petabyte allocation.
MAX_FRAME_BYTES = 1 << 38  # 256 GiB


class WireError(MapReduceError):
    """A connection died or spoke garbage mid-conversation.

    Distinct from a job failure: the coordinator treats :class:`WireError`
    (and plain ``OSError``) as *worker loss* — the task is retried on
    another worker — whereas an error reported inside a
    :class:`TaskResult` is a deterministic job bug and fails the run.
    """


# -- messages ----------------------------------------------------------------


@dataclass
class Hello:
    """Worker -> coordinator, once per connection, after the preamble."""

    worker_id: str
    pid: int
    host: str


@dataclass
class Welcome:
    """Coordinator -> worker: registration accepted, here is the contract."""

    heartbeat_interval: float
    spool_dir: str


@dataclass
class Task:
    """Coordinator -> worker: run one map chunk or reduce group."""

    task_id: int
    payload: bytes  # dataplane-pickled ("map"|"reduce", job, data)


@dataclass
class TaskResult:
    """Worker -> coordinator: outcome of one task.

    ``status`` is ``"ok"`` (``result`` holds the emitted list) or ``"err"``
    (``traceback`` holds the remote traceback text and ``original`` the
    exception instance when it survived a pickle round trip).  ``run_id``
    names the run the task belongs to: with pipelined dispatch a result can
    arrive after its run already ended, and the coordinator must be able to
    discard such stale results instead of crediting them to the next run.

    ``spans`` (v2.2) carries the task's worker-side trace spans, each a
    ``(name, offset_seconds, duration_seconds, attrs)`` tuple with offsets
    relative to the worker's task start.  Populated only when the run's
    :class:`JoinRun` had ``trace=True``; empty (and costing nothing on the
    wire beyond the empty tuple) otherwise.

    ``profile`` (v2.3) carries the task's collapsed-stack sample counts as
    a ``{stack: samples}`` dict when the run's :class:`JoinRun` had
    ``profile=True``; ``None`` otherwise.  The coordinator folds it into
    the driver profile under a ``worker:<id>`` root frame.
    """

    task_id: int
    status: str
    result: Any = None
    seconds: float = 0.0
    traceback: str = ""
    original: BaseException | None = None
    run_id: str = ""
    spans: tuple = ()
    profile: Any = None


@dataclass
class ArtifactRequest:
    """Worker -> coordinator: send me the bytes of this artifact."""

    name: str


@dataclass
class Artifact:
    """Coordinator -> worker: one artifact, as ``.npy`` bytes.

    ``error`` is non-empty when the artifact could not be served (its run
    already ended and the spool file is gone) — the worker fails the task
    that asked instead of waiting out its fetch timeout.

    ``sha256`` (v2.1) is the hex SHA-256 of ``data`` as registered on the
    coordinator.  A worker verifies the fetched bytes against the digest in
    the artifact *reference* and re-fetches (bounded) on mismatch, so a
    corrupted frame is retried instead of silently decoded.
    """

    name: str
    data: bytes = b""
    error: str = ""
    sha256: str = ""


@dataclass
class StealRequest:
    """Worker -> coordinator: my run queue has room; steal me more work.

    The work-stealing edge of the v2 scheduler.  Dispatch is pull-based:
    the coordinator never sends unsolicited tasks, it grants queued tasks
    against the ``capacity`` a worker has announced.  A worker announces its
    full prefetch depth when it joins a run (:class:`JoinRun`) and one more
    slot after every :class:`TaskResult`, so fast workers drain the shared
    queue while a straggler holds at most its own pipeline.
    """

    worker_id: str
    capacity: int = 1


@dataclass
class TaskStream:
    """Coordinator -> worker: a batch of stolen tasks, streamed.

    The grant matching one or more :class:`StealRequest` credits.  The
    worker queues the tasks locally and prefetches the next task's
    artifacts while the current one computes, so the data plane transfer
    overlaps compute instead of serializing with it.
    """

    run_id: str
    tasks: list  # list[Task]


@dataclass
class JoinRun:
    """Coordinator -> worker: you are attached to the active run.

    Sent to every registered worker when a run starts and to any worker
    that registers *while* a run is executing — elastic join: a late worker
    answers with a :class:`StealRequest` and immediately receives stolen
    work.  ``prefetch_depth`` is the number of tasks the worker should keep
    in flight (one computing, the rest prefetching artifacts).

    ``trace`` (v2.2) marks the run as traced: the worker records per-task
    spans and ships them back via :attr:`TaskResult.spans`.  Defaults off,
    so untraced runs pay nothing.

    ``profile`` (v2.3) marks the run as profiled: the worker samples each
    task's slot thread and ships collapsed-stack counts back via
    :attr:`TaskResult.profile`.  Defaults off, so unprofiled runs pay
    nothing.
    """

    run_id: str
    phase: str
    prefetch_depth: int = 2
    trace: bool = False
    profile: bool = False


@dataclass
class Heartbeat:
    """Worker -> coordinator: still alive (sent during tasks too).

    ``seq`` and ``metrics`` (v2.3) piggyback the worker's metrics-registry
    delta since its previous heartbeat: ``metrics`` is the JSON-able delta
    dict produced by :class:`repro.obs.DeltaShipper` (``None`` when
    nothing changed), and ``seq`` mirrors its sequence number so the
    coordinator drops duplicates.  Purely advisory telemetry: a delta lost
    with a dying connection is dropped, never re-shipped, and heartbeats
    still never advance task-progress deadlines.
    """

    worker_id: str
    seq: int = 0
    metrics: Any = None


@dataclass
class EndRun:
    """Coordinator -> worker: a run finished; drop its cached artifacts."""

    run_id: str


@dataclass
class Shutdown:
    """Coordinator -> worker: exit cleanly (do not reconnect)."""

    reason: str = ""


# -- framing -----------------------------------------------------------------


def send_preamble(sock: socket.socket) -> None:
    sock.sendall(PREAMBLE)


def recv_preamble(sock: socket.socket) -> None:
    """Read and verify the 5-byte preamble; raises :class:`WireError`."""
    raw = _recv_exact(sock, len(PREAMBLE), eof_ok=False)
    if raw[:4] != MAGIC:
        raise WireError(f"peer is not a repro cluster endpoint (got {raw[:4]!r})")
    if raw[4] != PROTOCOL_VERSION:
        raise WireError(
            f"protocol version mismatch: peer speaks {raw[4]}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )


def send_msg(sock: socket.socket, message: Any) -> None:
    """Send one framed, pickled message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        payload = faults.frame_out(sock, payload, type(message).__name__)
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise WireError(f"connection lost while sending: {exc}") from exc


def recv_msg(sock: socket.socket) -> Any | None:
    """Receive one message; ``None`` on clean EOF at a frame boundary.

    EOF in the middle of a frame, an oversized length prefix, or an
    unpicklable payload raise :class:`WireError` — the caller cannot trust
    anything further on this connection.
    """
    try:
        faults.fire("protocol.recv", sock=sock)
    except OSError as exc:
        raise WireError(f"connection lost while receiving: {exc}") from exc
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap "
            "(corrupt stream?)"
        )
    payload = _recv_exact(sock, length, eof_ok=False)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise WireError(f"could not unpickle a frame: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on immediate EOF when allowed."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise WireError(f"connection lost while receiving: {exc}") from exc
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise WireError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(spec: str, variable: str = "address") -> tuple[str, int]:
    """Parse ``HOST:PORT`` into a ``(host, port)`` pair.

    ``variable`` names the source in the error message (e.g. the
    ``REPRO_CLUSTER`` environment variable, or the ``--connect`` flag).
    """
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise MapReduceError(
            f"{variable} must be HOST:PORT (e.g. 127.0.0.1:7077), got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise MapReduceError(
            f"{variable} must be HOST:PORT with an integer port, got {spec!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise MapReduceError(f"{variable} port must be in [0, 65535], got {port}")
    return host, port
