"""Coordinator and :class:`ClusterEngine`: streaming multi-host map-reduce.

The coordinator is the cluster's driver side.  It listens on a TCP port;
worker daemons (``repro worker --connect HOST:PORT``) dial in and register.
:class:`ClusterEngine` implements the same ``run(job, inputs)`` contract as
:class:`repro.mapreduce.engine.LocalEngine` on top of a *streaming,
work-stealing* scheduler (``docs/ARCHITECTURE.md`` has the full picture,
``docs/protocol.md`` the wire conversation):

* dispatch is pull-based: workers announce queue capacity with
  ``StealRequest`` and the coordinator grants queued tasks in ``TaskStream``
  batches — an idle worker steals whatever is queued, so a straggler holds
  at most its own prefetch pipeline while fast hosts drain the shared queue,
* steal granularity adapts to measured task throughput: the coordinator
  keeps a per-job-class estimate of seconds-per-input from previous runs
  and sizes task chunks toward :data:`TARGET_TASK_SECONDS` apiece,
* the shuffle is *overlapped*: each map result is folded into per-key,
  tag-ordered buckets the moment it lands, so by the time the last map task
  finishes the shuffle is already done and reduce tasks dispatch
  immediately — no barrier wave.  The fold is order-insensitive (buckets
  are tag-sorted and keys ordered by minimal tag at finalization), which
  keeps grouped values — and therefore reduce outputs — bit-identical to
  serial no matter which host ran which task or in which order results
  arrived,
* workers may join mid-run: a daemon that registers while a run is active
  receives ``JoinRun`` immediately and steals from the same queue,
* a worker that dies mid-task (socket loss or heartbeat silence) has its
  outstanding tasks requeued at the front for other workers, each task up
  to :data:`MAX_TASK_ATTEMPTS` hosts; a task that *fails* (raises) is a
  deterministic job bug and fails the run with the original traceback,
  library errors keeping their type — the exact error contract of the
  process executor.

``local_cluster(n_hosts)`` is the test/CI harness: it binds an ephemeral
port, spawns ``n_hosts`` localhost worker daemons, waits for registration,
and tears everything down leak-free (workers shut down, listener closed,
spool directory removed).
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import math
import os
import secrets
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from .. import obs
from ..mapreduce.engine import LocalEngine
from ..mapreduce.job import JobStats, MapReduceJob
from ..utils.errors import ClusterUnavailableError, MapReduceError, ReproError
from . import faults, protocol
from .dataplane import DEFAULT_MIN_BYTES, ArtifactPlane, dumps
from .faults import FaultPlan
from .retry import Backoff
from .protocol import (
    Artifact,
    ArtifactRequest,
    Heartbeat,
    Hello,
    JoinRun,
    Shutdown,
    StealRequest,
    Task,
    TaskResult,
    TaskStream,
    Welcome,
    WireError,
)

#: A task is retried on this many distinct workers before the run fails
#: (a task whose *input* reliably kills its host must not take the whole
#: cluster down one worker at a time).
MAX_TASK_ATTEMPTS = 3

#: Seconds between worker heartbeats (announced in the Welcome message).
HEARTBEAT_INTERVAL = 1.0

#: Receive timeout on a worker connection: if the socket stays completely
#: silent (no heartbeat, no steal request, no result) this long, the worker
#: is declared dead and its outstanding tasks are requeued for the others.
#: Heartbeats keep flowing *during* task execution, so long tasks do not
#: trip this — only a hung or vanished worker does.
HEARTBEAT_TIMEOUT = 30.0

#: Default wait for the requested number of workers to register.
CONNECT_TIMEOUT = 60.0

#: How long a dialing-in connection gets to complete the registration
#: handshake (preamble + Hello) before the coordinator drops it — a port
#: scanner or a wedged peer must not pin a registration thread forever.
REGISTRATION_TIMEOUT = 10.0

#: Per-task execution deadline: a worker that holds granted tasks without
#: reporting a single result for this long is declared stuck and loses its
#: tasks to the requeue — even while its heartbeats keep arriving.
#: Heartbeats prove the *process* is alive; progress proves the *work* is.
#: ``None`` disables the deadline.
DEFAULT_TASK_DEADLINE = 300.0

#: Default coordinator address when ``REPRO_CLUSTER`` is unset.
DEFAULT_BIND = "127.0.0.1:7077"

#: Tasks a worker keeps in flight by default: one computing plus one whose
#: payload/artifacts are prefetching, so data-plane transfer overlaps
#: compute instead of serializing with it.
DEFAULT_PREFETCH_DEPTH = 2

#: Adaptive steal granularity aims for tasks of about this many seconds:
#: long enough to amortize dispatch, short enough that work stealing can
#: rebalance around a straggler before the run ends.
TARGET_TASK_SECONDS = 0.2

#: Without a throughput measurement for the job class, split the input into
#: this many tasks per worker — fine-grained enough for stealing to matter.
AUTO_TASKS_PER_WORKER = 8

#: Executors :class:`ClusterEngine` may downgrade to when the cluster is
#: unavailable (``fallback=...``).
FALLBACK_EXECUTORS = ("serial", "thread", "process")

logger = obs.get_logger(__name__)

#: Distinguishes metric label sets of coexisting coordinators/engines in
#: one process (tests run many); monotonic so snapshots stay readable.
_INSTANCE_SEQ = itertools.count(1)


def _clip(text: str, limit: int = 60) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _chunk_label(chunk: list[tuple[int, tuple[Any, Any]]]) -> str:
    """Name a map chunk by its input positions and keys (for quarantine)."""
    first_index, (first_key, _) = chunk[0]
    if len(chunk) == 1:
        return f"input #{first_index}, key {_clip(repr(first_key))}"
    last_index, (last_key, _) = chunk[-1]
    return (
        f"inputs #{first_index}..#{last_index}, keys "
        f"{_clip(repr(first_key))}..{_clip(repr(last_key))}"
    )


class WorkerHandle:
    """Coordinator-side state of one registered worker connection.

    ``credit`` and ``outstanding`` are scheduler state guarded by the
    active run's condition (:class:`_RunState.cond`): credit counts
    unanswered :class:`StealRequest` capacity, ``outstanding`` holds the
    task ids granted but not yet reported, so a lost worker's tasks can be
    requeued exactly.
    """

    def __init__(
        self, sock: socket.socket, worker_id: str, pid: int, host: str
    ) -> None:
        self.sock = sock
        self.worker_id = worker_id
        self.pid = pid
        self.host = host
        self.alive = True
        self.credit = 0
        self.outstanding: set[int] = set()
        #: Last time this worker *progressed* — registered, was granted
        #: tasks, or reported a result.  Deliberately NOT advanced by
        #: heartbeats: the task deadline distinguishes a stuck worker
        #: (beating, never reporting) from a live one.
        self.last_progress = time.monotonic()
        #: Last heartbeat arrival — the liveness signal ``/healthz``
        #: reports as a heartbeat age.  Separate from ``last_progress``
        #: by design: liveness and progress are different facts.
        self.last_heartbeat = time.monotonic()
        self._send_lock = threading.Lock()

    def send(self, message: Any) -> None:
        with self._send_lock:
            protocol.send_msg(self.sock, message)

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass


class _TaskState:
    """One schedulable task (map chunk or reduce group) of the active run."""

    __slots__ = (
        "kind",
        "payload",
        "n_inputs",
        "attempts",
        "done",
        "seconds",
        "losers",
        "label",
    )

    def __init__(
        self, kind: str, payload: bytes, n_inputs: int, label: str = ""
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.n_inputs = n_inputs
        self.attempts = 0
        self.done = False
        self.seconds = 0.0
        #: Distinct workers lost while this task was outstanding on them —
        #: the poison-quarantine signal (a task whose *input* kills hosts
        #: racks up distinct losers; a flaky host racks up attempts).
        self.losers: set[str] = set()
        #: Human-readable description of the task's input (chunk indices /
        #: reduce key), named in the quarantine error.
        self.label = label


class _RunState:
    """Shared bookkeeping of one run's scheduling (guarded by ``cond``).

    The scheduler has no phase barrier: ``queue`` holds whatever is
    currently stealable (map tasks, then — the moment the last map result
    lands — reduce tasks), and ``groups`` accumulates the overlapped
    shuffle as map results arrive.
    """

    def __init__(
        self,
        run_id: str,
        job: MapReduceJob,
        plane: ArtifactPlane,
        streaming: bool,
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        deadline: float | None = DEFAULT_TASK_DEADLINE,
    ) -> None:
        self.run_id = run_id
        self.job = job
        self.plane = plane
        self.streaming = streaming
        self.prefetch_depth = prefetch_depth
        #: Per-task execution deadline (seconds of grant-to-result silence
        #: tolerated per worker); ``None`` disables the check.
        self.deadline = deadline
        self.cond = threading.Condition()
        self.tasks: dict[int, _TaskState] = {}
        self.queue: deque[int] = deque()
        self.phase = "map"
        self.n_map_tasks = 0
        self.map_remaining = 0
        self.reduce_remaining = 0
        #: Reduce task ids in their deterministic (shuffle) order — outputs
        #: are flattened in this order, never in completion order.
        self.reduce_order: list[int] = []
        self.reduce_emitted: dict[int, list] = {}
        #: Overlapped shuffle: key -> list of (tag, value), appended as map
        #: results land, tag-sorted at finalization.  Insertion order of
        #: this dict is arrival order and deliberately never consulted.
        self.groups: dict[Any, list[tuple[Any, Any]]] = {}
        #: Barrier mode (``streaming_reduce=False``): raw emitted lists.
        self.map_raw: list[list] = []
        self.fold_seconds = 0.0
        self.map_inputs_done = 0
        self.map_seconds_done = 0.0
        self.error: BaseException | None = None
        self.finished = False
        #: Worker-loss events (not per-requeued-task): one worker dying with
        #: several prefetched tasks in flight is one retry, which keeps the
        #: fault-tolerance accounting deterministic under pipelining.
        self.retries = 0
        self.last_loss = ""
        self.worker_tasks: dict[str, int] = {}
        #: Steal grants (TaskStream batches) per worker id.
        self.worker_steals: dict[str, int] = {}
        #: Tracing state, latched at run start: workers are told via
        #: ``JoinRun.trace`` and arriving results' spans are re-based under
        #: ``span_id`` (the run's "cluster.run_job" span).
        self.trace_enabled = obs.enabled()
        self.span_id: int | None = None
        #: Profiling state, latched at run start like tracing: workers are
        #: told via ``JoinRun.profile`` and results' collapsed-stack counts
        #: fold into the driver profiler under ``worker:<id>`` roots.
        self.profile_enabled = obs.profile_enabled()

    def completed(self) -> int:
        return sum(1 for state in self.tasks.values() if state.done)


class Coordinator:
    """Listens for workers and schedules runs onto them.

    Locking discipline: ``_cond`` guards the worker registry and is a leaf
    lock — it may be taken while holding a run's ``cond`` but never the
    other way around.  One persistent reader thread per worker connection
    handles everything that worker says (heartbeats, steal requests,
    results, artifact fetches); there are no per-phase dispatch threads.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spool_dir: str | Path | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
        registration_timeout: float = REGISTRATION_TIMEOUT,
    ) -> None:
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.registration_timeout = registration_timeout
        # Env-steered chaos (CI): a REPRO_FAULT_PLAN in the environment
        # arms this process's hooks under the coordinator role.
        faults.install_from_env(role="coordinator")
        self._owns_spool = spool_dir is None
        if spool_dir is None:
            self.spool_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-spool-"))
        else:
            self.spool_dir = Path(spool_dir)
            self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._workers: list[WorkerHandle] = []
        self._cond = threading.Condition()
        # One run at a time: concurrent runs on one coordinator (two
        # application threads querying through the same shared engine) take
        # turns instead of interleaving their queues.
        self._run_lock = threading.Lock()
        #: The active run, readable by reader threads (guarded by ``_cond``).
        self._run: _RunState | None = None
        #: Live artifact planes by run id, for serving ArtifactRequests.
        self._planes: dict[str, ArtifactPlane] = {}
        #: Measured seconds-per-map-input by job class, the signal behind
        #: adaptive steal granularity (EMA across runs).
        self._throughput: dict[str, float] = {}
        self.closed = False
        self.name = f"c{next(_INSTANCE_SEQ)}"
        # Cumulative retry count lives in the metrics registry; the
        # ``total_retries`` attribute of old is preserved as a thin view.
        self._retries_counter = obs.counter(
            "repro.cluster.retries", coordinator=self.name
        )
        self.last_run_worker_tasks: dict[str, int] = {}
        self.last_run_worker_steals: dict[str, int] = {}
        #: Inputs quarantined as poison across this coordinator's runs
        #: (task kind + input label), surfaced on ``/healthz``.
        self.quarantined_inputs: list[str] = []
        #: Fleet metrics view: per-worker registry replicas folded from
        #: the v2.3 heartbeat deltas (advisory telemetry only).
        self.fleet = obs.FleetAggregator()
        self._run_seq = 0
        try:
            self._listener = socket.create_server((host, port), reuse_port=False)
        except OSError as exc:
            raise MapReduceError(
                f"cannot bind cluster coordinator to {host}:{port}: {exc} "
                "(is another coordinator already running there?)"
            ) from exc
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-coordinator"
        )
        self._accept_thread.start()
        # Live observability is opt-in: with REPRO_METRICS_PORT unset this
        # is a dict lookup and no exporter (or socket) ever exists.
        exporter = obs.ensure_from_env()
        if exporter is not None:
            exporter.add_source(self.fleet.snapshot)
            exporter.add_health(f"coordinator:{self.name}", self.health_snapshot)

    @property
    def total_retries(self) -> int:
        """Worker-loss retry events across every run (registry-backed view)."""
        return self._retries_counter.value

    # -- registration --------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            threading.Thread(target=self._register, args=(conn,), daemon=True).start()

    def _register(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(self.registration_timeout)
            protocol.recv_preamble(conn)
            protocol.send_preamble(conn)
            hello = protocol.recv_msg(conn)
            if not isinstance(hello, Hello):
                raise WireError(f"expected Hello, got {type(hello).__name__}")
            protocol.send_msg(
                conn,
                Welcome(
                    heartbeat_interval=self.heartbeat_interval,
                    spool_dir=str(self.spool_dir),
                ),
            )
            conn.settimeout(self.heartbeat_timeout)
        except (WireError, OSError):
            with contextlib.suppress(OSError):
                conn.close()
            return
        handle = WorkerHandle(conn, hello.worker_id, hello.pid, hello.host)
        with self._cond:
            if self.closed:
                handle.close()
                return
            self._workers.append(handle)
            run = self._run
            self._cond.notify_all()
        threading.Thread(
            target=self._reader_loop,
            args=(handle,),
            daemon=True,
            name=f"repro-reader-{handle.worker_id}",
        ).start()
        # Elastic join: a worker registering mid-run is attached to the
        # active run immediately — its StealRequest answer starts pulling
        # queued tasks off the shared queue.
        if run is not None:
            try:
                handle.send(
                    JoinRun(
                        run_id=run.run_id,
                        phase=run.phase,
                        prefetch_depth=run.prefetch_depth,
                        trace=run.trace_enabled,
                        profile=run.profile_enabled,
                    )
                )
            except (WireError, OSError):
                self._mark_dead(handle)

    def alive_workers(self) -> list[WorkerHandle]:
        with self._cond:
            return [w for w in self._workers if w.alive]

    def worker_pids(self) -> list[int]:
        """PIDs of the currently registered, alive workers."""
        return [w.pid for w in self.alive_workers()]

    def wait_for_workers(self, n: int, timeout: float) -> None:
        """Block until ``n`` workers are registered and alive.

        Raises :class:`ClusterUnavailableError` on timeout — the signal
        :class:`ClusterEngine` downgrades on when a fallback is declared.
        The poll interval backs off with jitter (registration also
        notifies the condition, so a worker arriving is seen immediately;
        the poll only bounds how late the timeout itself fires).
        """
        deadline = time.monotonic() + timeout
        poll = Backoff(base=0.05, cap=0.5)
        with self._cond:
            while len([w for w in self._workers if w.alive]) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    alive = len([w for w in self._workers if w.alive])
                    raise ClusterUnavailableError(
                        f"cluster coordinator at {self.address[0]}:"
                        f"{self.address[1]} has {alive} worker(s) after "
                        f"{timeout:.0f}s, needs {n} — start workers with "
                        f"`repro worker --connect "
                        f"{self.address[0]}:{self.address[1]}`"
                    )
                self._cond.wait(min(remaining, max(0.02, poll.next_delay())))

    def next_run_id(self) -> str:
        with self._cond:
            self._run_seq += 1
            return f"run{self._run_seq:04d}-{secrets.token_hex(4)}"

    def _active_run(self) -> _RunState | None:
        with self._cond:
            return self._run

    # -- per-worker reader ---------------------------------------------------

    def _reader_loop(self, handle: WorkerHandle) -> None:
        """Pump one worker's connection for the life of the registration."""
        try:
            while handle.alive:
                message = protocol.recv_msg(handle.sock)
                if message is None:
                    raise WireError("worker closed the connection")
                faults.fire(
                    "coordinator.handler",
                    detail=type(message).__name__,
                    sock=handle.sock,
                )
                if isinstance(message, Heartbeat):
                    handle.last_heartbeat = time.monotonic()
                    # v2.3 piggyback (getattr: a v2.2 worker's Heartbeat
                    # pickles without the field).  Advisory only — a
                    # malformed or duplicate delta is dropped, and
                    # heartbeats still never advance ``last_progress``.
                    delta = getattr(message, "metrics", None)
                    if delta is not None and self.fleet.apply(
                        handle.worker_id, delta
                    ):
                        obs.counter(
                            "repro.cluster.metrics_deltas",
                            worker=handle.worker_id,
                        ).inc()
                    continue
                if isinstance(message, ArtifactRequest):
                    self._serve_artifact(handle, message)
                elif isinstance(message, StealRequest):
                    self._on_steal(handle, message)
                elif isinstance(message, TaskResult):
                    self._on_result(handle, message)
                else:
                    raise WireError(
                        f"unexpected {type(message).__name__} from worker "
                        f"{handle.worker_id!r}"
                    )
        except (WireError, OSError, TimeoutError) as exc:
            self._on_worker_lost(handle, exc)

    def _serve_artifact(self, handle: WorkerHandle, request: ArtifactRequest) -> None:
        # Artifact names are "<run_id>-aNNNNN"; route to that run's plane.
        run_id = request.name.rpartition("-a")[0]
        plane = self._planes.get(run_id)
        if plane is None:
            handle.send(
                Artifact(
                    name=request.name,
                    error=f"artifact {request.name!r} belongs to a finished run",
                )
            )
            return
        try:
            data = plane.payload(request.name)
            digest = plane.checksum(request.name)
        except (MapReduceError, OSError) as exc:
            handle.send(Artifact(name=request.name, error=str(exc)))
            return
        # The fault hook mangles *after* the digest is taken: an injected
        # byte flip ships with the honest checksum, which is exactly what
        # the worker-side verification must catch and re-fetch.
        data = faults.bytes_out("dataplane.serve", data, detail=request.name)
        run = self._active_run()
        serve_parent = run.span_id if run is not None and run.run_id == run_id else None
        with obs.span(
            "artifact.serve",
            parent=serve_parent,
            artifact=request.name,
            worker=handle.worker_id,
            n_bytes=len(data),
        ):
            handle.send(Artifact(name=request.name, data=data, sha256=digest))
        obs.counter("repro.dataplane.served_bytes").inc(len(data))
        obs.counter("repro.dataplane.served").inc()

    def _on_steal(self, handle: WorkerHandle, request: StealRequest) -> None:
        run = self._active_run()
        if run is None:
            return
        with run.cond:
            handle.credit += max(1, request.capacity)
            self._grant_locked(run, handle)

    def _on_result(self, handle: WorkerHandle, message: TaskResult) -> None:
        run = self._active_run()
        if run is None or message.run_id != run.run_id:
            return  # stale result from a run that already ended
        with run.cond:
            handle.last_progress = time.monotonic()
            handle.outstanding.discard(message.task_id)
            state = run.tasks.get(message.task_id)
            if state is None or state.done:
                run.cond.notify_all()
                return
            if message.status == "err":
                if run.error is None:
                    run.error = self._job_error(message, handle, state.kind)
                run.cond.notify_all()
                return
            state.done = True
            state.seconds = message.seconds
            run.worker_tasks[handle.worker_id] = (
                run.worker_tasks.get(handle.worker_id, 0) + 1
            )
            if run.trace_enabled:
                self._record_task_spans(run, handle, message, state.kind)
            if run.profile_enabled:
                # v2.3: fold the task's worker-side samples into the
                # driver profile, rooted under the worker's id so fleet
                # stacks stay distinguishable.  No-op if the driver's
                # profiler already ended.
                counts = getattr(message, "profile", None)
                if counts:
                    obs.active_profiler().add_counts(
                        counts, prefix=f"worker:{handle.worker_id}"
                    )
            if state.kind == "map":
                run.map_remaining -= 1
                run.map_inputs_done += state.n_inputs
                run.map_seconds_done += message.seconds
                start = time.perf_counter()
                if run.streaming:
                    # Overlapped shuffle: fold this map output into the
                    # per-key buckets now, while other map tasks still run.
                    for tag, key, value in message.result:
                        bucket = run.groups.get(key)
                        if bucket is None:
                            run.groups[key] = bucket = []
                        bucket.append((tag, value))
                else:
                    run.map_raw.append(message.result)
                fold_delta = time.perf_counter() - start
                run.fold_seconds += fold_delta
                obs.record_span(
                    "shuffle.fold",
                    fold_delta,
                    parent=run.span_id,
                    task_id=message.task_id,
                )
                if run.map_remaining == 0:
                    self._seed_reduce_locked(run)
                    self._grant_all_locked(run)
            else:
                run.reduce_remaining -= 1
                run.reduce_emitted[message.task_id] = message.result
                if run.reduce_remaining == 0:
                    run.finished = True
            run.cond.notify_all()

    @staticmethod
    def _record_task_spans(
        run: _RunState, handle: WorkerHandle, message: TaskResult, kind: str
    ) -> None:
        """Re-base a result's worker-side spans onto the driver clock.

        The worker reports ``seconds`` and span offsets on *its* clock; the
        only driver-clock anchor is the result's arrival time, so the task
        span is placed ending now with the reported duration, parented
        under the run's span, and the worker's sub-spans land inside it at
        their offsets.  One lane (track) per worker id.
        """
        trace = obs.current_trace()
        if trace is None:
            return
        track = f"worker:{handle.worker_id}"
        task_start = trace.rel_now() - message.seconds
        task_span = trace.add_span(
            f"{kind}.task",
            task_start,
            message.seconds,
            parent_id=run.span_id,
            track=track,
            attrs={"task_id": message.task_id, "worker": handle.worker_id},
        )
        for name, offset, duration, attrs in getattr(message, "spans", ()) or ():
            trace.add_span(
                name,
                task_start + offset,
                duration,
                parent_id=task_span,
                track=track,
                attrs=dict(attrs),
            )

    def _seed_reduce_locked(self, run: _RunState) -> None:
        """Finalize the shuffle and enqueue reduce tasks (run.cond held).

        Streaming mode sorts each bucket by tag and orders keys by their
        minimal tag — exactly the grouping :meth:`LocalEngine.shuffle`
        produces from the concatenated map outputs, independent of the
        order map results arrived in.
        """
        start = time.perf_counter()
        if run.streaming:
            entries = []
            for key, bucket in run.groups.items():
                bucket.sort(key=lambda tagged: tagged[0])
                entries.append((bucket[0][0], key, [value for _, value in bucket]))
            entries.sort(key=lambda entry: entry[0])
            grouped = [(key, values) for _, key, values in entries]
        else:
            groups = LocalEngine.shuffle(
                pair for emitted in run.map_raw for pair in emitted
            )
            grouped = list(groups.items())
        finalize_delta = time.perf_counter() - start
        run.fold_seconds += finalize_delta
        obs.record_span(
            "shuffle.finalize",
            finalize_delta,
            parent=run.span_id,
            n_groups=len(grouped),
        )
        run.phase = "reduce"
        next_id = run.n_map_tasks
        for key, values in grouped:
            payload = dumps(("reduce", run.job, (key, values)), run.plane)
            run.tasks[next_id] = _TaskState(
                "reduce", payload, 1, label=f"group key {_clip(repr(key))}"
            )
            run.reduce_order.append(next_id)
            run.queue.append(next_id)
            next_id += 1
        run.reduce_remaining = len(grouped)
        if not grouped:
            run.finished = True

    def _grant_locked(self, run: _RunState, handle: WorkerHandle) -> None:
        """Grant queued tasks against a worker's credit (run.cond held)."""
        if run.error is not None or not handle.alive:
            return
        batch: list[Task] = []
        while handle.credit > 0 and run.queue:
            task_id = run.queue.popleft()
            batch.append(Task(task_id=task_id, payload=run.tasks[task_id].payload))
            handle.outstanding.add(task_id)
            handle.credit -= 1
        if not batch:
            return
        try:
            faults.fire("coordinator.dispatch", sock=handle.sock)
            with obs.span(
                "scheduler.dispatch",
                parent=run.span_id,
                worker=handle.worker_id,
                n_tasks=len(batch),
            ):
                handle.send(TaskStream(run_id=run.run_id, tasks=batch))
            run.worker_steals[handle.worker_id] = (
                run.worker_steals.get(handle.worker_id, 0) + 1
            )
            # A fresh grant restarts the worker's execution deadline: it
            # now owes a result for new work, measured from this moment.
            handle.last_progress = time.monotonic()
        except (WireError, OSError):
            # The send failed, so the tasks never left: requeue them at the
            # front without burning an attempt.  The reader thread notices
            # the dead socket and handles anything already outstanding.
            for task in reversed(batch):
                handle.outstanding.discard(task.task_id)
                run.queue.appendleft(task.task_id)
            self._mark_dead(handle)

    def _grant_all_locked(self, run: _RunState) -> None:
        """Offer the queue to every worker with credit (run.cond held)."""
        for handle in self.alive_workers():
            if not run.queue:
                return
            if handle.credit > 0:
                self._grant_locked(run, handle)

    def _on_worker_lost(self, handle: WorkerHandle, exc: BaseException) -> None:
        was_alive = handle.alive
        self._mark_dead(handle)
        if self.closed or not was_alive:
            return
        run = self._active_run()
        if run is None:
            return
        with run.cond:
            lost = sorted(
                task_id
                for task_id in handle.outstanding
                if task_id in run.tasks and not run.tasks[task_id].done
            )
            handle.outstanding.clear()
            if not lost:
                run.cond.notify_all()
                return
            # One retry per loss event, however many tasks were in flight.
            run.retries += 1
            obs.counter("repro.cluster.worker_losses", worker=handle.worker_id).inc()
            run.last_loss = (
                f"worker {handle.worker_id!r} (pid {handle.pid}) lost with "
                f"{len(lost)} {run.phase} task(s) in flight: {exc}"
            )
            logger.warning("requeueing after loss: %s", run.last_loss)
            for task_id in reversed(lost):
                state = run.tasks[task_id]
                state.attempts += 1
                state.losers.add(handle.worker_id)
                # Quarantine: a task that took down MAX_TASK_ATTEMPTS
                # *distinct* workers is poison — its input reliably kills
                # hosts, so fail fast naming the input instead of feeding
                # it the rest of the cluster.  The total-attempts backstop
                # (2x) catches one flaky host rejoining and dying forever.
                if (
                    len(state.losers) >= MAX_TASK_ATTEMPTS
                    or state.attempts >= 2 * MAX_TASK_ATTEMPTS
                ):
                    run.error = MapReduceError(
                        f"poison task quarantined: {state.kind} task "
                        f"{task_id} ({state.label or 'unlabelled input'}) "
                        f"took down {len(state.losers)} distinct worker(s) "
                        f"{sorted(state.losers)} over {state.attempts} "
                        f"attempt(s); last: {run.last_loss}"
                    )
                    self.quarantined_inputs.append(
                        f"{state.kind} task {task_id}: "
                        f"{state.label or 'unlabelled input'}"
                    )
                else:
                    run.queue.appendleft(task_id)
            if run.error is None and not self.alive_workers():
                run.error = ClusterUnavailableError(
                    f"all cluster workers died during the {run.phase} phase "
                    f"({run.completed()}/{len(run.tasks)} tasks finished; "
                    f"last loss: {run.last_loss})"
                )
            if run.error is None:
                self._grant_all_locked(run)
            run.cond.notify_all()

    def _requeue_stuck_locked(self, run: _RunState) -> None:
        """Enforce the per-task deadline (``run.cond`` held, re-entrant).

        A worker whose oldest unanswered grant is older than the deadline
        is declared lost exactly like a silent socket: connection closed,
        tasks requeued, attempts/quarantine accounting identical.  Called
        from the scheduling loop's wait tick.
        """
        if run.deadline is None:
            return
        now = time.monotonic()
        stuck = [
            handle
            for handle in self.alive_workers()
            if handle.outstanding and now - handle.last_progress > run.deadline
        ]
        for handle in stuck:
            logger.warning(
                "worker %r exceeded the %.1fs task deadline with %d task(s) "
                "outstanding (heartbeating but not reporting); requeueing",
                handle.worker_id,
                run.deadline,
                len(handle.outstanding),
            )
            self._on_worker_lost(
                handle,
                MapReduceError(
                    f"exceeded the {run.deadline:.1f}s task execution "
                    "deadline (worker heartbeating but not reporting "
                    "results)"
                ),
            )

    # -- run scheduling ------------------------------------------------------

    def run_job(
        self,
        job: MapReduceJob,
        inputs: list[tuple[Any, Any]],
        plane: ArtifactPlane,
        run_id: str,
        granularity: int | str = "auto",
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        streaming_reduce: bool = True,
        task_deadline: float | None = DEFAULT_TASK_DEADLINE,
    ) -> tuple[list[tuple[Any, Any]], JobStats, int]:
        """Schedule one job end to end; returns (outputs, stats, retries).

        Outputs are flattened in the deterministic reduce order (shuffle
        key order), never in completion order — scheduling never leaks
        into results.

        ``task_deadline`` bounds how long any worker may hold granted
        tasks without reporting a result; a worker past it is treated as
        lost (its connection is closed and its tasks requeued) even while
        its heartbeats keep arriving — heartbeats prove the process lives,
        the deadline proves the work does.
        """
        stats = JobStats()
        if not inputs:
            return [], stats, 0
        wall_start = time.perf_counter()
        with self._run_lock, obs.span(
            "cluster.run_job", run_id=run_id, job=type(job).__name__
        ) as run_span:
            run = self._start_run(
                job, inputs, plane, run_id, granularity, streaming_reduce,
                max(1, prefetch_depth), task_deadline,
            )
            run.span_id = run_span.span_id
            workers = self.alive_workers()
            join = JoinRun(
                run_id=run_id,
                phase="map",
                prefetch_depth=run.prefetch_depth,
                trace=run.trace_enabled,
                profile=run.profile_enabled,
            )
            for handle in workers:
                try:
                    handle.send(join)
                except (WireError, OSError):
                    self._mark_dead(handle)
            try:
                with run.cond:
                    while not run.finished and run.error is None:
                        if not self.alive_workers():
                            run.error = ClusterUnavailableError(
                                "all cluster workers died or disconnected "
                                f"during the {run.phase} phase "
                                f"({run.completed()}/{len(run.tasks)} tasks "
                                "finished)"
                            )
                            break
                        self._requeue_stuck_locked(run)
                        run.cond.wait(0.25)
            finally:
                with self._cond:
                    self._run = None
                self._planes.pop(run_id, None)
                # Reset per-run scheduler state between runs (credit left
                # over from an empty queue, outstanding grants whose late
                # results the run_id check will discard).
                with run.cond:
                    for handle in self.alive_workers():
                        handle.credit = 0
                        handle.outstanding = set()
                self._retries_counter.inc(run.retries)
                for worker, count in run.worker_tasks.items():
                    obs.counter(
                        "repro.cluster.worker_tasks", worker=worker
                    ).inc(count)
                for worker, count in run.worker_steals.items():
                    obs.counter(
                        "repro.cluster.steal_grants", worker=worker
                    ).inc(count)
                self.last_run_worker_tasks = dict(run.worker_tasks)
                self.last_run_worker_steals = dict(run.worker_steals)
            if run.error is not None:
                raise run.error
            self._record_throughput(run)
            stats.n_map_chunks = run.n_map_tasks
            stats.map_task_seconds.extend(
                run.tasks[task_id].seconds for task_id in range(run.n_map_tasks)
            )
            stats.reduce_task_seconds.extend(
                run.tasks[task_id].seconds for task_id in run.reduce_order
            )
            stats.shuffle_seconds = run.fold_seconds
            outputs = [
                pair
                for task_id in run.reduce_order
                for pair in run.reduce_emitted[task_id]
            ]
            stats.n_outputs = len(outputs)
            stats.wall_seconds = time.perf_counter() - wall_start
            run_span.set(n_tasks=len(run.tasks), retries=run.retries)
            return outputs, stats, run.retries

    def _start_run(
        self,
        job: MapReduceJob,
        inputs: list[tuple[Any, Any]],
        plane: ArtifactPlane,
        run_id: str,
        granularity: int | str,
        streaming_reduce: bool,
        prefetch_depth: int,
        task_deadline: float | None = DEFAULT_TASK_DEADLINE,
    ) -> _RunState:
        size = self._resolve_granularity(job, len(inputs), granularity)
        indexed = list(enumerate(inputs))
        chunks = [indexed[lo : lo + size] for lo in range(0, len(indexed), size)]
        run = _RunState(
            run_id, job, plane, streaming_reduce, prefetch_depth, task_deadline
        )
        for task_id, chunk in enumerate(chunks):
            payload = dumps(("map", job, chunk), plane)
            run.tasks[task_id] = _TaskState(
                "map", payload, len(chunk), label=_chunk_label(chunk)
            )
            run.queue.append(task_id)
        run.n_map_tasks = len(chunks)
        run.map_remaining = len(chunks)
        self._planes[run_id] = plane
        with self._cond:
            if self.closed:
                raise MapReduceError("coordinator is closed")
            self._run = run
        return run

    def _resolve_granularity(
        self, job: MapReduceJob, n_inputs: int, spec: int | str
    ) -> int:
        """Inputs per map task: fixed when ``spec`` is an int, else sized
        from measured throughput toward :data:`TARGET_TASK_SECONDS`."""
        if isinstance(spec, int):
            return max(1, spec)
        n_hosts = max(1, len(self.alive_workers()))
        per_input = self._throughput.get(type(job).__name__)
        if per_input and per_input > 0:
            size = max(1, int(TARGET_TASK_SECONDS / per_input))
        else:
            size = math.ceil(n_inputs / (n_hosts * AUTO_TASKS_PER_WORKER))
        # Never coarser than two tasks per host: stealing needs slack.
        cap = max(1, math.ceil(n_inputs / (n_hosts * 2)))
        return max(1, min(size, cap))

    def _record_throughput(self, run: _RunState) -> None:
        if not run.map_inputs_done or run.map_seconds_done <= 0:
            return
        sample = run.map_seconds_done / run.map_inputs_done
        key = type(run.job).__name__
        prior = self._throughput.get(key)
        self._throughput[key] = sample if prior is None else 0.5 * prior + 0.5 * sample

    def _mark_dead(self, handle: WorkerHandle) -> None:
        handle.close()
        with self._cond:
            self._cond.notify_all()

    @staticmethod
    def _job_error(
        result: TaskResult, handle: WorkerHandle, phase: str
    ) -> BaseException:
        """Build the caller-facing exception for a failed (not lost) task.

        Same contract as the process executor: :class:`ReproError`
        subclasses re-raise as themselves with the worker traceback as the
        cause; everything else becomes a :class:`MapReduceError` carrying
        the original traceback.
        """
        context = MapReduceError(
            f"{phase} task failed on cluster worker "
            f"{handle.worker_id!r} (host {handle.host}); original "
            f"traceback:\n{result.traceback}"
        )
        if isinstance(result.original, ReproError):
            result.original.__cause__ = context
            return result.original
        return context

    # -- live observability --------------------------------------------------

    def health_snapshot(self) -> dict[str, Any]:
        """The coordinator's ``/healthz`` payload (JSON-able, advisory).

        Worker liveness is judged by heartbeat age against the heartbeat
        timeout — the same signal the reader timeout enforces, read
        instead of awaited.  Lock order: worker/run refs are grabbed under
        ``_cond`` (a leaf lock) and released before ``run.cond`` is taken.
        """
        now = time.monotonic()
        with self._cond:
            workers = list(self._workers)
            run = self._run
        worker_info: dict[str, Any] = {}
        live = 0
        stale = 0
        for handle in workers:
            age = now - handle.last_heartbeat
            is_live = handle.alive and age < self.heartbeat_timeout
            live += is_live
            stale += handle.alive and not is_live
            worker_info[handle.worker_id] = {
                "live": is_live,
                "connected": handle.alive,
                "heartbeat_age_seconds": round(age, 3),
                "outstanding_tasks": len(handle.outstanding),
                "host": handle.host,
                "pid": handle.pid,
            }
        payload: dict[str, Any] = {
            "status": "degraded" if stale or (workers and not live) else "ok",
            "address": f"{self.address[0]}:{self.address[1]}",
            "live_workers": live,
            "workers": worker_info,
            "quarantined_inputs": list(self.quarantined_inputs),
        }
        if run is not None:
            with run.cond:
                payload["run"] = {
                    "run_id": run.run_id,
                    "phase": run.phase,
                    "completed_tasks": run.completed(),
                    "total_tasks": len(run.tasks),
                    "queued_tasks": len(run.queue),
                    "retries": run.retries,
                }
        return payload

    # -- lifecycle -----------------------------------------------------------

    def end_run(self, run_id: str) -> None:
        """Tell every live worker to drop the run's queue and artifacts."""
        self._planes.pop(run_id, None)
        for handle in self.alive_workers():
            try:
                handle.send(protocol.EndRun(run_id=run_id))
            except (WireError, OSError):
                self._mark_dead(handle)

    def close(self, shutdown_workers: bool = False) -> None:
        """Stop listening; optionally tell workers to exit for good.

        Without ``shutdown_workers`` the daemons merely lose this
        coordinator and keep redialing the address for their retry window —
        that is what lets `repro index` and a later `repro query` share one
        set of workers.
        """
        with self._cond:
            if self.closed:
                return
            self.closed = True
            workers = list(self._workers)
            self._workers.clear()
        exporter = obs.active_exporter()
        if exporter is not None:
            exporter.remove_source(self.fleet.snapshot)
            exporter.remove_health(f"coordinator:{self.name}")
        # shutdown() before close(): a blocked accept() keeps the listening
        # socket's file description alive past close() on Linux, leaving the
        # port accepting ghost connections; shutdown unblocks it (EINVAL)
        # so the join below guarantees the port is actually released.
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        self._accept_thread.join(timeout=5.0)
        for handle in workers:
            if shutdown_workers and handle.alive:
                with contextlib.suppress(WireError, OSError):
                    handle.send(Shutdown(reason="coordinator closing"))
            handle.close()
        if self._owns_spool:
            shutil.rmtree(self.spool_dir, ignore_errors=True)


# -- shared coordinators (env-steered engines) -------------------------------

_SHARED: dict[tuple[str, int], Coordinator] = {}
_SHARED_LOCK = threading.Lock()


def _close_shared() -> None:  # pragma: no cover - interpreter exit
    with _SHARED_LOCK:
        coordinators = list(_SHARED.values())
        _SHARED.clear()
    for coordinator in coordinators:
        coordinator.close(shutdown_workers=False)


atexit.register(_close_shared)


def shared_coordinator(host: str, port: int) -> Coordinator:
    """The process-wide coordinator for one bind address.

    Environment-steered engines (``REPRO_EXECUTOR=cluster``) are created
    per call site; sharing the coordinator keeps one listener (and one pool
    of connected workers) per address per process, exactly like the shm
    plane keeps one segment per array.  Closed coordinators are replaced.
    """
    key = (host, port)
    with _SHARED_LOCK:
        coordinator = _SHARED.get(key)
        if coordinator is None or coordinator.closed:
            coordinator = Coordinator(host=host, port=port)
            _SHARED[key] = coordinator
        return coordinator


# -- the engine --------------------------------------------------------------


class ClusterEngine:
    """Runs map-reduce jobs on a coordinator/worker cluster over TCP.

    Implements the same ``run(job, inputs) -> (outputs, stats)`` contract as
    :class:`~repro.mapreduce.engine.LocalEngine`, so ``Corpus.build_index``,
    ``CorpusIndex.query`` and the persist jobs work unchanged — outputs are
    bit-identical to serial execution under a fixed seed, including under
    work stealing, worker loss, and elastic join (the shuffle's tag order,
    not scheduling order, decides every grouping and every output position).

    Parameters
    ----------
    bind:
        ``HOST:PORT`` the coordinator listens on.  Port ``0`` binds an
        ephemeral port (read it back from :attr:`address`).
    n_workers:
        Minimum number of registered workers to wait for before the first
        dispatch.  All connected workers are used, including ones that
        join mid-run.
    map_chunk_size:
        Back-compat alias for ``steal_granularity`` (used only when the
        latter is left at ``"auto"``): ``None`` → granularity 1, an int →
        that fixed granularity, ``"auto"`` → adaptive.
    steal_granularity:
        Inputs per stealable map task.  ``"auto"`` (default) sizes tasks
        from measured per-input seconds of previous runs of the same job
        class, targeting ~0.2 s per task; an int pins it.
    prefetch_depth:
        Tasks a worker keeps in flight: one computing, the rest
        prefetching their payload artifacts (data plane overlaps compute).
    streaming_reduce:
        ``True`` (default) folds map outputs into the shuffle as they land
        and dispatches reduce tasks the moment the last map result arrives;
        ``False`` keeps the conservative full map barrier.  Both are
        bit-identical to serial.
    min_artifact_bytes:
        Arrays at least this large ship through the artifact data plane
        instead of the per-task pickle.
    shared:
        Reuse the process-wide coordinator for ``bind`` (how env-steered
        engines share one listener); ``False`` gives this engine a private
        coordinator that :meth:`close` fully owns.
    task_deadline:
        Seconds a worker may hold granted tasks without reporting a
        result before it is declared stuck and loses them to the requeue
        (heartbeats alone do not count as progress).  ``None`` disables
        the deadline.
    fallback:
        ``"serial"``/``"thread"``/``"process"`` reruns the job on that
        local executor when the cluster is *unavailable* (no workers
        registered in time, or every worker lost mid-run), logging the
        downgrade; ``None`` (default) propagates
        :class:`~repro.utils.errors.ClusterUnavailableError`.  Job bugs
        and poison tasks never fall back — they would fail anywhere.
    heartbeat_interval:
        Seconds between worker heartbeats, announced to every worker in
        the registration ``Welcome``.  Metrics deltas ship on heartbeats
        (v2.3), so this is also the fleet-telemetry refresh cadence.
        Must be > 0 and below ``heartbeat_timeout``.
    heartbeat_timeout / registration_timeout:
        Connection liveness knobs.  Like ``heartbeat_interval``, applied
        to this engine's *private* coordinator (a ``shared=True`` engine
        reuses the process-wide coordinator and its existing cadence and
        timeouts).
    """

    executor = "cluster"

    def __init__(
        self,
        bind: str = DEFAULT_BIND,
        n_workers: int = 1,
        map_chunk_size: int | str | None = "auto",
        min_artifact_bytes: int = DEFAULT_MIN_BYTES,
        connect_timeout: float = CONNECT_TIMEOUT,
        shared: bool = False,
        steal_granularity: int | str = "auto",
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        streaming_reduce: bool = True,
        task_deadline: float | None = DEFAULT_TASK_DEADLINE,
        fallback: str | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
        registration_timeout: float = REGISTRATION_TIMEOUT,
    ) -> None:
        self._bind_host, self._bind_port = protocol.parse_address(bind, variable="bind")
        if not isinstance(n_workers, int) or n_workers < 1:
            raise MapReduceError(
                f"n_workers must be an integer >= 1, got {n_workers!r}"
            )
        if map_chunk_size is not None and map_chunk_size != "auto":
            if not isinstance(map_chunk_size, int) or map_chunk_size < 1:
                raise MapReduceError(
                    "map_chunk_size must be a positive int, 'auto' or None"
                )
        if steal_granularity != "auto":
            if not isinstance(steal_granularity, int) or steal_granularity < 1:
                raise MapReduceError(
                    "steal_granularity must be a positive int or 'auto'"
                )
        if not isinstance(prefetch_depth, int) or prefetch_depth < 1:
            raise MapReduceError("prefetch_depth must be an integer >= 1")
        if min_artifact_bytes < 1:
            raise MapReduceError("min_artifact_bytes must be >= 1")
        if task_deadline is not None and not task_deadline > 0:
            raise MapReduceError(
                f"task_deadline must be > 0 seconds or None, got {task_deadline!r}"
            )
        if fallback is not None and fallback not in FALLBACK_EXECUTORS:
            raise MapReduceError(
                f"fallback must be one of {', '.join(FALLBACK_EXECUTORS)} "
                f"or None, got {fallback!r}"
            )
        if not heartbeat_interval > 0:
            raise MapReduceError(
                f"heartbeat_interval must be > 0 seconds, "
                f"got {heartbeat_interval!r}"
            )
        if heartbeat_interval >= heartbeat_timeout:
            raise MapReduceError(
                f"heartbeat_interval ({heartbeat_interval}s) must be below "
                f"heartbeat_timeout ({heartbeat_timeout}s), or every worker "
                "is declared lost between beats"
            )
        self.n_workers = n_workers
        self.map_chunk_size = map_chunk_size
        self.steal_granularity = steal_granularity
        self.prefetch_depth = prefetch_depth
        self.streaming_reduce = streaming_reduce
        self.min_artifact_bytes = min_artifact_bytes
        self.connect_timeout = connect_timeout
        self.shared = shared
        self.task_deadline = task_deadline
        self.fallback = fallback
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.registration_timeout = registration_timeout
        self._coordinator: Coordinator | None = None
        self._assembled = False
        # Numeric run accounting lives in the metrics registry; the old
        # ``last_run_retries`` attribute survives as a thin view.  The dict
        # and string fields below stay plain attributes (consumers check
        # ``is None`` and match substrings) but are mirrored into counters.
        self.name = f"e{next(_INSTANCE_SEQ)}"
        self._retries_gauge = obs.gauge(
            "repro.cluster.last_run_retries", engine=self.name
        )
        self.last_run_worker_tasks: dict[str, int] = {}
        self.last_run_worker_steals: dict[str, int] = {}
        #: Why the last run downgraded to the fallback executor, or ``None``
        #: when it ran on the cluster.
        self.last_run_fallback: str | None = None
        #: :class:`repro.obs.RunReport` of the most recent ``run`` call.
        self.last_run_report: obs.RunReport | None = None
        self._last_n_artifacts = 0

    @property
    def last_run_retries(self) -> int:
        """Worker-loss retries of the most recent cluster run (gauge view)."""
        return int(self._retries_gauge.value)

    @last_run_retries.setter
    def last_run_retries(self, value: int) -> None:
        self._retries_gauge.set(value)

    @property
    def is_parallel(self) -> bool:
        """True when more than one host executes tasks."""
        return self.n_workers > 1

    @property
    def coordinator(self) -> Coordinator:
        """The live coordinator, binding the listener on first use."""
        if self._coordinator is None or self._coordinator.closed:
            if self.shared:
                self._coordinator = shared_coordinator(self._bind_host, self._bind_port)
            else:
                self._coordinator = Coordinator(
                    host=self._bind_host,
                    port=self._bind_port,
                    heartbeat_interval=self.heartbeat_interval,
                    heartbeat_timeout=self.heartbeat_timeout,
                    registration_timeout=self.registration_timeout,
                )
            # Engine-level health (fallback state) rides on the exporter
            # the coordinator may have just started from the environment.
            exporter = obs.active_exporter()
            if exporter is not None:
                exporter.add_health(f"engine:{self.name}", self._health_snapshot)
        return self._coordinator

    def _health_snapshot(self) -> dict[str, Any]:
        return {
            "status": "ok" if self.last_run_fallback is None else "degraded",
            "executor": self.executor,
            "fallback": self.last_run_fallback,
            "last_run_retries": self.last_run_retries,
        }

    @property
    def address(self) -> tuple[str, int]:
        """The coordinator's actual (host, port) — resolves port 0."""
        return self.coordinator.address

    def start(self) -> "ClusterEngine":
        """Bind the listener now (otherwise it happens on first run)."""
        _ = self.coordinator
        return self

    def wait_for_workers(
        self, n: int | None = None, timeout: float | None = None
    ) -> None:
        self.coordinator.wait_for_workers(
            n if n is not None else self.n_workers,
            timeout if timeout is not None else self.connect_timeout,
        )

    def _granularity_spec(self) -> int | str:
        """Translate the engine's knobs into the coordinator's granularity."""
        if self.steal_granularity != "auto":
            return self.steal_granularity
        if self.map_chunk_size is None:
            return 1
        if isinstance(self.map_chunk_size, int):
            return self.map_chunk_size
        return "auto"

    def run(
        self, job: MapReduceJob, inputs: Iterable[tuple[Any, Any]]
    ) -> tuple[list[tuple[Any, Any]], JobStats]:
        """Execute ``job`` over ``inputs`` on the cluster.

        With ``fallback`` declared, a cluster that is *unavailable* —
        workers never assembled, or every worker lost mid-run — downgrades
        to the named local executor instead of raising: the job reruns
        from scratch there (outputs stay bit-identical; every executor
        is), the downgrade is logged, and :attr:`last_run_fallback` records
        the reason.  Job bugs and poison-task quarantines propagate
        unchanged — they would fail on any executor.
        """
        input_list = list(inputs)
        if not input_list:
            return [], JobStats()
        self.last_run_fallback = None
        wall_start = time.perf_counter()
        served_before = obs.counter("repro.dataplane.served_bytes").value
        try:
            outputs, stats = self._run_on_cluster(job, input_list)
        except ClusterUnavailableError as exc:
            if self.fallback is None:
                raise
            logger.warning(
                "cluster unavailable (%s); falling back to the %r executor",
                exc,
                self.fallback,
            )
            self.last_run_fallback = str(exc)
            obs.counter("repro.cluster.fallbacks", executor=self.fallback).inc()
            local = LocalEngine(
                n_workers=self.n_workers,
                executor=self.fallback,
                map_chunk_size="auto",
            )
            outputs, stats = local.run(job, input_list)
        stats.wall_seconds = time.perf_counter() - wall_start
        on_cluster = self.last_run_fallback is None
        report = obs.RunReport.from_stats(
            stats,
            job=type(job).__name__,
            executor="cluster",
            n_workers=self.n_workers,
            shuffle_overlapped=self.streaming_reduce and on_cluster,
            worker_tasks=dict(self.last_run_worker_tasks) if on_cluster else {},
            worker_steals=dict(self.last_run_worker_steals) if on_cluster else {},
            retries=self.last_run_retries if on_cluster else 0,
            fallback=self.last_run_fallback,
            bytes_served=(
                obs.counter("repro.dataplane.served_bytes").value - served_before
            ),
            n_artifacts=self._last_n_artifacts if on_cluster else 0,
        )
        self.last_run_report = report
        trace = obs.current_trace()
        if trace is not None:
            trace.add_report(report.to_json())
        return outputs, stats

    def _run_on_cluster(
        self, job: MapReduceJob, input_list: list[tuple[Any, Any]]
    ) -> tuple[list[tuple[Any, Any]], JobStats]:
        coordinator = self.coordinator
        # Full-strength barrier on first assembly only: a worker lost
        # mid-session (killed, host down) must not stall every later
        # run for the whole connect timeout — the cluster keeps going
        # on the survivors, exactly as it finishes the run the worker
        # died in.
        needed = self.n_workers if not self._assembled else 1
        coordinator.wait_for_workers(needed, self.connect_timeout)
        self._assembled = True
        run_id = coordinator.next_run_id()
        plane = ArtifactPlane(
            coordinator.spool_dir, run_id, min_bytes=self.min_artifact_bytes
        )
        try:
            outputs, stats, retries = coordinator.run_job(
                job,
                input_list,
                plane,
                run_id,
                granularity=self._granularity_spec(),
                prefetch_depth=self.prefetch_depth,
                streaming_reduce=self.streaming_reduce,
                task_deadline=self.task_deadline,
            )
        finally:
            self._last_n_artifacts = plane.n_artifacts
            plane.close()
            coordinator.end_run(run_id)
        self.last_run_retries = retries
        self.last_run_worker_tasks = dict(coordinator.last_run_worker_tasks)
        self.last_run_worker_steals = dict(coordinator.last_run_worker_steals)
        return outputs, stats

    def close(self, shutdown_workers: bool = False) -> None:
        """Release the coordinator (private ones only, unless shared=False).

        Shared coordinators belong to the process (closed at interpreter
        exit) so that sequential env-steered engines keep reusing the same
        listener and workers.
        """
        coordinator = self._coordinator
        self._coordinator = None
        exporter = obs.active_exporter()
        if exporter is not None:
            exporter.remove_health(f"engine:{self.name}")
        if coordinator is not None and not self.shared:
            coordinator.close(shutdown_workers=shutdown_workers)

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- localhost harness -------------------------------------------------------


def _worker_environment(overrides: dict[str, str] | None = None) -> dict[str, str]:
    """Environment for spawned localhost workers.

    The current ``sys.path`` is propagated through ``PYTHONPATH`` so the
    worker can unpickle jobs by reference no matter where they were defined
    — the installed ``repro`` package, a source checkout, or a test module
    pytest imported from a bare directory.
    """
    env = dict(os.environ)
    paths = [p for p in sys.path if p]
    env["PYTHONPATH"] = os.pathsep.join(paths)
    # A localhost cluster is a determinism harness, not a parallelism
    # benchmark by default; keep each worker's BLAS single-threaded so
    # n_hosts workers do not oversubscribe the machine.
    env.setdefault("OMP_NUM_THREADS", "1")
    if overrides:
        env.update(overrides)
    return env


def spawn_local_worker(
    address: tuple[str, int],
    worker_id: str,
    retry_seconds: float = 30.0,
    env_overrides: dict[str, str] | None = None,
) -> subprocess.Popen:
    """Spawn one localhost worker daemon dialing ``address``.

    The building block of :func:`local_cluster`, also used directly by the
    scheduler tests to add a straggler (via ``env_overrides``) or an
    elastic late joiner mid-run.  The caller owns the process.
    """
    host, port = address
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"{host}:{port}",
            "--id",
            worker_id,
            "--retry",
            str(retry_seconds),
            "--quiet",
        ],
        env=_worker_environment(env_overrides),
    )


@contextlib.contextmanager
def local_cluster(
    n_hosts: int,
    map_chunk_size: int | str | None = "auto",
    min_artifact_bytes: int = DEFAULT_MIN_BYTES,
    retry_seconds: float = 30.0,
    startup_timeout: float = 60.0,
    worker_env: list[dict[str, str] | None] | None = None,
    fault_plan: FaultPlan | str | None = None,
    **engine_kwargs: Any,
):
    """Spawn ``n_hosts`` localhost workers around a private coordinator.

    Yields a ready :class:`ClusterEngine` (workers registered).  On exit the
    workers are shut down (escalating to kill if they ignore it), the
    listener is closed, and the spool directory is removed — tests assert
    this teardown is leak-free.

    ``worker_env`` optionally gives per-host environment overrides (index-
    aligned with host numbering), which the straggler tests use to slow
    one worker down.  Extra keyword arguments reach the engine (e.g.
    ``steal_granularity=1`` or ``streaming_reduce=False``).

    ``fault_plan`` (a :class:`~repro.distributed.faults.FaultPlan` or its
    string encoding) arms the fault-injection harness *everywhere*: in this
    process (role ``coordinator``) and, via ``REPRO_FAULT_PLAN``, in every
    spawned worker.  Per-index ``worker_env`` overrides win, so a chaos
    test can aim a crash at exactly one host by giving the others
    ``{"REPRO_FAULT_PLAN": ""}`` or a different plan.  The harness is
    uninstalled on exit.
    """
    if n_hosts < 1:
        raise MapReduceError("local_cluster needs at least one host")
    plan = (
        faults.FaultPlan.parse(fault_plan)
        if isinstance(fault_plan, str)
        else fault_plan
    )
    if plan is not None:
        faults.install(plan, role="coordinator")
    engine = ClusterEngine(
        bind="127.0.0.1:0",
        n_workers=n_hosts,
        map_chunk_size=map_chunk_size,
        min_artifact_bytes=min_artifact_bytes,
        shared=False,
        **engine_kwargs,
    ).start()
    processes: list[subprocess.Popen] = []
    try:
        for index in range(n_hosts):
            overrides = None
            if worker_env is not None and index < len(worker_env):
                overrides = worker_env[index]
            if plan is not None:
                merged = {faults.ENV_VAR: plan.encode()}
                merged.update(overrides or {})
                overrides = merged
            processes.append(
                spawn_local_worker(
                    engine.address,
                    f"host{index}",
                    retry_seconds=retry_seconds,
                    env_overrides=overrides,
                )
            )
        engine.wait_for_workers(n_hosts, timeout=startup_timeout)
        yield engine
    finally:
        if plan is not None:
            faults.uninstall()
        engine.close(shutdown_workers=True)
        deadline = time.monotonic() + 10.0
        for process in processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                process.kill()
                process.wait(timeout=10.0)
