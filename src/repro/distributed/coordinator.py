"""Coordinator and :class:`ClusterEngine`: real multi-host map-reduce.

The coordinator is the cluster's driver side.  It listens on a TCP port;
worker daemons (``repro worker --connect HOST:PORT``) dial in and register.
:class:`ClusterEngine` implements the same ``run(job, inputs)`` contract as
:class:`repro.mapreduce.engine.LocalEngine` on top of it:

* map inputs are chunked exactly like the local engine's (``"auto"`` sizes
  chunks for the cluster's per-task dispatch cost),
* each phase's tasks are dispatched to idle workers, one task per worker at
  a time (the paper's one-slot-per-node Hadoop deployment); large arrays in
  a payload travel through the artifact data plane instead of the task
  pickle (:mod:`repro.distributed.dataplane`),
* the shuffle is the local engine's deterministic tag-sorted shuffle,
  executed coordinator-side between the two waves, so grouped values — and
  therefore reduce outputs — are bit-identical to serial no matter which
  host ran which task or in which order results arrived,
* a worker that dies mid-task (socket loss or heartbeat silence) has its
  task retried on another worker, up to :data:`MAX_TASK_ATTEMPTS` hosts;
  a task that *fails* (raises) is a deterministic job bug and fails the run
  with the original traceback, library errors keeping their type — the
  exact error contract of the process executor.

``local_cluster(n_hosts)`` is the test/CI harness: it binds an ephemeral
port, spawns ``n_hosts`` localhost worker daemons, waits for registration,
and tears everything down leak-free (workers shut down, listener closed,
spool directory removed).
"""

from __future__ import annotations

import atexit
import contextlib
import os
import secrets
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from ..mapreduce.engine import LocalEngine, auto_chunk_size
from ..mapreduce.job import JobStats, MapReduceJob
from ..utils.errors import MapReduceError, ReproError
from . import protocol
from .dataplane import DEFAULT_MIN_BYTES, ArtifactPlane, dumps
from .protocol import (
    Artifact,
    ArtifactRequest,
    Heartbeat,
    Hello,
    Shutdown,
    Task,
    TaskResult,
    Welcome,
    WireError,
)

#: A task is retried on this many distinct workers before the run fails
#: (a task whose *input* reliably kills its host must not take the whole
#: cluster down one worker at a time).
MAX_TASK_ATTEMPTS = 3

#: Seconds between worker heartbeats (announced in the Welcome message).
HEARTBEAT_INTERVAL = 1.0

#: Receive timeout while a dispatched task is outstanding: if the worker's
#: socket stays completely silent (no heartbeat, no artifact request, no
#: result) this long, the worker is declared dead and its task is retried
#: elsewhere.  Heartbeats keep flowing *during* task execution, so long
#: tasks do not trip this — only a hung or vanished worker does.
HEARTBEAT_TIMEOUT = 30.0

#: Default wait for the requested number of workers to register.
CONNECT_TIMEOUT = 60.0

#: Default coordinator address when ``REPRO_CLUSTER`` is unset.
DEFAULT_BIND = "127.0.0.1:7077"


class WorkerHandle:
    """Coordinator-side state of one registered worker connection."""

    def __init__(
        self, sock: socket.socket, worker_id: str, pid: int, host: str
    ) -> None:
        self.sock = sock
        self.worker_id = worker_id
        self.pid = pid
        self.host = host
        self.alive = True
        self._send_lock = threading.Lock()

    def send(self, message: Any) -> None:
        with self._send_lock:
            protocol.send_msg(self.sock, message)

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass


class _PhaseState:
    """Shared bookkeeping of one phase's dispatch (guarded by ``cond``)."""

    def __init__(self, payloads: list[bytes]) -> None:
        self.payloads = payloads
        self.n = len(payloads)
        self.results: list[Any] = [None] * self.n
        self.seconds: list[float] = [0.0] * self.n
        self.completed = 0
        self.pending: deque[int] = deque(range(self.n))
        self.attempts = [0] * self.n
        self.retries = 0
        self.error: BaseException | None = None
        self.runners = 0
        self.last_loss = ""
        self.cond = threading.Condition()


class Coordinator:
    """Listens for workers and dispatches task phases to them."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spool_dir: str | Path | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
    ) -> None:
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._owns_spool = spool_dir is None
        if spool_dir is None:
            self.spool_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-spool-"))
        else:
            self.spool_dir = Path(spool_dir)
            self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._workers: list[WorkerHandle] = []
        self._cond = threading.Condition()
        # One phase at a time: each phase's dispatch threads own their
        # worker sockets exclusively; concurrent runs on one coordinator
        # (two application threads querying through the same shared engine)
        # take turns per phase instead of interleaving frames on a socket.
        self._phase_lock = threading.Lock()
        self.closed = False
        self.total_retries = 0
        self._run_seq = 0
        try:
            self._listener = socket.create_server((host, port), reuse_port=False)
        except OSError as exc:
            raise MapReduceError(
                f"cannot bind cluster coordinator to {host}:{port}: {exc} "
                "(is another coordinator already running there?)"
            ) from exc
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-coordinator"
        )
        self._accept_thread.start()

    # -- registration --------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            threading.Thread(target=self._register, args=(conn,), daemon=True).start()

    def _register(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10.0)
            protocol.recv_preamble(conn)
            protocol.send_preamble(conn)
            hello = protocol.recv_msg(conn)
            if not isinstance(hello, Hello):
                raise WireError(f"expected Hello, got {type(hello).__name__}")
            protocol.send_msg(
                conn,
                Welcome(
                    heartbeat_interval=self.heartbeat_interval,
                    spool_dir=str(self.spool_dir),
                ),
            )
            conn.settimeout(None)
        except (WireError, OSError):
            with contextlib.suppress(OSError):
                conn.close()
            return
        handle = WorkerHandle(conn, hello.worker_id, hello.pid, hello.host)
        with self._cond:
            if self.closed:
                handle.close()
                return
            self._workers.append(handle)
            self._cond.notify_all()

    def alive_workers(self) -> list[WorkerHandle]:
        with self._cond:
            return [w for w in self._workers if w.alive]

    def worker_pids(self) -> list[int]:
        """PIDs of the currently registered, alive workers."""
        return [w.pid for w in self.alive_workers()]

    def wait_for_workers(self, n: int, timeout: float) -> None:
        """Block until ``n`` workers are registered and alive."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len([w for w in self._workers if w.alive]) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    alive = len([w for w in self._workers if w.alive])
                    raise MapReduceError(
                        f"cluster coordinator at {self.address[0]}:"
                        f"{self.address[1]} has {alive} worker(s) after "
                        f"{timeout:.0f}s, needs {n} — start workers with "
                        f"`repro worker --connect "
                        f"{self.address[0]}:{self.address[1]}`"
                    )
                self._cond.wait(min(remaining, 0.25))

    def next_run_id(self) -> str:
        with self._cond:
            self._run_seq += 1
            return f"run{self._run_seq:04d}-{secrets.token_hex(4)}"

    # -- phase dispatch ------------------------------------------------------

    def run_phase(
        self, phase: str, payloads: list[bytes], plane: ArtifactPlane
    ) -> tuple[list[Any], list[float], int]:
        """Dispatch one wave of tasks; returns (results, seconds, retries).

        Results come back indexed by task id, i.e. in submission order —
        scheduling order never leaks into the output (the same discipline as
        the local engine's pools).
        """
        if not payloads:
            return [], [], 0
        with self._phase_lock:
            return self._run_phase_locked(phase, payloads, plane)

    def _run_phase_locked(
        self, phase: str, payloads: list[bytes], plane: ArtifactPlane
    ) -> tuple[list[Any], list[float], int]:
        state = _PhaseState(payloads)
        workers = self.alive_workers()
        if not workers:
            raise MapReduceError(f"no cluster workers connected for the {phase} phase")
        threads = []
        with state.cond:
            state.runners = len(workers)
        for handle in workers:
            thread = threading.Thread(
                target=self._worker_loop,
                args=(handle, state, plane, phase),
                daemon=True,
                name=f"repro-dispatch-{handle.worker_id}",
            )
            threads.append(thread)
            thread.start()
        with state.cond:
            state.cond.wait_for(lambda: state.runners == 0)
        for thread in threads:
            thread.join(timeout=self.heartbeat_timeout)
        with self._cond:
            self.total_retries += state.retries
        if state.error is not None:
            raise state.error
        if state.completed < state.n:
            raise MapReduceError(
                f"all cluster workers died during the {phase} phase "
                f"({state.completed}/{state.n} tasks finished"
                + (f"; last loss: {state.last_loss}" if state.last_loss else "")
                + ")"
            )
        return state.results, state.seconds, state.retries

    def _worker_loop(
        self,
        handle: WorkerHandle,
        state: _PhaseState,
        plane: ArtifactPlane,
        phase: str,
    ) -> None:
        try:
            while True:
                with state.cond:
                    while (
                        not state.pending
                        and state.completed < state.n
                        and state.error is None
                    ):
                        state.cond.wait()
                    if state.error is not None or state.completed >= state.n:
                        return
                    task_id = state.pending.popleft()
                try:
                    result = self._dispatch(handle, task_id, state, plane)
                except (WireError, OSError, TimeoutError) as exc:
                    self._mark_dead(handle)
                    with state.cond:
                        state.last_loss = (
                            f"worker {handle.worker_id!r} (pid {handle.pid}) "
                            f"lost during {phase} task {task_id}: {exc}"
                        )
                        state.attempts[task_id] += 1
                        if state.attempts[task_id] >= MAX_TASK_ATTEMPTS:
                            state.error = MapReduceError(
                                f"{phase} task {task_id} lost "
                                f"{state.attempts[task_id]} workers in a row "
                                f"(killed or crashed before reporting a "
                                f"result); last: {state.last_loss}"
                            )
                        else:
                            state.retries += 1
                            state.pending.appendleft(task_id)
                        state.cond.notify_all()
                    return
                if result.status == "err":
                    error = self._job_error(result, handle, phase)
                    with state.cond:
                        if state.error is None:
                            state.error = error
                        state.cond.notify_all()
                    return
                with state.cond:
                    if state.results[task_id] is None:
                        state.results[task_id] = result.result
                        state.seconds[task_id] = result.seconds
                        state.completed += 1
                    state.cond.notify_all()
        finally:
            with state.cond:
                state.runners -= 1
                state.cond.notify_all()

    def _dispatch(
        self,
        handle: WorkerHandle,
        task_id: int,
        state: _PhaseState,
        plane: ArtifactPlane,
    ) -> TaskResult:
        """Send one task and pump messages until its result arrives."""
        handle.send(Task(task_id=task_id, payload=state.payloads[task_id]))
        handle.sock.settimeout(self.heartbeat_timeout)
        while True:
            message = protocol.recv_msg(handle.sock)
            if message is None:
                raise WireError("worker closed the connection")
            if isinstance(message, Heartbeat):
                continue
            if isinstance(message, ArtifactRequest):
                handle.send(
                    Artifact(name=message.name, data=plane.payload(message.name))
                )
                continue
            if isinstance(message, TaskResult) and message.task_id == task_id:
                return message
            raise WireError(
                f"unexpected {type(message).__name__} while waiting for "
                f"task {task_id}"
            )

    def _mark_dead(self, handle: WorkerHandle) -> None:
        handle.close()
        with self._cond:
            self._cond.notify_all()

    @staticmethod
    def _job_error(
        result: TaskResult, handle: WorkerHandle, phase: str
    ) -> BaseException:
        """Build the caller-facing exception for a failed (not lost) task.

        Same contract as the process executor: :class:`ReproError`
        subclasses re-raise as themselves with the worker traceback as the
        cause; everything else becomes a :class:`MapReduceError` carrying
        the original traceback.
        """
        context = MapReduceError(
            f"{phase} task failed on cluster worker "
            f"{handle.worker_id!r} (host {handle.host}); original "
            f"traceback:\n{result.traceback}"
        )
        if isinstance(result.original, ReproError):
            result.original.__cause__ = context
            return result.original
        return context

    # -- lifecycle -----------------------------------------------------------

    def end_run(self, run_id: str) -> None:
        """Tell every live worker to drop the run's cached artifacts."""
        for handle in self.alive_workers():
            try:
                handle.send(protocol.EndRun(run_id=run_id))
            except (WireError, OSError):
                self._mark_dead(handle)

    def close(self, shutdown_workers: bool = False) -> None:
        """Stop listening; optionally tell workers to exit for good.

        Without ``shutdown_workers`` the daemons merely lose this
        coordinator and keep redialing the address for their retry window —
        that is what lets `repro index` and a later `repro query` share one
        set of workers.
        """
        with self._cond:
            if self.closed:
                return
            self.closed = True
            workers = list(self._workers)
            self._workers.clear()
        # shutdown() before close(): a blocked accept() keeps the listening
        # socket's file description alive past close() on Linux, leaving the
        # port accepting ghost connections; shutdown unblocks it (EINVAL)
        # so the join below guarantees the port is actually released.
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        self._accept_thread.join(timeout=5.0)
        for handle in workers:
            if shutdown_workers and handle.alive:
                with contextlib.suppress(WireError, OSError):
                    handle.send(Shutdown(reason="coordinator closing"))
            handle.close()
        if self._owns_spool:
            shutil.rmtree(self.spool_dir, ignore_errors=True)


# -- shared coordinators (env-steered engines) -------------------------------

_SHARED: dict[tuple[str, int], Coordinator] = {}
_SHARED_LOCK = threading.Lock()


def _close_shared() -> None:  # pragma: no cover - interpreter exit
    with _SHARED_LOCK:
        coordinators = list(_SHARED.values())
        _SHARED.clear()
    for coordinator in coordinators:
        coordinator.close(shutdown_workers=False)


atexit.register(_close_shared)


def shared_coordinator(host: str, port: int) -> Coordinator:
    """The process-wide coordinator for one bind address.

    Environment-steered engines (``REPRO_EXECUTOR=cluster``) are created
    per call site; sharing the coordinator keeps one listener (and one pool
    of connected workers) per address per process, exactly like the shm
    plane keeps one segment per array.  Closed coordinators are replaced.
    """
    key = (host, port)
    with _SHARED_LOCK:
        coordinator = _SHARED.get(key)
        if coordinator is None or coordinator.closed:
            coordinator = Coordinator(host=host, port=port)
            _SHARED[key] = coordinator
        return coordinator


# -- the engine --------------------------------------------------------------


class ClusterEngine:
    """Runs map-reduce jobs on a coordinator/worker cluster over TCP.

    Implements the same ``run(job, inputs) -> (outputs, stats)`` contract as
    :class:`~repro.mapreduce.engine.LocalEngine`, so ``Corpus.build_index``,
    ``CorpusIndex.query`` and the persist jobs work unchanged — outputs are
    bit-identical to serial execution under a fixed seed.

    Parameters
    ----------
    bind:
        ``HOST:PORT`` the coordinator listens on.  Port ``0`` binds an
        ephemeral port (read it back from :attr:`address`).
    n_workers:
        Minimum number of registered workers to wait for before the first
        dispatch.  All connected workers are used.
    map_chunk_size:
        As for :class:`LocalEngine`; ``"auto"`` sizes chunks for the
        cluster's per-task dispatch cost.
    min_artifact_bytes:
        Arrays at least this large ship through the artifact data plane
        instead of the per-task pickle.
    shared:
        Reuse the process-wide coordinator for ``bind`` (how env-steered
        engines share one listener); ``False`` gives this engine a private
        coordinator that :meth:`close` fully owns.
    """

    executor = "cluster"

    def __init__(
        self,
        bind: str = DEFAULT_BIND,
        n_workers: int = 1,
        map_chunk_size: int | str | None = "auto",
        min_artifact_bytes: int = DEFAULT_MIN_BYTES,
        connect_timeout: float = CONNECT_TIMEOUT,
        shared: bool = False,
    ) -> None:
        self._bind_host, self._bind_port = protocol.parse_address(bind, variable="bind")
        if not isinstance(n_workers, int) or n_workers < 1:
            raise MapReduceError(
                f"n_workers must be an integer >= 1, got {n_workers!r}"
            )
        if map_chunk_size is not None and map_chunk_size != "auto":
            if not isinstance(map_chunk_size, int) or map_chunk_size < 1:
                raise MapReduceError(
                    "map_chunk_size must be a positive int, 'auto' or None"
                )
        if min_artifact_bytes < 1:
            raise MapReduceError("min_artifact_bytes must be >= 1")
        self.n_workers = n_workers
        self.map_chunk_size = map_chunk_size
        self.min_artifact_bytes = min_artifact_bytes
        self.connect_timeout = connect_timeout
        self.shared = shared
        self._coordinator: Coordinator | None = None
        self._assembled = False
        self.last_run_retries = 0

    @property
    def is_parallel(self) -> bool:
        """True when more than one host executes tasks."""
        return self.n_workers > 1

    @property
    def coordinator(self) -> Coordinator:
        """The live coordinator, binding the listener on first use."""
        if self._coordinator is None or self._coordinator.closed:
            if self.shared:
                self._coordinator = shared_coordinator(self._bind_host, self._bind_port)
            else:
                self._coordinator = Coordinator(
                    host=self._bind_host, port=self._bind_port
                )
        return self._coordinator

    @property
    def address(self) -> tuple[str, int]:
        """The coordinator's actual (host, port) — resolves port 0."""
        return self.coordinator.address

    def start(self) -> "ClusterEngine":
        """Bind the listener now (otherwise it happens on first run)."""
        _ = self.coordinator
        return self

    def wait_for_workers(
        self, n: int | None = None, timeout: float | None = None
    ) -> None:
        self.coordinator.wait_for_workers(
            n if n is not None else self.n_workers,
            timeout if timeout is not None else self.connect_timeout,
        )

    def _resolve_chunk_size(self, n_inputs: int) -> int:
        if self.map_chunk_size is None:
            return 1
        if self.map_chunk_size == "auto":
            # Size for the workers actually registered, not just the minimum
            # waited for — every connected worker gets dispatch threads, and
            # extra hosts must not be starved by too-coarse chunks.
            n_hosts = max(self.n_workers, len(self.coordinator.alive_workers()))
            return auto_chunk_size(n_inputs, n_hosts, "cluster")
        return self.map_chunk_size

    def run(
        self, job: MapReduceJob, inputs: Iterable[tuple[Any, Any]]
    ) -> tuple[list[tuple[Any, Any]], JobStats]:
        """Execute ``job`` over ``inputs`` on the cluster."""
        stats = JobStats()
        input_list = list(inputs)
        coordinator = self.coordinator
        if input_list:
            # Full-strength barrier on first assembly only: a worker lost
            # mid-session (killed, host down) must not stall every later
            # run for the whole connect timeout — the cluster keeps going
            # on the survivors, exactly as it finishes the run the worker
            # died in.
            needed = self.n_workers if not self._assembled else 1
            coordinator.wait_for_workers(needed, self.connect_timeout)
            self._assembled = True
        # Chunked after the worker barrier, so "auto" sees the real host
        # count (every registered worker, not just the minimum waited for).
        chunk_size = self._resolve_chunk_size(len(input_list))
        indexed = list(enumerate(input_list))
        chunks = [
            indexed[lo : lo + chunk_size]
            for lo in range(0, len(indexed), chunk_size)
        ]
        stats.n_map_chunks = len(chunks)
        run_id = coordinator.next_run_id()
        plane = ArtifactPlane(
            coordinator.spool_dir, run_id, min_bytes=self.min_artifact_bytes
        )
        retries = 0
        try:
            payloads = [dumps(("map", job, chunk), plane) for chunk in chunks]
            map_results, map_seconds, lost = coordinator.run_phase(
                "map", payloads, plane
            )
            retries += lost
            stats.map_task_seconds.extend(map_seconds)

            start = time.perf_counter()
            groups = LocalEngine.shuffle(
                pair for emitted in map_results for pair in emitted
            )
            stats.shuffle_seconds = time.perf_counter() - start

            items = list(groups.items())
            payloads = [dumps(("reduce", job, item), plane) for item in items]
            reduce_results, reduce_seconds, lost = coordinator.run_phase(
                "reduce", payloads, plane
            )
            retries += lost
            stats.reduce_task_seconds.extend(reduce_seconds)
        finally:
            plane.close()
            coordinator.end_run(run_id)
        self.last_run_retries = retries

        outputs = [pair for emitted in reduce_results for pair in emitted]
        stats.n_outputs = len(outputs)
        return outputs, stats

    def close(self, shutdown_workers: bool = False) -> None:
        """Release the coordinator (private ones only, unless shared=False).

        Shared coordinators belong to the process (closed at interpreter
        exit) so that sequential env-steered engines keep reusing the same
        listener and workers.
        """
        coordinator = self._coordinator
        self._coordinator = None
        if coordinator is not None and not self.shared:
            coordinator.close(shutdown_workers=shutdown_workers)

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- localhost harness -------------------------------------------------------


def _worker_environment() -> dict[str, str]:
    """Environment for spawned localhost workers.

    The current ``sys.path`` is propagated through ``PYTHONPATH`` so the
    worker can unpickle jobs by reference no matter where they were defined
    — the installed ``repro`` package, a source checkout, or a test module
    pytest imported from a bare directory.
    """
    env = dict(os.environ)
    paths = [p for p in sys.path if p]
    env["PYTHONPATH"] = os.pathsep.join(paths)
    # A localhost cluster is a determinism harness, not a parallelism
    # benchmark by default; keep each worker's BLAS single-threaded so
    # n_hosts workers do not oversubscribe the machine.
    env.setdefault("OMP_NUM_THREADS", "1")
    return env


@contextlib.contextmanager
def local_cluster(
    n_hosts: int,
    map_chunk_size: int | str | None = "auto",
    min_artifact_bytes: int = DEFAULT_MIN_BYTES,
    retry_seconds: float = 30.0,
    startup_timeout: float = 60.0,
):
    """Spawn ``n_hosts`` localhost workers around a private coordinator.

    Yields a ready :class:`ClusterEngine` (workers registered).  On exit the
    workers are shut down (escalating to kill if they ignore it), the
    listener is closed, and the spool directory is removed — tests assert
    this teardown is leak-free.
    """
    if n_hosts < 1:
        raise MapReduceError("local_cluster needs at least one host")
    engine = ClusterEngine(
        bind="127.0.0.1:0",
        n_workers=n_hosts,
        map_chunk_size=map_chunk_size,
        min_artifact_bytes=min_artifact_bytes,
        shared=False,
    ).start()
    host, port = engine.address
    env = _worker_environment()
    processes: list[subprocess.Popen] = []
    try:
        for index in range(n_hosts):
            processes.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        f"{host}:{port}",
                        "--id",
                        f"host{index}",
                        "--retry",
                        str(retry_seconds),
                        "--quiet",
                    ],
                    env=env,
                )
            )
        engine.wait_for_workers(n_hosts, timeout=startup_timeout)
        yield engine
    finally:
        engine.close(shutdown_workers=True)
        deadline = time.monotonic() + 10.0
        for process in processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                process.kill()
                process.wait(timeout=10.0)
