"""Exponential backoff with full jitter, shared by every retry loop.

Fixed-cadence retry loops synchronize: when a coordinator dies, every
worker that lost it redials on the same beat, and when it comes back they
all stampede the listener in the same instant.  The standard cure is
*exponential backoff with full jitter*: attempt ``k`` sleeps a uniformly
random duration in ``[0, min(cap, base * 2**k)]``, so retries spread out
in time while the expected wait still doubles until the cap.

One :class:`Backoff` instance tracks one retry loop (the worker redial
loop, an artifact re-fetch, the ``wait_for_workers`` poll).  Call
:meth:`reset` after a success so the next failure starts fast again.
"""

from __future__ import annotations

import random
import time

from ..obs import counter
from ..utils.errors import MapReduceError


class Backoff:
    """Full-jitter exponential backoff state for one retry loop.

    Parameters
    ----------
    base:
        Ceiling of the *first* delay, in seconds.  Attempt ``k`` (counted
        from 0) draws uniformly from ``[0, min(cap, base * 2**k)]``.
    cap:
        Upper bound on any single delay, in seconds.
    rng:
        Optional :class:`random.Random` for deterministic tests; a fresh
        generator otherwise (jitter must differ across processes — that is
        the point).
    site:
        Optional label naming the retry loop (``"worker.redial"``,
        ``"dataplane.fetch"``); when set, every :meth:`sleep` increments
        the ``repro.retry.sleeps`` counter for that site.
    """

    def __init__(
        self,
        base: float = 0.1,
        cap: float = 5.0,
        rng: random.Random | None = None,
        site: str = "",
    ) -> None:
        if not base > 0:
            raise MapReduceError(f"backoff base must be > 0 seconds, got {base!r}")
        if cap < base:
            raise MapReduceError(
                f"backoff cap must be >= base ({base!r}), got {cap!r}"
            )
        self.base = base
        self.cap = cap
        self.attempt = 0
        self.site = site
        self._rng = rng if rng is not None else random.Random()

    def ceiling(self) -> float:
        """The current attempt's maximum delay (the jitter window)."""
        return min(self.cap, self.base * (2.0**self.attempt))

    def next_delay(self) -> float:
        """Draw this attempt's delay and advance to the next attempt."""
        delay = self._rng.uniform(0.0, self.ceiling())
        self.attempt += 1
        return delay

    def sleep(self) -> float:
        """Sleep for :meth:`next_delay`; returns the seconds slept."""
        delay = self.next_delay()
        if self.site:
            counter("repro.retry.sleeps", site=self.site).inc()
        time.sleep(delay)
        return delay

    def reset(self) -> None:
        """Start over after a success (next failure backs off from base)."""
        self.attempt = 0
