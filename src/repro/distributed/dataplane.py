"""Artifact data plane: ship each large array once per (worker, run).

The remote counterpart of the shared-memory plane
(:mod:`repro.mapreduce.shm`).  Both planes solve the same problem — task
payloads that reference the same large NumPy matrix over and over (every
function pair of a query references its two value matrices) must not
serialize it per task — and both solve it the same way: a pickler detours
eligible arrays into out-of-band *artifacts*, replacing them with tiny
references; an unpickler on the other side resolves references back into
read-only arrays.

Where the shm plane uses ``multiprocessing.shared_memory`` segments, this
plane uses **persisted-partition artifacts**: each distinct array is written
once per run as a ``.npy`` file in the coordinator's spool directory (the
same dedup-by-identity discipline, keyed on ``id(array)`` with a keepalive
pin).  Workers resolve a reference through two transports, cheapest first:

1. **Spool directory** — when the worker shares a filesystem with the
   coordinator (localhost clusters, NFS), it memory-maps the spool file
   directly.  The array is then shipped *once per run*, not even once per
   worker, and never crosses the socket at all.
2. **Socket** — otherwise the worker pulls the ``.npy`` bytes over its
   coordinator connection (an :class:`~repro.distributed.protocol.ArtifactRequest`
   / :class:`~repro.distributed.protocol.Artifact` exchange) and caches the
   decoded array for the rest of the run: once per (worker, run).

Resolved arrays are read-only (memory-maps are opened ``mmap_mode="r"``,
fetched arrays have ``writeable`` cleared), mirroring the shm plane: map
tasks must treat inputs as immutable, and an accidental in-place mutation
must be a loud error rather than a silent cross-host divergence.

The plane is transport only — it never changes *what* is computed — so the
engine's bit-identical serial/cluster guarantee rests on ``np.save`` /
``np.load`` round-tripping array bytes exactly, which they do.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .. import obs
from ..utils.errors import MapReduceError
from . import faults
from .retry import Backoff

#: Arrays below this many bytes travel inside the task pickle: a spool file
#: and a potential socket round trip only pay off for matrices of real size.
#: Matches the shm plane's threshold so the two executors promote the same
#: arrays.
DEFAULT_MIN_BYTES = 32 * 1024

#: How many times a worker fetches an artifact over the socket before the
#: task fails: a transient loss or a checksum mismatch is retried (with
#: full-jitter backoff), persistent corruption fails fast and typed.
FETCH_ATTEMPTS = 3

#: Tag marking a persistent id as one of ours (defensive: ``persistent_load``
#: must reject foreign pids instead of fabricating arrays from garbage).
_PID_TAG = "repro.distributed.dataplane"


class ArtifactPlane:
    """Coordinator-side owner of one run's artifacts.

    Registers each distinct eligible array once (dedup by ``id``, with a
    keepalive pin so a freed array's id cannot be recycled into a stale
    cache hit), writing it to ``spool_dir`` as ``<run_id>-aNNNNN.npy``.
    ``close()`` deletes every file; the engine calls it in a ``finally``
    block, so failed runs clean up too.
    """

    def __init__(
        self,
        spool_dir: str | Path,
        run_id: str,
        min_bytes: int = DEFAULT_MIN_BYTES,
    ) -> None:
        if min_bytes < 1:
            raise MapReduceError("artifact min_bytes must be >= 1")
        self.spool_dir = Path(spool_dir)
        self.run_id = run_id
        self.min_bytes = min_bytes
        self._refs: dict[int, tuple] = {}
        self._paths: dict[str, Path] = {}
        self._sums: dict[str, str] = {}
        self._keepalive: list[np.ndarray] = []
        self.closed = False

    @property
    def n_artifacts(self) -> int:
        """Number of distinct arrays promoted to artifacts."""
        return len(self._paths)

    def eligible(self, obj: Any) -> bool:
        """True when ``obj`` is an array worth promoting to an artifact."""
        return (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and not obj.dtype.hasobject
            and obj.nbytes >= self.min_bytes
        )

    def register(self, array: np.ndarray) -> tuple:
        """Write ``array`` to the spool (once) and return its reference.

        The reference is a small picklable tuple
        ``(name, dtype_str, shape, spool_path, sha256)`` — the digest is
        the SHA-256 of the ``.npy`` bytes, carried in the reference so the
        *task pickle* (not the artifact frame) vouches for the bytes a
        worker fetches over the socket.
        """
        if self.closed:
            raise MapReduceError("artifact plane is already closed")
        key = id(array)
        ref = self._refs.get(key)
        if ref is not None:
            return ref
        name = f"{self.run_id}-a{len(self._paths):05d}"
        path = self.spool_dir / f"{name}.npy"
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        # ``np.save`` writes the canonical .npy container; the same bytes
        # serve the socket transport via :meth:`payload`.
        digest = hashlib.sha256()
        with open(path, "wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        self._paths[name] = path
        self._sums[name] = digest.hexdigest()
        ref = (name, array.dtype.str, array.shape, str(path), self._sums[name])
        self._refs[key] = ref
        self._keepalive.append(array)
        return ref

    def payload(self, name: str) -> bytes:
        """The ``.npy`` bytes of one artifact (the socket transport)."""
        path = self._paths.get(name)
        if path is None:
            raise MapReduceError(f"unknown artifact {name!r} requested")
        return path.read_bytes()

    def checksum(self, name: str) -> str:
        """Hex SHA-256 of one artifact's ``.npy`` bytes (as registered)."""
        digest = self._sums.get(name)
        if digest is None:
            raise MapReduceError(f"unknown artifact {name!r} requested")
        return digest

    def close(self) -> None:
        """Delete every spool file; idempotent, never raises partway."""
        if self.closed:
            return
        self.closed = True
        for path in self._paths.values():
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone / perms
                pass
        self._paths.clear()
        self._sums.clear()
        self._refs.clear()
        self._keepalive.clear()

    def __enter__(self) -> "ArtifactPlane":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ArtifactCache:
    """Worker-side resolver: one materialization per artifact per run.

    ``resolve`` tries the spool path first (shared filesystem: zero-copy
    memory map), then falls back to ``fetch`` (socket pull).  Entries live
    until the coordinator's ``EndRun`` clears them.

    Thread-safe: the worker's compute and prefetch threads materialize
    task payloads concurrently, so two ``resolve`` calls may race.  Cache
    bookkeeping is locked; the fetch itself runs unlocked (fetches are
    multiplexed connection-side), so a racing pair resolves the same
    artifact twice at worst — wasted bytes, never a wrong array.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self._lock = threading.Lock()
        self.n_fetched = 0
        self.n_mapped = 0

    def resolve(self, ref: tuple, fetch: Callable[[str], bytes]) -> np.ndarray:
        name, dtype_str, shape, spool_path, digest = ref
        with self._lock:
            cached = self._arrays.get(name)
        if cached is not None:
            return cached
        array, spool_failure = self._from_spool(spool_path, name)
        fetched = array is None
        if fetched:
            array = self._fetch_verified(name, digest, fetch, spool_failure)
        if array.dtype.str != dtype_str or array.shape != tuple(shape):
            raise MapReduceError(
                f"artifact {name!r} decoded as {array.dtype.str}{array.shape}, "
                f"reference says {dtype_str}{tuple(shape)}"
            )
        with self._lock:
            if fetched:
                self.n_fetched += 1
            else:
                self.n_mapped += 1
            self._arrays[name] = array
        if fetched:
            obs.counter("repro.dataplane.fetched").inc()
            obs.counter("repro.dataplane.fetched_bytes").inc(array.nbytes)
        else:
            obs.counter("repro.dataplane.mapped").inc()
        return array

    @staticmethod
    def _fetch_verified(
        name: str,
        digest: str,
        fetch: Callable[[str], bytes],
        spool_failure: str,
    ) -> np.ndarray:
        """Socket-pull ``name``, verifying SHA-256, with bounded retries.

        Transient failures — connection loss mid-fetch (``WireError``),
        corrupted bytes (digest mismatch), undecodable payload — are
        retried up to :data:`FETCH_ATTEMPTS` times with full-jitter
        backoff.  A coordinator-reported error (the run already ended) is
        permanent and re-raised as is.  Exhaustion raises a typed
        :class:`MapReduceError` naming the artifact and every failure,
        including why the spool path was unusable.
        """
        from .protocol import WireError  # runtime import: protocol uses us too

        backoff = Backoff(base=0.05, cap=1.0, site="dataplane.fetch")
        failures: list[str] = []
        if spool_failure:
            failures.append(f"spool: {spool_failure}")
        for attempt in range(1, FETCH_ATTEMPTS + 1):
            try:
                with obs.span("dataplane.fetch", artifact=name, attempt=attempt):
                    data = fetch(name)
            except WireError as exc:
                failures.append(f"fetch attempt {attempt}: {exc}")
                backoff.sleep()
                continue
            if digest:
                actual = hashlib.sha256(data).hexdigest()
                if actual != digest:
                    failures.append(
                        f"fetch attempt {attempt}: checksum mismatch "
                        f"(got {actual[:12]}…, reference says {digest[:12]}…)"
                    )
                    backoff.sleep()
                    continue
            try:
                return decode_artifact(data)
            except ValueError as exc:
                failures.append(f"fetch attempt {attempt}: undecodable: {exc}")
                backoff.sleep()
        raise MapReduceError(
            f"artifact {name!r} could not be materialized intact after "
            f"{FETCH_ATTEMPTS} fetch attempt(s): {'; '.join(failures)}"
        )

    @staticmethod
    def _from_spool(spool_path: str, name: str) -> tuple[np.ndarray | None, str]:
        """Memory-map the spool file; ``(None, reason)`` when unusable.

        A truncated or otherwise unreadable spool file must never surface
        as garbage data: ``np.load`` validates the ``.npy`` header and the
        mapped length, so failure here means *fall back to the socket* —
        and the reason travels into the typed error if that fails too.
        """
        if not spool_path:
            return None, "no spool path in reference"
        try:
            faults.fire("dataplane.read", detail=name)
            if not os.path.isfile(spool_path):
                return None, f"spool file {spool_path} does not exist"
            # mmap_mode="r" is read-only by construction: the OS shares the
            # pages and a write attempt raises, exactly like the shm plane's
            # read-only views.
            return np.load(spool_path, mmap_mode="r", allow_pickle=False), ""
        except (OSError, ValueError) as exc:
            return None, f"spool file {spool_path} unreadable: {exc}"

    def clear(self, run_id: str | None = None) -> None:
        """Drop cached arrays (of one run, or everything)."""
        with self._lock:
            if run_id is None:
                self._arrays.clear()
                return
            prefix = f"{run_id}-a"
            for name in [n for n in self._arrays if n.startswith(prefix)]:
                del self._arrays[name]

    def __len__(self) -> int:
        return len(self._arrays)


def decode_artifact(data: bytes) -> np.ndarray:
    """Decode ``.npy`` bytes into a read-only array."""
    array = np.load(io.BytesIO(data), allow_pickle=False)
    array.flags.writeable = False
    return array


class _PlanePickler(pickle.Pickler):
    """Pickler that detours eligible arrays through the plane."""

    def __init__(self, file: io.BytesIO, plane: ArtifactPlane | None) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._plane = plane

    def persistent_id(self, obj: Any) -> Any:
        plane = self._plane
        if plane is not None and plane.eligible(obj):
            return (_PID_TAG, plane.register(obj))
        return None


class _PlaneUnpickler(pickle.Unpickler):
    """Unpickler that resolves artifact references via a resolver."""

    def __init__(
        self, file: io.BytesIO, resolver: Callable[[tuple], np.ndarray]
    ) -> None:
        super().__init__(file)
        self._resolver = resolver

    def persistent_load(self, pid: Any) -> Any:
        if isinstance(pid, tuple) and len(pid) == 2 and pid[0] == _PID_TAG:
            return self._resolver(pid[1])
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps(obj: Any, plane: ArtifactPlane | None = None) -> bytes:
    """Pickle ``obj``, detouring large arrays through ``plane`` (if given)."""
    buffer = io.BytesIO()
    _PlanePickler(buffer, plane).dump(obj)
    return buffer.getvalue()


def loads(payload: bytes, resolver: Callable[[tuple], np.ndarray]) -> Any:
    """Inverse of :func:`dumps`; artifact refs go through ``resolver``."""
    return _PlaneUnpickler(io.BytesIO(payload), resolver).load()
