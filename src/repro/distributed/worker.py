"""Cluster worker daemon: ``repro worker --connect HOST:PORT``.

One worker is one "host" of the cluster (capacity: one *computing* task at
a time, matching the paper's one-slot-per-node Hadoop deployment).  The
daemon

* dials the coordinator (retrying while it is not up yet, so workers can be
  started before the driver process — the CI recipe),
* pulls work instead of waiting to be handed it: on ``JoinRun`` it
  announces its prefetch depth with a ``StealRequest``, and one more slot
  after every result, so the coordinator's shared queue drains toward
  whoever is idle (see ``docs/protocol.md``),
* pipelines the data plane with compute: while one task runs, a prefetch
  thread materializes the next queued task's payload — unpickling and
  resolving artifact references (spool memory-map first, socket pull
  second; see :mod:`repro.distributed.dataplane`) — so transfer time hides
  behind compute time,
* executes map chunks and reduce groups, reporting ``("ok", result,
  seconds)`` or the original traceback on failure — the same contract as
  the process executor's worker entry point, so the coordinator can
  re-raise library errors with their real type,
* sends heartbeats from a background thread — also *during* long tasks —
  so the coordinator can tell a straggler from a corpse, and
* reconnects after losing the coordinator (a driver exits between
  ``repro index`` and ``repro query``) until its ``--retry`` window runs
  out without a successful connection.  A worker that (re)connects while a
  run is in progress receives ``JoinRun`` immediately and starts stealing
  — elastic join.

A task that raises is reported and the worker lives on; only ``Shutdown``
from the coordinator, an exhausted retry window, or process death end the
daemon.
"""

from __future__ import annotations

import os
import pickle
import socket
import sys
import threading
import time
import traceback
from collections import deque

from ..mapreduce.engine import _map_chunk
from ..obs import configure_logging, get_logger
from ..obs import metrics as obs
from ..obs.fleet import DeltaShipper
from ..obs.profile import Profiler
from ..utils.errors import MapReduceError
from . import faults, protocol
from .dataplane import ArtifactCache, loads
from .retry import Backoff
from .protocol import (
    Artifact,
    ArtifactRequest,
    EndRun,
    Heartbeat,
    Hello,
    JoinRun,
    Shutdown,
    StealRequest,
    Task,
    TaskResult,
    TaskStream,
    WireError,
)

#: How long a worker waits for the coordinator's side of the handshake.
HANDSHAKE_TIMEOUT = 30.0

#: How long a worker waits for an artifact it asked for.
FETCH_TIMEOUT = 120.0

#: Redial backoff (full jitter): the first retry waits up to
#: ``REDIAL_BASE`` seconds, each further failure doubles the window up to
#: ``REDIAL_CAP`` seconds, and a successful registration resets it.
#: Jitter keeps a fleet of workers that lost one coordinator from
#: stampeding the next in lockstep.
REDIAL_BASE = 0.1
REDIAL_CAP = 5.0

#: TCP connect timeout of a single dial attempt.
DIAL_TIMEOUT = 5.0

logger = get_logger(__name__)


def execute_task(payload: bytes, cache: ArtifactCache, fetch) -> TaskResult:
    """Run one dataplane-pickled task; never raises for job errors.

    Mirrors the process executor's worker entry point: job exceptions come
    back as ``status="err"`` with the original traceback text, plus the
    exception instance itself when it survives a pickle round trip (so
    ``ReproError`` subclasses keep their type across the host boundary).

    The daemon's hot path goes through :class:`_TaskSlot` instead (payload
    materialization is prefetched there); this entry point stays the
    one-shot reference used by protocol-level tests.
    """
    start = time.perf_counter()
    try:
        kind, job, data = loads(payload, lambda ref: cache.resolve(ref, fetch))
        result = _compute(kind, job, data)
        return TaskResult(
            task_id=-1,
            status="ok",
            result=result,
            seconds=time.perf_counter() - start,
        )
    except (SystemExit, KeyboardInterrupt):  # pragma: no cover - passthrough
        raise
    except BaseException:
        return _error_result()


def _compute(kind: str, job, data) -> list:
    if kind == "map":
        return _map_chunk(job, data)
    if kind == "reduce":
        key, values = data
        return list(job.reduce(key, values))
    raise MapReduceError(f"unknown task kind {kind!r}")


def _error_result() -> TaskResult:
    """A ``status="err"`` result for the exception currently being handled."""
    exc = sys.exc_info()[1]
    original: BaseException | None
    try:
        original = pickle.loads(pickle.dumps(exc))
    except Exception:
        original = None
    return TaskResult(
        task_id=-1,
        status="err",
        traceback=traceback.format_exc(),
        original=original,
    )


class _TaskSlot:
    """One queued task and its materialization state.

    States (guarded by the queue's condition): ``"new"`` (payload bytes
    only) → ``"loading"`` (a thread is unpickling it and resolving its
    artifacts) → ``"ready"`` (``value`` holds the live task tuple),
    ``"failed"`` (``error`` holds the err TaskResult — a job bug), or
    ``"lost"`` (transport died while loading; the task is abandoned for
    the coordinator to requeue, never reported as failed).  The prefetch
    thread moves queued slots to ``ready`` while the compute thread runs
    the current one — that is the transfer/compute overlap.
    """

    __slots__ = ("run_id", "task", "state", "value", "error")

    def __init__(self, run_id: str, task: Task) -> None:
        self.run_id = run_id
        self.task = task
        self.state = "new"
        self.value = None
        self.error: TaskResult | None = None


class _TaskQueue:
    """The worker's local run queue, shared by recv/prefetch/compute threads."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.slots: deque[_TaskSlot] = deque()
        self.stopped = False
        self._depth_gauge = obs.gauge("repro.worker.queue_depth")

    def extend(self, run_id: str, tasks: list[Task]) -> None:
        with self.cond:
            for task in tasks:
                self.slots.append(_TaskSlot(run_id, task))
            self._depth_gauge.set(len(self.slots))
            self.cond.notify_all()

    def drop_run(self, run_id: str) -> None:
        """Discard queued (not yet computing) slots of an ended run."""
        with self.cond:
            self.slots = deque(s for s in self.slots if s.run_id != run_id)
            self._depth_gauge.set(len(self.slots))
            self.cond.notify_all()

    def stop(self) -> None:
        with self.cond:
            self.stopped = True
            self._depth_gauge.set(0)
            self.cond.notify_all()

    def pop(self) -> _TaskSlot | None:
        """Next slot for the compute thread; ``None`` once stopped."""
        with self.cond:
            while not self.slots and not self.stopped:
                self.cond.wait()
            if self.stopped:
                return None
            slot = self.slots.popleft()
            self._depth_gauge.set(len(self.slots))
            return slot

    def claim_for_prefetch(self) -> _TaskSlot | None:
        """Next ``"new"`` slot for the prefetch thread; ``None`` once stopped.

        The slot stays in the queue (compute pops in FIFO order regardless);
        claiming just flips it to ``"loading"`` so exactly one thread
        materializes it.
        """
        with self.cond:
            while True:
                if self.stopped:
                    return None
                for slot in self.slots:
                    if slot.state == "new":
                        slot.state = "loading"
                        return slot
                self.cond.wait()


class _FetchWaiter:
    __slots__ = ("event", "data", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.data: bytes | None = None
        self.error = ""


class _Connection:
    """One registered coordinator connection of a worker."""

    def __init__(
        self,
        sock: socket.socket,
        worker_id: str,
        shipper: DeltaShipper | None = None,
    ) -> None:
        self.sock = sock
        self.worker_id = worker_id
        self.send_lock = threading.Lock()
        self.heartbeat_interval = 1.0
        self.spool_dir = ""
        self._stop = threading.Event()
        self._fetch_lock = threading.Lock()
        self._fetches: dict[str, list[_FetchWaiter]] = {}
        #: Runs whose :class:`JoinRun` asked for tracing (v2.2): tasks of
        #: these runs ship their spans back on the :class:`TaskResult`.
        self.trace_runs: set[str] = set()
        #: Runs whose :class:`JoinRun` asked for profiling (v2.3): tasks
        #: of these runs sample their slot thread and ship collapsed-stack
        #: counts back on the :class:`TaskResult`.
        self.profile_runs: set[str] = set()
        #: The daemon's metrics delta shipper (v2.3 heartbeat piggyback).
        #: Owned by the *daemon*, not the connection: baselines and the
        #: sequence number must survive reconnects so a retained
        #: coordinator keeps deduplicating honestly.
        self.shipper = shipper

    def send(self, message) -> None:
        with self.send_lock:
            protocol.send_msg(self.sock, message)

    def handshake(self, timeout: float = HANDSHAKE_TIMEOUT) -> None:
        self.sock.settimeout(timeout)
        protocol.send_preamble(self.sock)
        protocol.recv_preamble(self.sock)
        self.send(
            Hello(
                worker_id=self.worker_id,
                pid=os.getpid(),
                host=socket.gethostname(),
            )
        )
        welcome = protocol.recv_msg(self.sock)
        if not isinstance(welcome, protocol.Welcome):
            raise WireError(f"expected Welcome, got {type(welcome).__name__}")
        self.heartbeat_interval = welcome.heartbeat_interval
        self.spool_dir = welcome.spool_dir
        self.sock.settimeout(None)

    def start_heartbeats(self) -> None:
        thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="repro-heartbeat"
        )
        thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                # A delay fault here models a worker whose heartbeat thread
                # stalls (GC pause, swapped-out host): long enough and the
                # coordinator declares it lost despite the task thread
                # still running.
                faults.fire("worker.heartbeat")
                # v2.3: piggyback the metrics delta since the previous
                # beat.  A delta consumed here but lost with the
                # connection is dropped, never re-shipped — the fleet
                # view is advisory telemetry.
                delta = (
                    self.shipper.next_delta()
                    if self.shipper is not None
                    else None
                )
                self.send(
                    Heartbeat(
                        worker_id=self.worker_id,
                        seq=delta["seq"] if delta else 0,
                        metrics=delta,
                    )
                )
            except (WireError, OSError):
                # The connection is gone; unblock the main recv loop too.
                self.close()
                return

    def fetch_artifact(self, name: str) -> bytes:
        """Pull one artifact over the connection (called mid-unpickle).

        Fetches are multiplexed: the request goes out on the shared send
        path, the recv loop delivers the reply via :meth:`deliver_artifact`,
        and any number of threads (compute materializing its own slot,
        prefetch materializing the next) can wait concurrently.
        """
        waiter = _FetchWaiter()
        with self._fetch_lock:
            self._fetches.setdefault(name, []).append(waiter)
        try:
            self.send(ArtifactRequest(name=name))
            deadline = time.monotonic() + FETCH_TIMEOUT
            # Poll the stop flag too: a connection torn down mid-fetch must
            # not strand a materializing thread for the full fetch timeout.
            while not waiter.event.wait(0.2):
                if self._stop.is_set():
                    raise WireError("connection closed mid-artifact-fetch")
                if time.monotonic() > deadline:
                    raise WireError(f"timed out fetching artifact {name!r}")
        finally:
            with self._fetch_lock:
                waiters = self._fetches.get(name)
                if waiters and waiter in waiters:
                    waiters.remove(waiter)
                    if not waiters:
                        del self._fetches[name]
        if waiter.error:
            raise MapReduceError(
                f"coordinator could not serve artifact {name!r}: {waiter.error}"
            )
        if waiter.data is None:
            raise WireError("coordinator vanished mid-artifact-fetch")
        return waiter.data

    def deliver_artifact(self, message: Artifact) -> None:
        with self._fetch_lock:
            waiters = self._fetches.pop(message.name, [])
        for waiter in waiters:
            waiter.data = message.data
            waiter.error = message.error
            waiter.event.set()

    def fail_fetches(self) -> None:
        """Wake every in-flight fetch with a connection-lost outcome."""
        with self._fetch_lock:
            waiters = [w for group in self._fetches.values() for w in group]
            self._fetches.clear()
        for waiter in waiters:
            waiter.event.set()

    def close(self) -> None:
        self._stop.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass
        self.fail_fetches()


def _materialize(
    slot: _TaskSlot,
    queue: _TaskQueue,
    cache: ArtifactCache,
    connection: _Connection,
) -> None:
    """Unpickle a slot's payload, resolving artifacts; flip its state."""
    try:
        faults.fire("worker.prefetch", detail=str(slot.task.task_id))
        value = loads(
            slot.task.payload,
            lambda ref: cache.resolve(ref, connection.fetch_artifact),
        )
    except (SystemExit, KeyboardInterrupt):  # pragma: no cover - passthrough
        raise
    except (WireError, OSError):
        # Transport loss, not a job bug: an err TaskResult would fail the
        # whole run, but a task this worker could not even *load* must be
        # retried elsewhere.  Abandon the slot and drop the connection —
        # the coordinator requeues everything outstanding here.
        with queue.cond:
            slot.state = "lost"
            queue.cond.notify_all()
        connection.close()
        return
    except BaseException:
        error = _error_result()
        with queue.cond:
            slot.error = error
            slot.state = "failed"
            queue.cond.notify_all()
        return
    with queue.cond:
        slot.value = value
        slot.state = "ready"
        queue.cond.notify_all()


def _prefetch_loop(
    queue: _TaskQueue, cache: ArtifactCache, connection: _Connection
) -> None:
    while True:
        slot = queue.claim_for_prefetch()
        if slot is None:
            return
        _materialize(slot, queue, cache, connection)


def _run_slot(
    slot: _TaskSlot,
    queue: _TaskQueue,
    cache: ArtifactCache,
    connection: _Connection,
) -> TaskResult:
    """Compute one slot, materializing it first if prefetch has not.

    Task ``seconds`` cover compute only when the payload was prefetched —
    the whole point of the pipeline is that transfer time does not bill to
    the task — and compute+materialize when the compute thread had to do
    both (queue depth 1, prefetch disabled or behind).
    """
    with queue.cond:
        if slot.state == "new":
            slot.state = "loading"
            claimed = True
        else:
            claimed = False
            while slot.state == "loading" and not queue.stopped:
                queue.cond.wait()
    traced = slot.run_id in connection.trace_runs
    profiled = slot.run_id in connection.profile_runs
    start = time.perf_counter()
    if claimed:
        _materialize(slot, queue, cache, connection)
    load_seconds = time.perf_counter() - start if claimed else 0.0
    if slot.state == "failed":
        return slot.error
    if slot.state != "ready":
        # "lost" or stopped mid-load: the connection is (being) torn down,
        # so this result never reaches the coordinator — it requeues the
        # task off the dead socket instead.
        return TaskResult(
            task_id=-1,
            status="err",
            traceback="task abandoned: connection stopped while loading",
        )
    kind, job, data = slot.value
    # v2.3: sample exactly this slot thread while the task computes, so
    # the shipped profile is the task's own stacks, not the daemon's
    # heartbeat/recv threads.
    profiler = (
        Profiler(threads={threading.get_ident()}) if profiled else None
    )
    try:
        # crash/hang/delay here model a worker dying, wedging (while its
        # heartbeat thread keeps beating — the task-deadline case), or
        # straggling mid-compute.
        faults.fire("worker.compute", detail=kind)
        compute_offset = time.perf_counter() - start
        result = _compute(kind, job, data)
        seconds = time.perf_counter() - start
        if profiler is not None:
            profiler.stop()
        obs.counter("repro.worker.tasks", kind=kind).inc()
        obs.histogram("repro.worker.task_seconds").observe(seconds)
        spans: tuple = ()
        if traced:
            # Offsets are relative to the task start on the worker clock;
            # the coordinator re-bases them onto the driver clock (v2.2).
            recorded = []
            if claimed:
                recorded.append(("task.load", 0.0, load_seconds, {}))
            recorded.append(
                (
                    "task.compute",
                    compute_offset,
                    seconds - compute_offset,
                    {"kind": kind},
                )
            )
            spans = tuple(recorded)
        return TaskResult(
            task_id=-1,
            status="ok",
            result=result,
            seconds=seconds,
            spans=spans,
            profile=profiler.counts() if profiler is not None else None,
        )
    except (SystemExit, KeyboardInterrupt):  # pragma: no cover - passthrough
        raise
    except BaseException:
        return _error_result()
    finally:
        if profiler is not None:
            profiler.stop()


def _compute_loop(
    queue: _TaskQueue, cache: ArtifactCache, connection: _Connection
) -> None:
    while True:
        slot = queue.pop()
        if slot is None:
            return
        result = _run_slot(slot, queue, cache, connection)
        result.task_id = slot.task.task_id
        result.run_id = slot.run_id
        try:
            connection.send(result)
            # Pull-based dispatch: the slot this result frees is re-announced
            # immediately, which is what lets a fast worker steal the queue
            # out from under a straggler.
            connection.send(StealRequest(worker_id=connection.worker_id))
        except (WireError, OSError):
            connection.close()
            return


def _serve(connection: _Connection, cache: ArtifactCache) -> str:
    """Recv loop of one connection; returns "shutdown" or "lost".

    Three sibling threads work the connection: heartbeats, compute (one
    task at a time, FIFO), and prefetch (materializes the next queued
    task).  This loop is the only reader — artifacts are routed to waiting
    fetches, everything else mutates the queue.
    """
    connection.start_heartbeats()
    queue = _TaskQueue()
    compute = threading.Thread(
        target=_compute_loop,
        args=(queue, cache, connection),
        daemon=True,
        name="repro-compute",
    )
    prefetch = threading.Thread(
        target=_prefetch_loop,
        args=(queue, cache, connection),
        daemon=True,
        name="repro-prefetch",
    )
    compute.start()
    prefetch.start()
    outcome = "lost"
    try:
        while True:
            try:
                message = protocol.recv_msg(connection.sock)
            except (WireError, OSError):
                break
            if message is None:
                break
            if isinstance(message, Shutdown):
                outcome = "shutdown"
                break
            if isinstance(message, EndRun):
                queue.drop_run(message.run_id)
                cache.clear(message.run_id)
                connection.trace_runs.discard(message.run_id)
                connection.profile_runs.discard(message.run_id)
                continue
            if isinstance(message, JoinRun):
                # getattr: a pre-v2.2/v2.3 coordinator's JoinRun pickles
                # without the trace/profile fields (additive revisions,
                # same version byte).
                if getattr(message, "trace", False):
                    connection.trace_runs.add(message.run_id)
                if getattr(message, "profile", False):
                    connection.profile_runs.add(message.run_id)
                # Attached to a (possibly already-running) run: announce the
                # whole pipeline as steal capacity.
                try:
                    connection.send(
                        StealRequest(
                            worker_id=connection.worker_id,
                            capacity=max(1, message.prefetch_depth),
                        )
                    )
                except (WireError, OSError):
                    break
                continue
            if isinstance(message, TaskStream):
                queue.extend(message.run_id, message.tasks)
                continue
            if isinstance(message, Artifact):
                connection.deliver_artifact(message)
                continue
            # Unknown message: protocol drift; drop the connection loudly.
            logger.warning(
                "worker %s: unexpected %s; dropping connection",
                connection.worker_id,
                type(message).__name__,
            )
            break
    finally:
        queue.stop()
        connection.close()  # also fails in-flight fetches
        # Let the current task finish (its result send will fail, which is
        # fine) so two connections never compute concurrently — the worker
        # stays a one-compute-slot host across reconnects.
        compute.join()
        prefetch.join()
    return outcome


def _dial(host: str, port: int, timeout: float = DIAL_TIMEOUT) -> socket.socket:
    """One TCP connection attempt to the coordinator (no retries here)."""
    faults.fire("worker.dial")
    return socket.create_connection((host, port), timeout=timeout)


def run_worker(
    connect: str,
    worker_id: str | None = None,
    retry_seconds: float = 60.0,
    quiet: bool = False,
    redial_base: float = REDIAL_BASE,
    redial_cap: float = REDIAL_CAP,
    heartbeat_interval: float | None = None,
) -> int:
    """Run the worker daemon until shutdown; returns a process exit code.

    ``retry_seconds`` bounds how long the worker keeps dialing without a
    successful connection — both at startup (coordinator not up yet) and
    after losing an established coordinator (driver exited; a new one may
    start).  ``0`` means a single attempt.  Failed dials back off with
    full jitter from ``redial_base`` seconds doubling up to ``redial_cap``
    seconds per attempt (:class:`~repro.distributed.retry.Backoff`); a
    successful registration resets the backoff and the retry window.

    ``heartbeat_interval`` (seconds) overrides the cadence the coordinator
    announces in its ``Welcome`` — metrics deltas ship on heartbeats, so
    an operator can trade telemetry freshness against chatter.  ``None``
    keeps the coordinator's contract; anything else must be > 0.
    """
    host, port = protocol.parse_address(connect, variable="--connect")
    if heartbeat_interval is not None and heartbeat_interval <= 0:
        raise MapReduceError(
            f"heartbeat_interval must be > 0 seconds, got {heartbeat_interval}"
        )
    wid = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    faults.install_from_env(role="worker")
    cache = ArtifactCache()
    # One shipper for the daemon's lifetime (not per connection): delta
    # baselines and the sequence number must survive reconnects.
    shipper = DeltaShipper()
    backoff = Backoff(base=redial_base, cap=redial_cap, site="worker.redial")
    if not quiet:
        # The daemon is an application: attach a real handler (text or
        # JSON lines per REPRO_LOG_JSON) so its status lines reach stderr.
        configure_logging()

    def log(text: str) -> None:
        if not quiet:
            logger.info("worker %s: %s", wid, text)

    window_start = time.monotonic()

    def window_exhausted(reason: str) -> bool:
        if time.monotonic() - window_start > retry_seconds:
            log(f"{reason} for {retry_seconds:.0f}s; exiting")
            return True
        backoff.sleep()
        return False

    while True:
        try:
            sock = _dial(host, port)
        except OSError:
            if window_exhausted(f"no coordinator at {host}:{port}"):
                return 1
            continue

        connection = _Connection(sock, wid, shipper=shipper)
        try:
            # A peer that accepts TCP but never answers (wrong service on
            # the port) must not stall past the retry window: clamp the
            # handshake timeout to what is left of it.
            remaining = retry_seconds - (time.monotonic() - window_start)
            connection.handshake(
                timeout=min(HANDSHAKE_TIMEOUT, max(1.0, remaining + 1.0))
            )
        except (WireError, OSError) as exc:
            # A failed handshake (wrong service on the port, version skew)
            # burns the same retry window as a refused connect — only a
            # completed registration resets it.
            log(f"handshake failed: {exc}")
            connection.close()
            if window_exhausted(f"no usable coordinator at {host}:{port}"):
                return 1
            continue

        log(f"connected to coordinator {host}:{port}")
        if heartbeat_interval is not None:
            connection.heartbeat_interval = heartbeat_interval
        window_start = time.monotonic()  # successful registration resets it
        backoff.reset()
        outcome = _serve(connection, cache)
        connection.close()
        cache.clear()
        if outcome == "shutdown":
            log("shutdown requested by coordinator; exiting")
            return 0
        log("lost coordinator; retrying")
        window_start = time.monotonic()
