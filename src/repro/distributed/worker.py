"""Cluster worker daemon: ``repro worker --connect HOST:PORT``.

One worker is one "host" of the cluster (capacity: one task at a time,
matching the paper's one-slot-per-node Hadoop deployment).  The daemon

* dials the coordinator (retrying while it is not up yet, so workers can be
  started before the driver process — the CI recipe),
* executes the map chunks and reduce groups it is handed, reporting
  ``("ok", result, seconds)`` or the original traceback on failure — the
  same contract as the process executor's worker entry point, so the
  coordinator can re-raise library errors with their real type,
* resolves artifact references through the data plane (spool memory-map
  first, socket pull second; see :mod:`repro.distributed.dataplane`),
* sends heartbeats from a background thread — also *during* long tasks —
  so the coordinator can tell a straggler from a corpse, and
* reconnects after losing the coordinator (a driver exits between
  ``repro index`` and ``repro query``) until its ``--retry`` window runs
  out without a successful connection.

A task that raises is reported and the worker lives on; only ``Shutdown``
from the coordinator, an exhausted retry window, or process death end the
daemon.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
import traceback

from ..mapreduce.engine import _map_chunk
from ..utils.errors import MapReduceError
from . import protocol
from .dataplane import ArtifactCache, loads
from .protocol import (
    Artifact,
    ArtifactRequest,
    EndRun,
    Heartbeat,
    Hello,
    Shutdown,
    Task,
    TaskResult,
    WireError,
)

#: How long a worker waits for the coordinator's side of the handshake.
HANDSHAKE_TIMEOUT = 30.0

#: How long a worker waits for an artifact it asked for.
FETCH_TIMEOUT = 120.0

#: Delay between reconnection attempts.
RECONNECT_DELAY = 0.5


def execute_task(payload: bytes, cache: ArtifactCache, fetch) -> TaskResult:
    """Run one dataplane-pickled task; never raises for job errors.

    Mirrors the process executor's worker entry point: job exceptions come
    back as ``status="err"`` with the original traceback text, plus the
    exception instance itself when it survives a pickle round trip (so
    ``ReproError`` subclasses keep their type across the host boundary).
    """
    start = time.perf_counter()
    try:
        kind, job, data = loads(payload, lambda ref: cache.resolve(ref, fetch))
        if kind == "map":
            result: list = _map_chunk(job, data)
        elif kind == "reduce":
            key, values = data
            result = list(job.reduce(key, values))
        else:
            raise MapReduceError(f"unknown task kind {kind!r}")
        return TaskResult(
            task_id=-1,
            status="ok",
            result=result,
            seconds=time.perf_counter() - start,
        )
    except (SystemExit, KeyboardInterrupt):  # pragma: no cover - passthrough
        raise
    except BaseException as exc:
        original: BaseException | None
        try:
            original = pickle.loads(pickle.dumps(exc))
        except Exception:
            original = None
        return TaskResult(
            task_id=-1,
            status="err",
            traceback=traceback.format_exc(),
            original=original,
        )


class _Connection:
    """One registered coordinator connection of a worker."""

    def __init__(self, sock: socket.socket, worker_id: str) -> None:
        self.sock = sock
        self.worker_id = worker_id
        self.send_lock = threading.Lock()
        self.heartbeat_interval = 1.0
        self.spool_dir = ""
        self._stop = threading.Event()

    def send(self, message) -> None:
        with self.send_lock:
            protocol.send_msg(self.sock, message)

    def handshake(self, timeout: float = HANDSHAKE_TIMEOUT) -> None:
        self.sock.settimeout(timeout)
        protocol.send_preamble(self.sock)
        protocol.recv_preamble(self.sock)
        self.send(
            Hello(
                worker_id=self.worker_id,
                pid=os.getpid(),
                host=socket.gethostname(),
            )
        )
        welcome = protocol.recv_msg(self.sock)
        if not isinstance(welcome, protocol.Welcome):
            raise WireError(f"expected Welcome, got {type(welcome).__name__}")
        self.heartbeat_interval = welcome.heartbeat_interval
        self.spool_dir = welcome.spool_dir
        self.sock.settimeout(None)

    def start_heartbeats(self) -> None:
        thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="repro-heartbeat"
        )
        thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.send(Heartbeat(worker_id=self.worker_id))
            except (WireError, OSError):
                # The connection is gone; unblock the main recv loop too.
                self.close()
                return

    def fetch_artifact(self, name: str) -> bytes:
        """Pull one artifact over the connection (called mid-unpickle).

        Safe because the worker is strictly single-tasked: while it is
        deserializing a task, the only coordinator->worker traffic is the
        reply to this request.
        """
        self.send(ArtifactRequest(name=name))
        self.sock.settimeout(FETCH_TIMEOUT)
        try:
            while True:
                message = protocol.recv_msg(self.sock)
                if message is None:
                    raise WireError("coordinator vanished mid-artifact-fetch")
                if isinstance(message, Artifact) and message.name == name:
                    return message.data
                if isinstance(message, Shutdown):
                    raise WireError("coordinator shut down mid-artifact-fetch")
                # Anything else here is a protocol violation.
                raise WireError(
                    f"unexpected {type(message).__name__} while fetching "
                    f"artifact {name!r}"
                )
        finally:
            self.sock.settimeout(None)

    def close(self) -> None:
        self._stop.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass


def _serve(connection: _Connection, cache: ArtifactCache) -> str:
    """Message loop of one connection; returns "shutdown" or "lost"."""
    connection.start_heartbeats()
    while True:
        try:
            message = protocol.recv_msg(connection.sock)
        except (WireError, OSError):
            return "lost"
        if message is None:
            return "lost"
        if isinstance(message, Shutdown):
            return "shutdown"
        if isinstance(message, EndRun):
            cache.clear(message.run_id)
            continue
        if isinstance(message, Task):
            result = execute_task(message.payload, cache, connection.fetch_artifact)
            result.task_id = message.task_id
            try:
                connection.send(result)
            except (WireError, OSError):
                return "lost"
            continue
        # Unknown message: protocol drift; drop the connection loudly.
        print(
            f"[repro-worker {connection.worker_id}] unexpected "
            f"{type(message).__name__}; dropping connection",
            flush=True,
        )
        return "lost"


def run_worker(
    connect: str,
    worker_id: str | None = None,
    retry_seconds: float = 60.0,
    quiet: bool = False,
) -> int:
    """Run the worker daemon until shutdown; returns a process exit code.

    ``retry_seconds`` bounds how long the worker keeps dialing without a
    successful connection — both at startup (coordinator not up yet) and
    after losing an established coordinator (driver exited; a new one may
    start).  ``0`` means a single attempt.
    """
    host, port = protocol.parse_address(connect, variable="--connect")
    wid = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    cache = ArtifactCache()

    def log(text: str) -> None:
        if not quiet:
            print(f"[repro-worker {wid}] {text}", flush=True)

    window_start = time.monotonic()

    def window_exhausted(reason: str) -> bool:
        if time.monotonic() - window_start > retry_seconds:
            log(f"{reason} for {retry_seconds:.0f}s; exiting")
            return True
        time.sleep(RECONNECT_DELAY)
        return False

    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            if window_exhausted(f"no coordinator at {host}:{port}"):
                return 1
            continue

        connection = _Connection(sock, wid)
        try:
            # A peer that accepts TCP but never answers (wrong service on
            # the port) must not stall past the retry window: clamp the
            # handshake timeout to what is left of it.
            remaining = retry_seconds - (time.monotonic() - window_start)
            connection.handshake(
                timeout=min(HANDSHAKE_TIMEOUT, max(1.0, remaining + 1.0))
            )
        except (WireError, OSError) as exc:
            # A failed handshake (wrong service on the port, version skew)
            # burns the same retry window as a refused connect — only a
            # completed registration resets it.
            log(f"handshake failed: {exc}")
            connection.close()
            if window_exhausted(f"no usable coordinator at {host}:{port}"):
                return 1
            continue

        log(f"connected to coordinator {host}:{port}")
        window_start = time.monotonic()  # successful registration resets it
        outcome = _serve(connection, cache)
        connection.close()
        cache.clear()
        if outcome == "shutdown":
            log("shutdown requested by coordinator; exiting")
            return 0
        log("lost coordinator; retrying")
        window_start = time.monotonic()
