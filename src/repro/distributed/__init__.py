"""Distributed map-reduce backend: coordinator, workers, cluster engine.

The real multi-host counterpart of the simulated cluster (Fig. 10).  A
:class:`ClusterEngine` drives worker daemons (``repro worker --connect
HOST:PORT``) over a length-prefixed TCP protocol, implementing the exact
``run(job, inputs)`` contract of the local engine — indexing, querying and
index persistence run unchanged and bit-identically on a cluster.

Entry points:

* :class:`ClusterEngine` — the engine; also reachable as
  ``executor="cluster"`` through
  :func:`repro.mapreduce.engine.default_engine` and the
  ``REPRO_EXECUTOR`` / ``REPRO_CLUSTER`` environment variables.
* :func:`local_cluster` — test/CI harness spawning localhost workers.
* :func:`repro.distributed.worker.run_worker` — the daemon body behind
  ``repro worker``.
* :class:`FaultPlan` / :class:`FaultSpec` — deterministic fault injection
  (``local_cluster(fault_plan=...)`` or ``$REPRO_FAULT_PLAN``) for chaos
  testing the failure model documented in ``docs/ARCHITECTURE.md``.
"""

from ..utils.errors import ClusterUnavailableError
from .coordinator import (
    ClusterEngine,
    Coordinator,
    local_cluster,
    shared_coordinator,
    spawn_local_worker,
)
from .dataplane import ArtifactCache, ArtifactPlane
from .faults import FaultPlan, FaultSpec
from .protocol import WireError, parse_address
from .retry import Backoff
from .worker import run_worker

__all__ = [
    "ArtifactCache",
    "ArtifactPlane",
    "Backoff",
    "ClusterEngine",
    "ClusterUnavailableError",
    "Coordinator",
    "FaultPlan",
    "FaultSpec",
    "WireError",
    "local_cluster",
    "parse_address",
    "run_worker",
    "shared_coordinator",
    "spawn_local_worker",
]
