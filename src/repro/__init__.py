"""Data Polygamy: topology-based relationship mining for urban data sets.

A from-scratch reproduction of *Data Polygamy: The Many-Many Relationships
among Urban Spatio-Temporal Data Sets* (Chirigati, Doraiswamy, Damoulas,
Freire — SIGMOD 2016).

Quickstart::

    from repro import Corpus, Clause
    from repro.synth import nyc_urban_collection

    coll = nyc_urban_collection(seed=7)
    index = Corpus(coll.datasets, coll.city).build_index()
    result = index.query(["taxi"], clause=Clause(min_score=0.6))
    for rel in result.top(5):
        print(rel.describe())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every reproduced table and figure.
"""

from .core import (
    SIGNIFICANCE_MODES,
    Clause,
    Corpus,
    CorpusIndex,
    FeatureExtractor,
    FeatureSet,
    FunctionFeatures,
    QueryResult,
    RelationReport,
    RelationshipMeasures,
    RelationshipResult,
    ScalarFunction,
    SignificanceRequest,
    SignificanceResult,
    compute_join_tree,
    compute_split_tree,
    evaluate_features,
    relation,
    significance_batch,
    significance_test,
)
from .data import Dataset, DatasetSchema, FunctionSpec, aggregate
from .spatial import SpatialResolution
from .spatial.city import CityModel
from .temporal import TemporalResolution

__version__ = "1.0.0"

__all__ = [
    "Clause",
    "Corpus",
    "CorpusIndex",
    "FeatureExtractor",
    "FeatureSet",
    "FunctionFeatures",
    "QueryResult",
    "RelationReport",
    "RelationshipMeasures",
    "RelationshipResult",
    "ScalarFunction",
    "SIGNIFICANCE_MODES",
    "SignificanceRequest",
    "SignificanceResult",
    "compute_join_tree",
    "compute_split_tree",
    "evaluate_features",
    "relation",
    "significance_batch",
    "significance_test",
    "Dataset",
    "DatasetSchema",
    "FunctionSpec",
    "aggregate",
    "SpatialResolution",
    "CityModel",
    "TemporalResolution",
    "__version__",
]
