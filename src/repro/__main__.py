"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the zero-to-discovery path:

* ``simulate`` — generate the synthetic NYC Urban replica and write it to a
  catalog directory (CSV files + JSON metadata, §5.1's input contract).
* ``index`` — build the Data Polygamy index for a catalog once and persist
  it to disk (``--out idx/``), so later queries skip re-indexing.  Refuses
  to clobber an existing index unless ``--force`` is given.
* ``update`` — incrementally reconcile an existing index with a catalog:
  fingerprint the catalog, rebuild only the (data set, resolution)
  partitions whose inputs changed, splice in the rest untouched.
  ``--dry-run`` prints the keep/rebuild/add/drop plan without writing.
* ``query`` — run a relationship query against either a catalog
  (``--data``, index built on the fly) or a persisted index (``--index``)
  and print the significant relationships.
* ``demo`` — simulate, index and query in one go (small scale).
* ``worker`` — run one cluster worker daemon
  (``repro worker --connect HOST:PORT``); a driver started with
  ``--executor cluster`` coordinates every connected worker.
* ``stats`` — inspect a persisted index directory (disk usage per
  component) or a trace file written by ``--trace`` (embedded run reports
  plus a per-worker / per-phase time breakdown).

Observability (see ``docs/OBSERVABILITY.md``): ``repro --trace OUT.json
<command> ...`` (or ``$REPRO_TRACE=OUT.json``) records every engine,
scheduler and worker span of the command into a Chrome/Perfetto trace —
a ``.jsonl`` suffix selects the line-per-span format instead, with the
metrics snapshot in a ``.metrics.json`` sibling.  ``$REPRO_LOG_JSON=1``
switches the ``repro.*`` logger hierarchy to JSON-lines on stderr.

``index``, ``update``, ``query`` and ``demo`` accept ``--workers N`` and
``--executor {serial,thread,process,cluster}`` to fan indexing,
relationship evaluation and index I/O out through the map-reduce engine
(§5.4); ``thread`` overlaps the NumPy-heavy parts, ``process`` also
parallelizes the pure-Python merge-tree sweeps (payloads travel through
the shared-memory plane), and ``cluster`` dispatches to ``repro worker``
daemons over TCP (the coordinator binds ``$REPRO_CLUSTER``, default
``127.0.0.1:7077``; large arrays travel through the spool/socket artifact
plane).  Results are bit-identical to the serial default under a fixed
seed — including queries against a loaded index.  Flags left unset fall
back to ``$REPRO_EXECUTOR`` / ``$REPRO_WORKERS``.

``query`` and ``demo`` also accept ``--significance-mode
{exact,batched,adaptive}`` (default ``adaptive``): the fast modes batch
the Monte Carlo permutation tests across function pairs and, for
``adaptive``, stop each test as soon as its significance decision at α is
settled — same decisions as ``exact``, an order of magnitude faster (see
:mod:`repro.core.significance`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import obs
from .core.clause import Clause
from .core.corpus import Corpus, CorpusIndex
from .core.significance import SIGNIFICANCE_MODES
from .data.catalog import load_catalog, save_catalog
from .mapreduce.engine import ALL_EXECUTORS, default_engine
from .synth import nyc_urban_collection
from .temporal.resolution import TemporalResolution


def _cmd_simulate(args: argparse.Namespace) -> int:
    subset = tuple(args.datasets.split(",")) if args.datasets else None
    coll = nyc_urban_collection(
        seed=args.seed, n_days=args.days, scale=args.scale, subset=subset
    )
    path = save_catalog(args.out, coll.datasets, coll.city)
    total = sum(ds.n_records for ds in coll.datasets)
    print(f"wrote {len(coll.datasets)} data sets ({total:,} records) to {path.parent}")
    return 0


def _parse_temporal(spec: str) -> tuple[TemporalResolution, ...] | None:
    if not spec:
        return None
    return tuple(TemporalResolution(t.strip()) for t in spec.split(","))


def _cmd_index(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .persist import INDEX_MANIFEST, disk_usage

    # Resolve exactly as save_index will, so "~/idx" cannot slip past the
    # guard and then clobber $HOME/idx.
    out = Path(args.out).expanduser().resolve()
    if (out / INDEX_MANIFEST).exists() and not args.force:
        # Clobbering an index that took hours to build should never be the
        # silent default; the incremental path is almost always what's meant.
        print(
            f"error: {args.out} already contains an index; run "
            f"`repro update --data {args.data} --index {args.out}` to "
            "update it incrementally, or pass --force to rebuild from "
            "scratch",
            file=sys.stderr,
        )
        return 2
    engine = default_engine(args.workers, args.executor)
    datasets, city = load_catalog(args.data)
    print(f"loaded {len(datasets)} data sets from {args.data}")
    corpus = Corpus(datasets, city)
    index = corpus.build_index(temporal=_parse_temporal(args.temporal), engine=engine)
    print(
        f"indexed {index.stats.n_scalar_functions} scalar functions "
        f"in {index.stats.scalar_seconds + index.stats.feature_seconds:.1f}s "
        f"({engine.executor}, {engine.n_workers} worker(s))"
    )
    index.save(args.out, engine=engine)
    usage = disk_usage(args.out)
    print(
        f"saved index to {args.out}: {usage.total_bytes:,} bytes on disk "
        f"({usage.function_bytes:,} functions, {usage.feature_bytes:,} "
        f"packed features)"
    )
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from .core.corpus import scope_whitelists
    from .incremental import apply_update, plan_update
    from .persist import read_manifest
    from .spatial.resolution import SpatialResolution

    datasets, city = load_catalog(args.data)
    print(f"loaded {len(datasets)} data sets from {args.data}")
    corpus = Corpus(datasets, city)

    # Unless told otherwise, maintain the scope the index was built with —
    # recorded in the manifest since format v2, so "all viable" survives as
    # "all viable" (newly viable resolutions join, exactly like a fresh
    # build) and a `--temporal day` restriction survives as itself.  Older
    # manifests have no scope record; fall back to the resolutions present,
    # which is the best reconstruction available.
    manifest = read_manifest(args.index)
    temporal = _parse_temporal(args.temporal)
    if manifest.get("scope") is not None:
        spatial, recorded_temporal = scope_whitelists(manifest["scope"])
        if temporal is None:
            temporal = recorded_temporal
    else:
        if temporal is None:
            present = {
                TemporalResolution(r["temporal"]) for r in manifest["partitions"]
            }
            temporal = tuple(sorted(present, key=lambda t: t.rank)) or None
        spatial = (
            tuple(
                sorted(
                    {SpatialResolution(r["spatial"]) for r in manifest["partitions"]},
                    key=lambda s: s.rank,
                )
            )
            or None
        )
    spatial_label = ", ".join(s.value for s in spatial) if spatial else "all viable"
    temporal_label = ", ".join(t.value for t in temporal) if temporal else "all viable"
    print(
        f"maintaining resolutions: spatial={spatial_label}; "
        f"temporal={temporal_label}"
    )

    plan = plan_update(args.index, corpus, spatial=spatial, temporal=temporal)
    if args.dry_run:
        print(plan.describe())
        return 0
    counts = plan.counts
    print(
        f"update plan: {counts['keep']} keep, {counts['rebuild']} rebuild, "
        f"{counts['add']} add, {counts['drop']} drop"
    )
    engine = default_engine(args.workers, args.executor)
    report = apply_update(
        args.index,
        corpus,
        spatial=spatial,
        temporal=temporal,
        engine=engine,
        plan=plan,
    )
    print(report.describe())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = default_engine(args.workers, args.executor)
    temporal = _parse_temporal(args.temporal)
    if args.index:
        start = time.perf_counter()
        index = CorpusIndex.load(args.index, engine=engine)
        print(
            f"loaded index from {args.index} "
            f"({index.stats.n_scalar_functions} scalar functions) "
            f"in {time.perf_counter() - start:.2f}s — re-indexing skipped"
        )
        if temporal:
            # A persisted index only carries the resolutions it was built
            # with; silently evaluating nothing would look like a real
            # "no relationships" result.
            available = {
                t for ds in index.datasets.values() for (_s, t) in ds.functions
            }
            missing = [t.value for t in temporal if t not in available]
            if missing:
                have = ", ".join(sorted(t.value for t in available)) or "none"
                print(
                    f"error: resolution(s) {', '.join(missing)} are not "
                    f"materialized in this index (available: {have}); "
                    "re-run `repro index` with the resolutions you need",
                    file=sys.stderr,
                )
                return 2
    else:
        datasets, city = load_catalog(args.data)
        print(f"loaded {len(datasets)} data sets from {args.data}")
        corpus = Corpus(datasets, city)
        index = corpus.build_index(temporal=temporal, engine=engine)
        print(
            f"indexed {index.stats.n_scalar_functions} scalar functions "
            f"in {index.stats.scalar_seconds + index.stats.feature_seconds:.1f}s "
            f"({engine.executor}, {engine.n_workers} worker(s))"
        )
        temporal = None  # already applied while building the index
    clause = Clause(
        min_score=args.min_score,
        min_strength=args.min_strength,
        temporal=temporal,
    )
    d1 = args.find.split(",") if args.find else None
    result = index.query(
        d1,
        clause=clause,
        n_permutations=args.permutations,
        seed=args.seed,
        engine=engine,
        significance_mode=args.significance_mode,
    )
    print(
        f"evaluated {result.n_evaluated} relationships, "
        f"{result.n_significant} significant "
        f"({result.evaluations_per_minute:,.0f} evaluations/minute, "
        f"{result.significance_mode} significance)\n"
    )
    for rel in result.top(args.top):
        print(" ", rel.describe())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    engine = default_engine(args.workers, args.executor)
    print("Simulating 90 days of taxi + weather data...")
    coll = nyc_urban_collection(
        seed=args.seed, n_days=90, scale=0.5, subset=("taxi", "weather")
    )
    index = Corpus(coll.datasets, coll.city).build_index(
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
        engine=engine,
    )
    result = index.query(
        n_permutations=200,
        seed=args.seed,
        engine=engine,
        significance_mode=args.significance_mode,
    )
    print(f"{result.n_significant} significant relationships; strongest:")
    for rel in result.top(6):
        print(" ", rel.describe())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from pathlib import Path

    target = Path(args.path).expanduser()
    if target.is_dir():
        return _stats_index(target, as_json=args.json)
    if target.is_file():
        return _stats_trace(target, as_json=args.json)
    print(f"error: {args.path}: no such file or directory", file=sys.stderr)
    return 2


def _stats_index(directory, as_json: bool = False) -> int:
    from .persist import disk_usage, read_manifest

    manifest = read_manifest(directory)
    usage = disk_usage(directory)
    partitions = manifest["partitions"]
    per_dataset: dict[str, int] = {}
    for record in partitions:
        per_dataset[record["dataset"]] = per_dataset.get(record["dataset"], 0) + int(
            record.get("nbytes", 0)
        )
    if as_json:
        _print_json(
            {
                "type": "index",
                "path": str(directory),
                "datasets": list(manifest["datasets"]),
                "n_partitions": len(partitions),
                "total_bytes": usage.total_bytes,
                "function_bytes": usage.function_bytes,
                "feature_bytes": usage.feature_bytes,
                "per_dataset_bytes": {
                    name: per_dataset[name] for name in sorted(per_dataset)
                },
            }
        )
        return 0
    print(f"index at {directory}")
    print(
        f"  data sets:  {len(manifest['datasets'])} "
        f"({', '.join(manifest['datasets'])})"
    )
    print(f"  partitions: {len(partitions)}")
    print(
        f"  on disk:    {usage.total_bytes:,} bytes "
        f"({usage.function_bytes:,} functions, {usage.feature_bytes:,} "
        f"packed features)"
    )
    for name in sorted(per_dataset):
        print(f"    {name}: {per_dataset[name]:,} bytes")
    return 0


def _stats_trace(path, as_json: bool = False) -> int:
    import json

    text = path.read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        events = document["traceEvents"]
        extra = document.get("repro", {})
        breakdown = _breakdown(_chrome_rows(events))
        if as_json:
            _print_json(
                {
                    "type": "trace",
                    "format": "chrome",
                    "name": extra.get("name", "?"),
                    "n_spans": sum(1 for e in events if e.get("ph") == "X"),
                    "coverage": extra.get("coverage", 0.0),
                    "reports": list(extra.get("reports", [])),
                    "breakdown": breakdown,
                }
            )
            return 0
        print(
            f"trace {extra.get('name', '?')!r} "
            f"({sum(1 for e in events if e.get('ph') == 'X')} spans, "
            f"coverage {extra.get('coverage', 0.0):.0%})"
        )
        for payload in extra.get("reports", []):
            print()
            print(obs.RunReport.from_json(payload).render())
        _render_breakdown(breakdown)
        return 0
    # JSONL: one header line, then one span object per line.
    lines = [json.loads(line) for line in text.splitlines() if line.strip()]
    if not lines or "trace_id" not in lines[0]:
        print(f"error: {path} is neither an index nor a trace file", file=sys.stderr)
        return 2
    header, spans = lines[0], lines[1:]
    breakdown = _breakdown(
        (s.get("track", ""), s["name"], float(s["duration"])) for s in spans
    )
    if as_json:
        _print_json(
            {
                "type": "trace",
                "format": "jsonl",
                "name": header.get("name", "?"),
                "n_spans": len(spans),
                "breakdown": breakdown,
            }
        )
        return 0
    print(f"trace {header.get('name', '?')!r} ({len(spans)} spans)")
    _render_breakdown(breakdown)
    return 0


def _print_json(payload: dict) -> None:
    import json

    print(json.dumps(payload, indent=1, sort_keys=True))


def _chrome_rows(events):
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    for e in events:
        if e.get("ph") == "X":
            yield names.get(e["tid"], str(e["tid"])), e["name"], e["dur"] / 1e6


def _breakdown(rows) -> list[dict]:
    """Per-track (worker/thread) and per-span-name time totals.

    One list of dict rows feeds both the table renderer and
    ``stats --json`` — same data, two encodings.
    """
    totals: dict[tuple[str, str], list[float]] = {}
    for track, name, seconds in rows:
        entry = totals.setdefault((track, name), [0, 0.0])
        entry[0] += 1
        entry[1] += seconds
    return [
        {"track": track, "span": name, "count": count, "seconds": seconds}
        for (track, name), (count, seconds) in sorted(
            totals.items(), key=lambda item: (item[0][0], -item[1][1])
        )
    ]


def _render_breakdown(entries: list[dict]) -> None:
    if not entries:
        return
    print()
    print("time by track and span:")
    current: object = object()
    for entry in entries:
        if entry["track"] != current:
            print(f"  {entry['track'] or '(main)'}:")
            current = entry["track"]
        print(
            f"    {entry['span']:<24} {entry['count']:>5} span(s) "
            f"{entry['seconds'] * 1e3:>10.1f} ms"
        )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data Polygamy: relationship mining for urban data sets",
    )
    parser.add_argument(
        "--trace",
        default="",
        metavar="OUT",
        help="record a trace of the command: a .json suffix writes "
        "Chrome/Perfetto trace-event JSON (open in about:tracing or "
        "ui.perfetto.dev), anything else one JSON span per line plus a "
        "metrics sibling (default: $REPRO_TRACE; ignored by `worker`, "
        "whose spans ship to its coordinator instead)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live metrics over HTTP while the command runs: "
        "GET /metrics is OpenMetrics text, GET /healthz a JSON health "
        "summary; 0 picks a free port (default: $REPRO_METRICS_PORT; "
        "ignored by `worker`, whose metrics ship to its coordinator "
        "on each heartbeat instead)",
    )
    parser.add_argument(
        "--profile",
        default="",
        metavar="OUT",
        help="sample all thread stacks while the command runs and write "
        "collapsed-stack output (flamegraph.pl / speedscope format) to "
        "OUT; cluster workers' samples fold in under a worker:<id> "
        "prefix (default: $REPRO_PROFILE; ignored by `worker`)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic catalog")
    sim.add_argument("--out", required=True, help="output catalog directory")
    sim.add_argument("--days", type=int, default=120)
    sim.add_argument("--scale", type=float, default=0.5)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument(
        "--datasets",
        default="",
        help="comma-separated subset of data sets (default: all nine)",
    )
    sim.set_defaults(func=_cmd_simulate)

    idx = sub.add_parser("index", help="build an index once and save it to disk")
    idx.add_argument("--data", required=True, help="catalog directory")
    idx.add_argument("--out", required=True, help="output index directory")
    idx.add_argument("--temporal", default="", help="e.g. 'day,week'")
    idx.add_argument(
        "--force",
        action="store_true",
        help="rebuild from scratch even if --out already holds an index "
        "(default: refuse and suggest `repro update`)",
    )
    _add_parallel_flags(idx)
    idx.set_defaults(func=_cmd_index)

    upd = sub.add_parser(
        "update",
        help="incrementally reconcile an existing index with a catalog "
        "(rebuild only the partitions whose inputs changed)",
    )
    upd.add_argument("--data", required=True, help="catalog directory")
    upd.add_argument("--index", required=True, help="existing index directory")
    upd.add_argument(
        "--dry-run",
        action="store_true",
        help="print the keep/rebuild/add/drop plan and exit without writing",
    )
    upd.add_argument(
        "--temporal",
        default="",
        help="temporal resolutions to maintain, e.g. 'day,week' "
        "(default: the resolutions already in the index)",
    )
    _add_parallel_flags(upd)
    upd.set_defaults(func=_cmd_update)

    qry = sub.add_parser("query", help="run a query (catalog or saved index)")
    source = qry.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--data", default="", help="catalog directory (index built on the fly)"
    )
    source.add_argument(
        "--index", default="", help="persisted index directory (skips re-indexing)"
    )
    qry.add_argument("--find", default="", help="comma-separated D1 data sets")
    qry.add_argument("--min-score", type=float, default=0.0)
    qry.add_argument("--min-strength", type=float, default=0.0)
    qry.add_argument("--permutations", type=int, default=1000)
    qry.add_argument("--temporal", default="", help="e.g. 'day,week'")
    qry.add_argument("--top", type=int, default=15)
    qry.add_argument("--seed", type=int, default=0)
    _add_significance_mode_flag(qry)
    _add_parallel_flags(qry)
    qry.set_defaults(func=_cmd_query)

    demo = sub.add_parser("demo", help="end-to-end demo on synthetic data")
    demo.add_argument("--seed", type=int, default=7)
    _add_significance_mode_flag(demo)
    _add_parallel_flags(demo)
    demo.set_defaults(func=_cmd_demo)

    wrk = sub.add_parser(
        "worker",
        help="run one cluster worker daemon (dial a coordinator and "
        "execute map/reduce tasks until shut down)",
    )
    wrk.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (a driver run with --executor cluster, "
        "binding $REPRO_CLUSTER)",
    )
    wrk.add_argument(
        "--id",
        default=None,
        help="worker id shown in coordinator errors (default: host-pid)",
    )
    wrk.add_argument(
        "--retry",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="keep dialing this long (in seconds) without a successful "
        "connection before giving up (default: 60)",
    )
    wrk.add_argument(
        "--redial-base",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="first redial backoff ceiling in seconds; each failed dial "
        "doubles it and the actual sleep is drawn uniformly from "
        "[0, ceiling] — full jitter, so restarting workers do not "
        "stampede the coordinator (default: 0.1)",
    )
    wrk.add_argument(
        "--redial-cap",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="upper bound in seconds on the redial backoff ceiling "
        "(default: 5)",
    )
    wrk.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between heartbeats to the coordinator; each one "
        "piggybacks a metrics delta, so this is also the metrics "
        "shipping cadence (default: 1.0, must be > 0 and below the "
        "coordinator's heartbeat timeout)",
    )
    wrk.add_argument("--quiet", action="store_true", help="suppress status lines")
    wrk.set_defaults(func=_cmd_worker)

    st = sub.add_parser(
        "stats",
        help="inspect a saved index directory (disk usage) or a --trace "
        "output file (run reports, per-worker/per-phase breakdown)",
    )
    st.add_argument("path", help="index directory or trace file")
    st.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: one JSON document instead of tables",
    )
    st.set_defaults(func=_cmd_stats)

    top = sub.add_parser(
        "top",
        help="live terminal view of a running driver's metrics exporter "
        "(per-worker task/steal/queue table plus query latency quantiles)",
    )
    top.add_argument(
        "--url",
        default="",
        help="exporter base URL or /metrics URL "
        "(default: http://127.0.0.1:<port> from --port)",
    )
    top.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="exporter port on localhost (default: $REPRO_METRICS_PORT)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between refreshes (default: 1.0)",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="exit after N refreshes (default: run until the exporter goes "
        "away or Ctrl-C)",
    )
    top.set_defaults(func=_cmd_top)
    return parser


def _cmd_worker(args: argparse.Namespace) -> int:
    from .distributed.worker import run_worker

    return run_worker(
        args.connect,
        worker_id=args.id,
        retry_seconds=args.retry,
        quiet=args.quiet,
        redial_base=args.redial_base,
        redial_cap=args.redial_cap,
        heartbeat_interval=args.heartbeat_interval,
    )


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    url = args.url
    if not url:
        port = args.port
        if port is None:
            raw = os.environ.get(obs.ENV_METRICS_PORT, "").strip()
            if not raw:
                print(
                    "error: repro top needs --url or --port "
                    f"(or ${obs.ENV_METRICS_PORT})",
                    file=sys.stderr,
                )
                return 2
            try:
                port = int(raw)
            except ValueError:
                print(
                    f"error: ${obs.ENV_METRICS_PORT} must be an integer "
                    f"port, got {raw!r}",
                    file=sys.stderr,
                )
                return 2
        url = f"http://127.0.0.1:{port}"
    return run_top(url, interval=args.interval, frames=args.frames)


def _add_significance_mode_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--significance-mode",
        choices=SIGNIFICANCE_MODES,
        default="adaptive",
        help="permutation-test evaluation: 'adaptive' (default) batches "
        "pairs and stops each test once its decision at alpha is settled, "
        "'batched' runs all permutations vectorized (bit-identical "
        "p-values), 'exact' is the per-pair reference path",
    )


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="map-reduce worker count (default: $REPRO_WORKERS, else 1); "
        "for --executor cluster: how many connected workers to wait for",
    )
    parser.add_argument(
        "--executor",
        choices=ALL_EXECUTORS,
        default=None,
        help="map-reduce executor: 'thread' overlaps NumPy work, 'process' "
        "also parallelizes pure-Python merge-tree sweeps, 'cluster' "
        "dispatches to `repro worker` daemons over TCP "
        "(default: $REPRO_EXECUTOR, else serial)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if os.environ.get(obs.ENV_LOG_JSON):
        obs.configure_logging()
    if args.command in ("worker", "top"):
        # Workers never act on driver-side observability flags: their spans,
        # metrics deltas, and profile samples travel back to the coordinator
        # over the wire (protocol v2.2/v2.3), so a cluster worker spawned
        # with $REPRO_TRACE / $REPRO_PROFILE / $REPRO_METRICS_PORT inherited
        # from the driver must not race it for the same output path or
        # listen port.  `top` is a pure reader of another process's
        # exporter.
        return args.func(args)

    trace_out = args.trace or os.environ.get(obs.ENV_TRACE, "")
    profile_out = args.profile or os.environ.get(obs.ENV_PROFILE, "")
    metrics_port = args.metrics_port
    if metrics_port is None:
        raw = os.environ.get(obs.ENV_METRICS_PORT, "").strip()
        if raw:
            try:
                metrics_port = int(raw)
            except ValueError:
                parser.error(
                    f"${obs.ENV_METRICS_PORT} must be an integer port, "
                    f"got {raw!r}"
                )
    if not trace_out and not profile_out and metrics_port is None:
        return args.func(args)

    from pathlib import Path

    exporter = obs.start_exporter(metrics_port) if metrics_port is not None else None
    if exporter is not None:
        print(f"metrics exporter listening at {exporter.url}/metrics (and /healthz)")
    if profile_out:
        obs.start_profile()
    if trace_out:
        obs.start_trace(args.command)
    try:
        with obs.span(f"cli.{args.command}"):
            code = args.func(args)
    finally:
        if trace_out:
            trace = obs.end_trace()
            if trace is not None:
                out = Path(trace_out).expanduser()
                if out.suffix == ".json":
                    written = trace.to_chrome(out, metrics=obs.metrics_snapshot())
                else:
                    written = trace.to_jsonl(out)
                    metrics = out.with_suffix(".metrics.json")
                    import json

                    metrics.write_text(
                        json.dumps(obs.metrics_snapshot(), indent=1),
                        encoding="utf-8",
                    )
                print(
                    f"trace written to {written} ({len(trace.spans)} span(s), "
                    f"{trace.coverage():.0%} of wall time covered)"
                )
        if profile_out:
            profiler = obs.end_profile()
            if profiler is not None:
                out = Path(profile_out).expanduser()
                profiler.write(out)
                print(
                    f"profile written to {out} ({profiler.samples} sample(s), "
                    f"{len(profiler.counts())} distinct stack(s))"
                )
        if exporter is not None:
            obs.stop_exporter()
    return code


if __name__ == "__main__":
    sys.exit(main())
