"""Fixed-length bit vectors backed by ``numpy.uint64`` words.

Appendix C of the paper represents each feature set as a bit vector over the
vertices of the spatio-temporal domain graph so that feature-set intersections
(the inner loop of relationship evaluation) become word-wise ``AND`` plus a
popcount.  This module provides that representation.

The vector length is fixed at construction; all binary operations require both
operands to have the same length.  Bits beyond ``length`` inside the final
word are guaranteed to be zero at all times, so popcounts never over-count.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from .errors import DataError

_WORD_BITS = 64


class BitVector:
    """A fixed-length sequence of bits with fast set-algebra operations.

    Parameters
    ----------
    length:
        Number of addressable bits.  May be zero.
    words:
        Optional pre-built ``uint64`` word array.  Used internally; callers
        normally use :meth:`from_indices` / :meth:`from_bools` or start from
        an empty vector and call :meth:`set`.
    """

    __slots__ = ("_length", "_words")

    def __init__(self, length: int, words: np.ndarray | None = None) -> None:
        if length < 0:
            raise DataError(f"BitVector length must be >= 0, got {length}")
        self._length = int(length)
        n_words = (self._length + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self._words = np.zeros(n_words, dtype=np.uint64)
        else:
            if words.shape != (n_words,):
                raise DataError(
                    f"word array has shape {words.shape}, expected ({n_words},)"
                )
            self._words = words.astype(np.uint64, copy=False)
            self._mask_tail()

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector of ``length`` bits with the given ``indices`` set."""
        vec = cls(length)
        idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size == 0:
            return vec
        if idx.min() < 0 or idx.max() >= length:
            raise DataError("bit index out of range")
        np.bitwise_or.at(
            vec._words,
            idx // _WORD_BITS,
            np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64),
        )
        return vec

    @classmethod
    def from_bools(cls, flags: np.ndarray) -> "BitVector":
        """Build a vector from a boolean array (bit i set iff ``flags[i]``)."""
        flags = np.asarray(flags, dtype=bool).ravel()
        vec = cls(flags.size)
        if flags.size == 0:
            return vec
        padded = np.zeros(vec._words.size * _WORD_BITS, dtype=bool)
        padded[: flags.size] = flags
        packed = np.packbits(
            padded.reshape(-1, _WORD_BITS)[:, ::-1], axis=1, bitorder="big"
        )
        vec._words = packed.view(np.uint64).byteswap().ravel()
        vec._mask_tail()
        return vec

    @classmethod
    def from_words(cls, length: int, words: np.ndarray) -> "BitVector":
        """Rebuild a vector from its backing word array (see :attr:`words`).

        This is the deserialization counterpart of :attr:`words`: the word
        count must match ``ceil(length / 64)`` exactly.  The input is copied,
        so later mutation of ``words`` cannot corrupt the vector (and the
        tail-masking never writes into the caller's buffer).
        """
        return cls(length, np.asarray(words, dtype=np.uint64).ravel().copy())

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        """Build a vector with every bit set."""
        vec = cls(length)
        vec._words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        vec._mask_tail()
        return vec

    # -- internal ----------------------------------------------------------

    def _mask_tail(self) -> None:
        tail = self._length % _WORD_BITS
        if tail and self._words.size:
            mask = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
            self._words[-1] &= mask

    def _check_same_length(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise DataError(
                f"bit vector length mismatch: {self._length} vs {other._length}"
            )

    # -- element access ----------------------------------------------------

    @property
    def length(self) -> int:
        """Number of addressable bits."""
        return self._length

    @property
    def words(self) -> np.ndarray:
        """The backing ``uint64`` word array (the Appendix C storage form).

        Returned as a copy so callers (serializers) cannot corrupt the
        tail-bit invariant; pair with :meth:`from_words` to round-trip.
        """
        return self._words.copy()

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        if not 0 <= index < self._length:
            raise DataError(f"bit index {index} out of range [0, {self._length})")
        self._words[index // _WORD_BITS] |= np.uint64(1) << np.uint64(
            index % _WORD_BITS
        )

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        if not 0 <= index < self._length:
            raise DataError(f"bit index {index} out of range [0, {self._length})")
        self._words[index // _WORD_BITS] &= ~(
            np.uint64(1) << np.uint64(index % _WORD_BITS)
        )

    def __getitem__(self, index: int) -> bool:
        if not 0 <= index < self._length:
            raise DataError(f"bit index {index} out of range [0, {self._length})")
        word = self._words[index // _WORD_BITS]
        return bool((word >> np.uint64(index % _WORD_BITS)) & np.uint64(1))

    def __len__(self) -> int:
        return self._length

    # -- set algebra ---------------------------------------------------------

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self._length, self._words & other._words)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self._length, self._words | other._words)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self._length, self._words ^ other._words)

    def __invert__(self) -> "BitVector":
        inverted = BitVector(self._length, ~self._words)
        inverted._mask_tail()
        return inverted

    def difference(self, other: "BitVector") -> "BitVector":
        """Bits set in ``self`` but not in ``other``."""
        self._check_same_length(other)
        return BitVector(self._length, self._words & ~other._words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash((self._length, self._words.tobytes()))

    # -- counting ------------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (population count)."""
        if self._words.size == 0:
            return 0
        return int(np.bitwise_count(self._words).sum())

    def intersection_count(self, other: "BitVector") -> int:
        """``(self & other).count()`` without materializing the intersection."""
        self._check_same_length(other)
        if self._words.size == 0:
            return 0
        return int(np.bitwise_count(self._words & other._words).sum())

    def any(self) -> bool:
        """True iff at least one bit is set."""
        return bool(np.any(self._words))

    # -- conversions ---------------------------------------------------------

    def to_indices(self) -> np.ndarray:
        """Sorted array of the indices of all set bits."""
        return np.flatnonzero(self.to_bools())

    def to_bools(self) -> np.ndarray:
        """Boolean array of length :attr:`length` (bit i -> flags[i])."""
        if self._length == 0:
            return np.zeros(0, dtype=bool)
        as_bytes = self._words.byteswap().view(np.uint8)
        bits = np.unpackbits(as_bytes, bitorder="big").reshape(-1, _WORD_BITS)[:, ::-1]
        return bits.ravel()[: self._length].astype(bool)

    def permuted(self, mapping: np.ndarray) -> "BitVector":
        """Return the vector with bit ``i`` moved to position ``mapping[i]``.

        ``mapping`` must be a permutation of ``range(length)``.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self._length,):
            raise DataError("permutation length mismatch")
        flags = self.to_bools()
        out = np.zeros_like(flags)
        out[mapping] = flags
        return BitVector.from_bools(out)

    def copy(self) -> "BitVector":
        """Deep copy."""
        return BitVector(self._length, self._words.copy())

    def __iter__(self) -> Iterator[bool]:
        return iter(self.to_bools().tolist())

    def __repr__(self) -> str:
        return f"BitVector(length={self._length}, set={self.count()})"

    def nbytes(self) -> int:
        """Storage footprint of the word array in bytes."""
        return int(self._words.nbytes)
