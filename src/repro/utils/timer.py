"""Wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating stopwatch.

    Use as a context manager; each entry/exit adds to :attr:`elapsed` and
    increments :attr:`laps`, so a single timer can aggregate many timed
    sections.
    """

    elapsed: float = 0.0
    laps: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._start
        self.laps += 1

    @property
    def mean(self) -> float:
        """Mean seconds per lap (0.0 before the first lap)."""
        return self.elapsed / self.laps if self.laps else 0.0


@contextmanager
def timed(sink: dict, key: str):
    """Record the wall time of the ``with`` body into ``sink[key]`` (added)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink[key] = sink.get(key, 0.0) + (time.perf_counter() - start)
