"""Shared utilities: bit vectors, RNG plumbing, timers, and errors."""

from .bitvector import BitVector
from .errors import (
    ClusterUnavailableError,
    DataError,
    MapReduceError,
    QueryError,
    ReproError,
    ResolutionError,
    SchemaError,
    TopologyError,
)
from .rng import RngLike, ensure_rng, spawn
from .timer import Timer, timed

__all__ = [
    "BitVector",
    "ClusterUnavailableError",
    "DataError",
    "MapReduceError",
    "QueryError",
    "ReproError",
    "ResolutionError",
    "SchemaError",
    "TopologyError",
    "RngLike",
    "ensure_rng",
    "spawn",
    "Timer",
    "timed",
]
