"""Seeded random-number helpers.

All stochastic components of the library (synthetic data generation, Monte
Carlo permutation tests, noise injection) accept either an integer seed or a
``numpy.random.Generator``.  Routing everything through :func:`ensure_rng`
keeps experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` creates a fresh non-deterministic generator; an ``int`` seeds a
    new PCG64 generator; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are statistically independent streams, suitable for parallel
    tasks that must not share state.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
