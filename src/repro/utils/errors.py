"""Exception hierarchy for the Data Polygamy reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A data set schema is inconsistent (duplicate names, bad roles, ...)."""


class DataError(ReproError):
    """Input data violates an invariant (shape mismatch, empty data set, ...)."""


class ResolutionError(ReproError):
    """A spatio-temporal resolution conversion is undefined or incompatible."""


class TopologyError(ReproError):
    """A merge-tree / level-set operation was asked of an invalid function."""


class QueryError(ReproError):
    """A relationship query is malformed (unknown data set, bad clause, ...)."""


class MapReduceError(ReproError):
    """A map-reduce job failed or was configured inconsistently."""


class ClusterUnavailableError(MapReduceError):
    """The cluster cannot run the job at all — no workers registered in
    time, or every worker was lost mid-run.

    Distinct from a job bug (which fails the run on any executor) and from
    a poison task (which would fail again elsewhere): this error means a
    *healthy* local executor could still complete the work, so it is the
    one failure class ``ClusterEngine(fallback=...)`` downgrades on."""


class PersistError(ReproError):
    """An on-disk index is missing, corrupt, or from an unsupported format."""
