"""Temporal resolutions and the conversion DAG of Figure 6 (right).

Timestamps throughout the library are Unix epoch seconds (``int64``).  A
*temporal resolution* buckets timestamps into consecutive integer time-step
indices; the scalar-function machinery then works purely with those indices.

The paper's DAG is::

    second -> hour -> day -> week
                       `---> month

Weeks do not nest inside months, so there is no ``week -> month`` edge: the
two are incompatible and only meet again at coarser aggregation of the *data*
(not of already-bucketed series).  ``second`` is a native input resolution; the
resolutions used for relationship evaluation are hour, day, week and month,
mirroring the solid lines in Figure 6.
"""

from __future__ import annotations

from enum import Enum
from functools import total_ordering

import numpy as np

_SECONDS_PER = {
    "second": 1,
    "hour": 3600,
    "day": 86400,
    "week": 604800,
}


@total_ordering
class TemporalResolution(Enum):
    """Granularity of the time axis, orderable from finest to coarsest."""

    SECOND = "second"
    HOUR = "hour"
    DAY = "day"
    WEEK = "week"
    MONTH = "month"

    @property
    def rank(self) -> int:
        """Position in the finest-to-coarsest order (second=0 ... month=4)."""
        return _RANK[self]

    def __lt__(self, other: "TemporalResolution") -> bool:
        if not isinstance(other, TemporalResolution):
            return NotImplemented
        return self.rank < other.rank

    # -- bucketing ---------------------------------------------------------

    def bucket(self, timestamps: np.ndarray) -> np.ndarray:
        """Map epoch-second timestamps to integer time-step indices.

        Indices are anchored at the Unix epoch (bucket 0 contains 1970-01-01
        00:00:00 UTC), so the same timestamp always lands in the same bucket
        regardless of the data set it came from.
        """
        ts = np.asarray(timestamps, dtype=np.int64)
        if self is TemporalResolution.MONTH:
            months = ts.astype("datetime64[s]").astype("datetime64[M]")
            return months.astype(np.int64)
        return ts // _SECONDS_PER[self.value]

    def bucket_start(self, indices: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`bucket`: epoch seconds of each bucket's start."""
        idx = np.asarray(indices, dtype=np.int64)
        if self is TemporalResolution.MONTH:
            months = idx.astype("datetime64[M]")
            return months.astype("datetime64[s]").astype(np.int64)
        return idx * _SECONDS_PER[self.value]

    def seconds(self) -> int:
        """Nominal bucket width in seconds (months use 30 days)."""
        if self is TemporalResolution.MONTH:
            return 30 * 86400
        return _SECONDS_PER[self.value]

    # -- DAG ---------------------------------------------------------------

    def convertible_to(self, other: "TemporalResolution") -> bool:
        """True iff data at this resolution can be re-bucketed at ``other``.

        Follows the paper's DAG: every resolution converts to itself, finer
        resolutions convert to coarser ones, *except* week -> month (and
        month -> week), which do not nest.
        """
        if self is other:
            return True
        if self.rank > other.rank:
            return False
        if self is TemporalResolution.WEEK and other is TemporalResolution.MONTH:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TemporalResolution.{self.name}"


_RANK = {
    TemporalResolution.SECOND: 0,
    TemporalResolution.HOUR: 1,
    TemporalResolution.DAY: 2,
    TemporalResolution.WEEK: 3,
    TemporalResolution.MONTH: 4,
}

#: Resolutions at which relationships are evaluated (Fig. 6 solid lines).
EVALUATION_TEMPORAL = (
    TemporalResolution.HOUR,
    TemporalResolution.DAY,
    TemporalResolution.WEEK,
    TemporalResolution.MONTH,
)


def viable_temporal_resolutions(
    native: TemporalResolution,
) -> tuple[TemporalResolution, ...]:
    """Evaluation resolutions reachable from a data set's native resolution."""
    return tuple(r for r in EVALUATION_TEMPORAL if native.convertible_to(r))


def common_temporal_resolutions(
    a: TemporalResolution, b: TemporalResolution
) -> tuple[TemporalResolution, ...]:
    """Evaluation resolutions both ``a`` and ``b`` convert to, finest first.

    This is where two functions of different native resolutions meet: e.g.
    hour vs. day -> (day, week, month).  Incompatible pairs (week vs. month)
    yield an empty tuple; the relationship operator then skips the pair.
    """
    return tuple(
        r
        for r in EVALUATION_TEMPORAL
        if a.convertible_to(r) and b.convertible_to(r)
    )
