"""Seasonal intervals for threshold computation (paper §3.3, §5.2).

Feature thresholds must adapt to the time of year: zero snow depth is normal
in July and an event in January.  The paper divides the time range of a
function into intervals and computes thresholds per interval:

* hourly functions  -> monthly intervals,
* daily functions   -> quarter-yearly intervals,
* weekly & monthly functions -> a single global interval.

This module maps a contiguous range of time-step indices at a given temporal
resolution onto those interval labels.
"""

from __future__ import annotations

import numpy as np

from .resolution import TemporalResolution


def seasonal_interval_ids(
    resolution: TemporalResolution, step_indices: np.ndarray
) -> np.ndarray:
    """Seasonal-interval label for each time-step index.

    Parameters
    ----------
    resolution:
        Temporal resolution of the time steps.
    step_indices:
        Integer bucket indices as produced by
        :meth:`TemporalResolution.bucket`.

    Returns
    -------
    numpy.ndarray
        ``int64`` labels; steps sharing a label share feature thresholds.
        Labels are arbitrary but consistent (month index for hourly data,
        quarter index for daily data, all-zero otherwise).
    """
    steps = np.asarray(step_indices, dtype=np.int64)
    if resolution is TemporalResolution.HOUR:
        months = (
            TemporalResolution.HOUR.bucket_start(steps)
            .astype("datetime64[s]")
            .astype("datetime64[M]")
            .astype(np.int64)
        )
        return months
    if resolution is TemporalResolution.DAY:
        months = (
            TemporalResolution.DAY.bucket_start(steps)
            .astype("datetime64[s]")
            .astype("datetime64[M]")
            .astype(np.int64)
        )
        return months // 3
    return np.zeros(steps.shape, dtype=np.int64)


def interval_slices(labels: np.ndarray) -> list[np.ndarray]:
    """Group positions of a label array into per-interval index arrays.

    The input is assumed ordered by time (labels non-decreasing for calendar
    intervals); the output preserves first-appearance order of labels.
    """
    labels = np.asarray(labels, dtype=np.int64)
    order: list[np.int64] = []
    seen: set[int] = set()
    for lab in labels:
        key = int(lab)
        if key not in seen:
            seen.add(key)
            order.append(lab)
    return [np.flatnonzero(labels == lab) for lab in order]
