"""Temporal substrate: resolutions, bucketing, and seasonal intervals."""

from .intervals import interval_slices, seasonal_interval_ids
from .resolution import (
    EVALUATION_TEMPORAL,
    TemporalResolution,
    common_temporal_resolutions,
    viable_temporal_resolutions,
)

__all__ = [
    "TemporalResolution",
    "EVALUATION_TEMPORAL",
    "common_temporal_resolutions",
    "viable_temporal_resolutions",
    "seasonal_interval_ids",
    "interval_slices",
]
