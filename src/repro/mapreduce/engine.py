"""Local map-reduce engine (the Hadoop substitute of §5.4 / Appendix C).

Executes :class:`~repro.mapreduce.job.MapReduceJob` instances in process.
Two executors are provided:

* ``"serial"`` — tasks run one after another (deterministic; per-task wall
  times are recorded so the simulated-cluster scheduler can replay them).
* ``"thread"`` — map and reduce tasks run on a thread pool.  The framework's
  heavy lifting happens inside NumPy (which releases the GIL), so threads
  give real overlap without pickling overheads.

The shuffle groups intermediate pairs by key with a plain dictionary —
the in-process analogue of Hadoop's sort/partition phase.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Hashable, Iterable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..utils.errors import MapReduceError
from .job import JobStats, MapReduceJob

_EXECUTORS = ("serial", "thread")


class LocalEngine:
    """Runs map-reduce jobs in process.

    Parameters
    ----------
    n_workers:
        Thread-pool width for the ``"thread"`` executor (ignored by
        ``"serial"``).
    executor:
        ``"serial"`` (default) or ``"thread"``.
    """

    def __init__(self, n_workers: int = 1, executor: str = "serial") -> None:
        if executor not in _EXECUTORS:
            raise MapReduceError(f"unknown executor {executor!r}")
        if n_workers < 1:
            raise MapReduceError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.executor = executor

    def run(
        self, job: MapReduceJob, inputs: Iterable[tuple[Any, Any]]
    ) -> tuple[list[tuple[Any, Any]], JobStats]:
        """Execute ``job`` over ``inputs``; returns (outputs, stats)."""
        stats = JobStats()

        # -- map phase -------------------------------------------------------
        input_list = list(inputs)
        if self.executor == "thread" and self.n_workers > 1:
            map_results = self._run_tasks(
                [(job.map, key, value) for key, value in input_list],
                stats.map_task_seconds,
            )
        else:
            map_results = []
            for key, value in input_list:
                start = time.perf_counter()
                emitted = list(job.map(key, value))
                stats.map_task_seconds.append(time.perf_counter() - start)
                map_results.append(emitted)

        # -- shuffle -----------------------------------------------------------
        start = time.perf_counter()
        groups: dict[Hashable, list[Any]] = defaultdict(list)
        for emitted in map_results:
            for k, v in emitted:
                groups[k].append(v)
        stats.shuffle_seconds = time.perf_counter() - start

        # -- reduce phase ------------------------------------------------------
        items = list(groups.items())
        if self.executor == "thread" and self.n_workers > 1:
            reduce_results = self._run_tasks(
                [(job.reduce, k, vs) for k, vs in items],
                stats.reduce_task_seconds,
            )
        else:
            reduce_results = []
            for k, vs in items:
                start = time.perf_counter()
                emitted = list(job.reduce(k, vs))
                stats.reduce_task_seconds.append(time.perf_counter() - start)
                reduce_results.append(emitted)

        outputs = [pair for emitted in reduce_results for pair in emitted]
        stats.n_outputs = len(outputs)
        return outputs, stats

    def _run_tasks(
        self,
        tasks: list[tuple[Any, Any, Any]],
        timings: list[float],
    ) -> list[list[tuple[Any, Any]]]:
        """Run (fn, a, b) tasks on the thread pool, recording per-task times."""

        def timed_call(task: tuple[Any, Any, Any]) -> tuple[list, float]:
            fn, a, b = task
            start = time.perf_counter()
            out = list(fn(a, b))
            return out, time.perf_counter() - start

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            results = list(pool.map(timed_call, tasks))
        outputs = []
        for out, seconds in results:
            outputs.append(out)
            timings.append(seconds)
        return outputs
