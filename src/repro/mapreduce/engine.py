"""Local map-reduce engine (the Hadoop substitute of §5.4 / Appendix C).

Executes :class:`~repro.mapreduce.job.MapReduceJob` instances in process.
Two executors are provided:

* ``"serial"`` — tasks run one after another (deterministic; per-task wall
  times are recorded so the simulated-cluster scheduler can replay them).
* ``"thread"`` — map and reduce tasks run on a thread pool.  The framework's
  heavy lifting happens inside NumPy (which releases the GIL), so threads
  give real overlap without pickling overheads.

Determinism.  Every intermediate pair is tagged with its provenance
``(input_index, emit_index)`` before the shuffle; the shuffle sorts by that
tag, so grouped values (and therefore reduce outputs) are identical no
matter how map tasks were scheduled or in which order their results arrived.
This is what lets :class:`repro.core.Corpus` promise bit-identical serial
and parallel indexes/queries.

Chunked map partitions.  One thread task per map input is wasteful when a
job has many tiny inputs (thread dispatch dominates).  ``map_chunk_size``
groups consecutive inputs into one schedulable task: pass an ``int``, or
``"auto"`` to size chunks so each worker receives a few tasks.  The shuffle
groups intermediate pairs by key with a plain dictionary — the in-process
analogue of Hadoop's sort/partition phase.
"""

from __future__ import annotations

import math
import time
from collections.abc import Hashable, Iterable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..utils.errors import MapReduceError
from .job import JobStats, MapReduceJob

_EXECUTORS = ("serial", "thread")

#: ``"auto"`` chunking targets this many map tasks per worker, keeping the
#: pool busy (work stealing across uneven tasks) without per-input dispatch.
_AUTO_TASKS_PER_WORKER = 4

#: A tagged intermediate pair: ((input_index, emit_index), key, value).
TaggedPair = tuple[tuple[int, int], Hashable, Any]


class LocalEngine:
    """Runs map-reduce jobs in process.

    Parameters
    ----------
    n_workers:
        Thread-pool width for the ``"thread"`` executor (ignored by
        ``"serial"``).
    executor:
        ``"serial"`` (default) or ``"thread"``.
    map_chunk_size:
        Number of consecutive map inputs grouped into one schedulable task.
        ``None`` (default) keeps one task per input; ``"auto"`` sizes chunks
        to ``ceil(n_inputs / (n_workers * 4))`` under the thread executor so
        dispatch overhead does not dominate small workloads.
    """

    def __init__(
        self,
        n_workers: int = 1,
        executor: str = "serial",
        map_chunk_size: int | str | None = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise MapReduceError(f"unknown executor {executor!r}")
        if n_workers < 1:
            raise MapReduceError("n_workers must be >= 1")
        if map_chunk_size is not None and map_chunk_size != "auto":
            if not isinstance(map_chunk_size, int) or map_chunk_size < 1:
                raise MapReduceError(
                    "map_chunk_size must be a positive int, 'auto' or None"
                )
        self.n_workers = n_workers
        self.executor = executor
        self.map_chunk_size = map_chunk_size

    @property
    def is_parallel(self) -> bool:
        """True when tasks actually run on a thread pool."""
        return self.executor == "thread" and self.n_workers > 1

    def _resolve_chunk_size(self, n_inputs: int) -> int:
        if self.map_chunk_size is None:
            return 1
        if self.map_chunk_size == "auto":
            if not self.is_parallel or n_inputs == 0:
                return 1
            return max(
                1, math.ceil(n_inputs / (self.n_workers * _AUTO_TASKS_PER_WORKER))
            )
        return self.map_chunk_size

    def run(
        self, job: MapReduceJob, inputs: Iterable[tuple[Any, Any]]
    ) -> tuple[list[tuple[Any, Any]], JobStats]:
        """Execute ``job`` over ``inputs``; returns (outputs, stats)."""
        stats = JobStats()

        # -- map phase -------------------------------------------------------
        input_list = list(inputs)
        chunk_size = self._resolve_chunk_size(len(input_list))
        indexed = list(enumerate(input_list))
        chunks = [
            indexed[lo : lo + chunk_size]
            for lo in range(0, len(indexed), chunk_size)
        ]
        stats.n_map_chunks = len(chunks)

        def map_chunk(chunk: list[tuple[int, tuple[Any, Any]]]) -> list[TaggedPair]:
            tagged: list[TaggedPair] = []
            for input_index, (key, value) in chunk:
                for emit_index, (k, v) in enumerate(job.map(key, value)):
                    tagged.append(((input_index, emit_index), k, v))
            return tagged

        if self.is_parallel:
            map_results = self._run_tasks(
                [(map_chunk, chunk) for chunk in chunks], stats.map_task_seconds
            )
        else:
            map_results = []
            for chunk in chunks:
                start = time.perf_counter()
                map_results.append(map_chunk(chunk))
                stats.map_task_seconds.append(time.perf_counter() - start)

        # -- shuffle -----------------------------------------------------------
        start = time.perf_counter()
        groups = self.shuffle(pair for emitted in map_results for pair in emitted)
        stats.shuffle_seconds = time.perf_counter() - start

        # -- reduce phase ------------------------------------------------------
        items = list(groups.items())
        if self.is_parallel:
            reduce_results = self._run_tasks(
                [(job.reduce, k, vs) for k, vs in items],
                stats.reduce_task_seconds,
            )
        else:
            reduce_results = []
            for k, vs in items:
                start = time.perf_counter()
                emitted = list(job.reduce(k, vs))
                stats.reduce_task_seconds.append(time.perf_counter() - start)
                reduce_results.append(emitted)

        outputs = [pair for emitted in reduce_results for pair in emitted]
        stats.n_outputs = len(outputs)
        return outputs, stats

    @staticmethod
    def shuffle(tagged: Iterable[TaggedPair]) -> dict[Hashable, list[Any]]:
        """Group tagged intermediate pairs by key, deterministically.

        Pairs are first sorted by their ``(input_index, emit_index)`` tag, so
        both the per-key value order and the key (reduce-task) order depend
        only on what the map phase emitted — never on scheduling order.  This
        is the property the parallel/serial equivalence tests pin down.
        """
        ordered = sorted(tagged, key=lambda pair: pair[0])
        groups: dict[Hashable, list[Any]] = {}
        for _tag, key, value in ordered:
            groups.setdefault(key, []).append(value)
        return groups

    def _run_tasks(
        self,
        tasks: list[tuple],
        timings: list[float],
    ) -> list[list]:
        """Run ``(fn, *args)`` tasks on the thread pool, recording times."""

        def timed_call(task: tuple) -> tuple[list, float]:
            fn, *args = task
            start = time.perf_counter()
            out = list(fn(*args))
            return out, time.perf_counter() - start

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            results = list(pool.map(timed_call, tasks))
        outputs = []
        for out, seconds in results:
            outputs.append(out)
            timings.append(seconds)
        return outputs
