"""Local map-reduce engine (the Hadoop substitute of §5.4 / Appendix C).

Executes :class:`~repro.mapreduce.job.MapReduceJob` instances in process.
Three executors are provided:

* ``"serial"`` — tasks run one after another (deterministic; per-task wall
  times are recorded so the simulated-cluster scheduler can replay them).
* ``"thread"`` — map and reduce tasks run on a thread pool.  Overlap is real
  wherever the heavy lifting happens inside NumPy (which releases the GIL);
  pure-Python task bodies stay serialized by the interpreter lock.
* ``"process"`` — tasks run on a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Each worker is a separate interpreter, so pure-Python work (the merge-tree
  sweep dominating feature identification) parallelizes too.  Task payloads
  are pickled, with large NumPy matrices detoured through the shared-memory
  data plane (:mod:`repro.mapreduce.shm`) so the same value matrix is shipped
  once per run instead of once per task.

Determinism.  Every intermediate pair is tagged with its provenance
``(input_index, emit_index)`` before the shuffle; the shuffle sorts by that
tag, so grouped values (and therefore reduce outputs) are identical no
matter how map tasks were scheduled, on which worker they ran, or in which
order their results arrived.  This is what lets :class:`repro.core.Corpus`
promise bit-identical serial, threaded and process-parallel indexes/queries.

Chunked map partitions.  One pool task per map input is wasteful when a job
has many tiny inputs (dispatch dominates).  ``map_chunk_size`` groups
consecutive inputs into one schedulable task: pass an ``int``, or ``"auto"``
to size chunks per executor (see :func:`auto_chunk_size` — process workers
get larger chunks, amortizing the per-task pickle/IPC round trip that
threads do not pay).  The shuffle groups intermediate pairs by key with a
plain dictionary — the in-process analogue of Hadoop's sort/partition phase.

Environment defaults.  :func:`default_engine` resolves unset knobs from
``REPRO_EXECUTOR`` / ``REPRO_WORKERS``, which is how CI re-runs whole test
suites under the process executor without touching a single call site.  A
fourth executor, ``"cluster"``, lives outside this module: it resolves to
:class:`repro.distributed.ClusterEngine` (real multi-host workers over TCP,
``REPRO_CLUSTER`` names the coordinator address) behind the same
``run(job, inputs)`` contract.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import sys
import time
import traceback
from collections.abc import Hashable, Iterable
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from .. import obs
from ..utils.errors import MapReduceError, ReproError
from . import shm
from .job import JobStats, MapReduceJob

#: The executors :class:`LocalEngine` itself runs, in documentation order.
EXECUTORS = ("serial", "thread", "process")

#: Every executor :func:`default_engine` can build — the local three plus
#: the distributed backend (``executor="cluster"`` returns a
#: :class:`repro.distributed.ClusterEngine` behind the same contract).
ALL_EXECUTORS = EXECUTORS + ("cluster",)


def _start_method() -> str:
    """Start method for process-executor workers.

    Pinned explicitly so behavior does not drift with the platform default
    (CPython is migrating it): fork on Linux — cheapest startup, and workers
    inherit the loaded corpus read-only — spawn everywhere else.  The
    shared-memory plane is agnostic either way (attachments are untracked by
    construction, see :mod:`repro.mapreduce.shm`).
    """
    if sys.platform.startswith("linux"):
        return "fork"
    return "spawn"  # pragma: no cover - non-Linux platforms


#: ``"auto"`` chunking targets this many map tasks per worker: enough tasks
#: to keep the pool busy (work stealing across uneven tasks) without
#: per-input dispatch.  Process workers get fewer, larger chunks because
#: every task also pays a pickle/IPC round trip; cluster workers pay the
#: same pickle cost plus a socket hop, so they match the process sizing.
#: (The cluster engine's own ``steal_granularity="auto"`` goes further and
#: sizes tasks from *measured* per-input seconds; this table is the local
#: pools' static heuristic and the cluster's pre-measurement fallback shape.)
_AUTO_TASKS_PER_WORKER = {"thread": 4, "process": 2, "cluster": 2}

#: A tagged intermediate pair: ((input_index, emit_index), key, value).
TaggedPair = tuple[tuple[int, int], Hashable, Any]


def auto_chunk_size(n_inputs: int, n_workers: int, executor: str) -> int:
    """Map-chunk size chosen by ``map_chunk_size="auto"``.

    ``ceil(n_inputs / (n_workers * tasks_per_worker))`` with a per-executor
    ``tasks_per_worker``: 4 for threads (dispatch is cheap, favor work
    stealing) and 2 for processes and cluster hosts (every task ships its
    payload through pickle/IPC or a socket, favor amortization).  Serial
    execution keeps one input per task so per-task timings stay maximally
    informative for the simulated-cluster replay.
    """
    if executor not in ALL_EXECUTORS:
        raise MapReduceError(
            f"unknown executor {executor!r} (valid executors: "
            f"{', '.join(ALL_EXECUTORS)})"
        )
    if executor == "serial" or n_workers <= 1 or n_inputs <= 0:
        return 1
    per_worker = _AUTO_TASKS_PER_WORKER[executor]
    return max(1, math.ceil(n_inputs / (n_workers * per_worker)))


def default_engine(
    n_workers: int | None = None,
    executor: str | None = None,
    map_chunk_size: int | str | None = "auto",
):
    """Build an engine, resolving unset knobs from the environment.

    ``executor=None`` falls back to ``$REPRO_EXECUTOR`` (default
    ``"serial"``); ``n_workers=None`` falls back to ``$REPRO_WORKERS``
    (default: 1).  Explicit arguments always win, so only call sites that
    pass nothing become environment-steerable — this is how the CI process
    and cluster jobs replay the whole mapreduce/persist test suites under
    ``REPRO_EXECUTOR=process``/``cluster`` without editing them.

    Environment values are validated *here*, up front: a typo in
    ``REPRO_EXECUTOR`` or ``REPRO_WORKERS`` raises a
    :class:`MapReduceError` naming the variable and the accepted values at
    engine-construction time, instead of surfacing as a raw ``ValueError``
    (or a late failure) deep inside the first job.

    ``executor="cluster"`` returns a
    :class:`repro.distributed.ClusterEngine` whose coordinator binds the
    ``$REPRO_CLUSTER`` address (default ``127.0.0.1:7077``) — the same
    ``run(job, inputs)`` contract, executed by ``repro worker`` daemons.
    ``$REPRO_FALLBACK`` (``serial``/``thread``/``process``) arms graceful
    degradation: when the cluster is unavailable (workers never registered,
    or all lost mid-run) the job reruns on that local executor instead of
    failing, with the downgrade logged.
    """
    if executor is None:
        raw_executor = os.environ.get("REPRO_EXECUTOR") or "serial"
        if raw_executor not in ALL_EXECUTORS:
            raise MapReduceError(
                f"REPRO_EXECUTOR must be one of {', '.join(ALL_EXECUTORS)}; "
                f"got {raw_executor!r}"
            )
        executor = raw_executor
    if n_workers is None:
        raw = os.environ.get("REPRO_WORKERS")
        if raw is None or raw == "":
            n_workers = 1
        else:
            try:
                n_workers = int(raw)
            except ValueError:
                raise MapReduceError(
                    f"REPRO_WORKERS must be an integer >= 1, got {raw!r}"
                ) from None
            if n_workers < 1:
                raise MapReduceError(
                    f"REPRO_WORKERS must be an integer >= 1, got {raw!r}"
                )
    if executor == "cluster":
        # Imported lazily: repro.distributed builds on this module.
        from ..distributed import ClusterEngine

        bind = os.environ.get("REPRO_CLUSTER") or "127.0.0.1:7077"
        from ..distributed.protocol import parse_address

        parse_address(bind, variable="REPRO_CLUSTER")  # validate up front
        raw_fallback = os.environ.get("REPRO_FALLBACK") or None
        if raw_fallback is not None and raw_fallback not in (
            "serial",
            "thread",
            "process",
        ):
            raise MapReduceError(
                "REPRO_FALLBACK must be one of serial, thread, process "
                f"(or unset); got {raw_fallback!r}"
            )
        return ClusterEngine(
            bind=bind,
            n_workers=n_workers,
            map_chunk_size=map_chunk_size,
            shared=True,
            fallback=raw_fallback,
        )
    return LocalEngine(
        n_workers=n_workers, executor=executor, map_chunk_size=map_chunk_size
    )


def _map_chunk(job: MapReduceJob, chunk: list) -> list[TaggedPair]:
    """Run one chunk of map inputs, tagging every emitted pair.

    Module-level (not a closure) so the process executor can run it inside a
    worker after unpickling the payload.
    """
    tagged: list[TaggedPair] = []
    for input_index, (key, value) in chunk:
        for emit_index, (k, v) in enumerate(job.map(key, value)):
            tagged.append(((input_index, emit_index), k, v))
    return tagged


def _process_task(payload: bytes) -> tuple:
    """Worker entry point of the process executor.

    Decodes one shm-pickled task, runs it, and reports
    ``("ok", result, seconds)`` — or ``("err", traceback_text, original)``
    so the parent can surface the failure itself (library errors re-raised
    as-is, everything else as a :class:`MapReduceError` carrying the
    *original* traceback) instead of the executor's opaque
    ``BrokenProcessPool`` path.  ``original`` is the exception instance when
    it survives a pickle round trip, else ``None``.
    """
    start = time.perf_counter()
    try:
        kind, job, data = shm.loads(payload)
        if kind == "map":
            result: list = _map_chunk(job, data)
        else:
            key, values = data
            result = list(job.reduce(key, values))
        return ("ok", result, time.perf_counter() - start)
    except BaseException as exc:
        original: BaseException | None
        try:
            original = pickle.loads(pickle.dumps(exc))
        except Exception:
            original = None
        return ("err", traceback.format_exc(), original)


class LocalEngine:
    """Runs map-reduce jobs in process.

    Parameters
    ----------
    n_workers:
        Pool width for the ``"thread"`` and ``"process"`` executors (ignored
        by ``"serial"``).
    executor:
        ``"serial"`` (default), ``"thread"`` or ``"process"``.
    map_chunk_size:
        Number of consecutive map inputs grouped into one schedulable task.
        ``None`` (default) keeps one task per input; ``"auto"`` sizes chunks
        per executor via :func:`auto_chunk_size`.
    shm_min_bytes:
        Arrays at least this large are shipped to process workers through
        the shared-memory plane instead of per-task pickling (ignored by
        the in-process executors, which share objects by reference).
    """

    def __init__(
        self,
        n_workers: int = 1,
        executor: str = "serial",
        map_chunk_size: int | str | None = None,
        shm_min_bytes: int = shm.DEFAULT_MIN_BYTES,
    ) -> None:
        if executor == "cluster":
            raise MapReduceError(
                "executor 'cluster' is the distributed backend — build it "
                "with default_engine(executor='cluster') or "
                "repro.distributed.ClusterEngine, not LocalEngine"
            )
        if executor not in EXECUTORS:
            raise MapReduceError(
                f"unknown executor {executor!r} (valid executors: "
                f"{', '.join(EXECUTORS)})"
            )
        if not isinstance(n_workers, int) or n_workers < 1:
            raise MapReduceError(
                f"n_workers must be an integer >= 1, got {n_workers!r}"
            )
        if map_chunk_size is not None and map_chunk_size != "auto":
            if not isinstance(map_chunk_size, int) or map_chunk_size < 1:
                raise MapReduceError(
                    "map_chunk_size must be a positive int, 'auto' or None"
                )
        if shm_min_bytes < 1:
            raise MapReduceError("shm_min_bytes must be >= 1")
        self.n_workers = n_workers
        self.executor = executor
        self.map_chunk_size = map_chunk_size
        self.shm_min_bytes = shm_min_bytes
        #: :class:`repro.obs.RunReport` of the most recent ``run`` call.
        self.last_run_report: obs.RunReport | None = None

    @property
    def is_parallel(self) -> bool:
        """True when tasks actually run on a thread or process pool."""
        return self.executor in ("thread", "process") and self.n_workers > 1

    def _resolve_chunk_size(self, n_inputs: int) -> int:
        if self.map_chunk_size is None:
            return 1
        if self.map_chunk_size == "auto":
            if not self.is_parallel:
                return 1
            return auto_chunk_size(n_inputs, self.n_workers, self.executor)
        return self.map_chunk_size

    def run(
        self, job: MapReduceJob, inputs: Iterable[tuple[Any, Any]]
    ) -> tuple[list[tuple[Any, Any]], JobStats]:
        """Execute ``job`` over ``inputs``; returns (outputs, stats)."""
        stats = JobStats()
        wall_start = time.perf_counter()
        with obs.span(
            "engine.run",
            executor=self.executor,
            n_workers=self.n_workers,
            job=type(job).__name__,
        ) as run_span:
            outputs = self._execute(job, inputs, stats, run_span.span_id)
            run_span.set(n_outputs=stats.n_outputs)
        stats.wall_seconds = time.perf_counter() - wall_start
        obs.histogram("repro.engine.run_seconds", executor=self.executor).observe(
            stats.wall_seconds
        )
        report = obs.RunReport.from_stats(
            stats, job=type(job).__name__, executor=self.executor,
            n_workers=self.n_workers,
        )
        self.last_run_report = report
        trace = obs.current_trace()
        if trace is not None:
            trace.add_report(report.to_json())
        return outputs, stats

    def _execute(
        self,
        job: MapReduceJob,
        inputs: Iterable[tuple[Any, Any]],
        stats: JobStats,
        run_span_id: int | None,
    ) -> list[tuple[Any, Any]]:
        """The phases of :meth:`run` (spans/report handled by the caller)."""
        input_list = list(inputs)
        chunk_size = self._resolve_chunk_size(len(input_list))
        indexed = list(enumerate(input_list))
        chunks = [
            indexed[lo : lo + chunk_size]
            for lo in range(0, len(indexed), chunk_size)
        ]
        stats.n_map_chunks = len(chunks)

        if self.executor == "process" and self.is_parallel:
            return self._run_process(job, chunks, stats, run_span_id)

        # -- map phase -------------------------------------------------------
        if self.is_parallel:
            map_results = self._run_thread_tasks(
                [(_map_chunk, job, chunk) for chunk in chunks],
                stats.map_task_seconds,
                span_name="map.task",
                span_parent=run_span_id,
            )
        else:
            map_results = []
            for chunk in chunks:
                with obs.span("map.task", n_inputs=len(chunk)):
                    start = time.perf_counter()
                    map_results.append(_map_chunk(job, chunk))
                    stats.map_task_seconds.append(time.perf_counter() - start)

        # -- shuffle -----------------------------------------------------------
        with obs.span("engine.shuffle"):
            start = time.perf_counter()
            groups = self.shuffle(
                pair for emitted in map_results for pair in emitted
            )
            stats.shuffle_seconds = time.perf_counter() - start

        # -- reduce phase ------------------------------------------------------
        items = list(groups.items())
        if self.is_parallel:
            reduce_results = self._run_thread_tasks(
                [(job.reduce, k, vs) for k, vs in items],
                stats.reduce_task_seconds,
                span_name="reduce.task",
                span_parent=run_span_id,
            )
        else:
            reduce_results = []
            for k, vs in items:
                with obs.span("reduce.task"):
                    start = time.perf_counter()
                    emitted = list(job.reduce(k, vs))
                    stats.reduce_task_seconds.append(
                        time.perf_counter() - start
                    )
                    reduce_results.append(emitted)

        outputs = [pair for emitted in reduce_results for pair in emitted]
        stats.n_outputs = len(outputs)
        return outputs

    @staticmethod
    def shuffle(tagged: Iterable[TaggedPair]) -> dict[Hashable, list[Any]]:
        """Group tagged intermediate pairs by key, deterministically.

        Pairs are first sorted by their ``(input_index, emit_index)`` tag, so
        both the per-key value order and the key (reduce-task) order depend
        only on what the map phase emitted — never on scheduling order.  This
        is the property the parallel/serial equivalence tests pin down.
        """
        ordered = sorted(tagged, key=lambda pair: pair[0])
        groups: dict[Hashable, list[Any]] = {}
        for _tag, key, value in ordered:
            groups.setdefault(key, []).append(value)
        return groups

    # -- thread executor -----------------------------------------------------

    def _run_thread_tasks(
        self,
        tasks: list[tuple],
        timings: list[float],
        span_name: str = "task",
        span_parent: int | None = None,
    ) -> list[list]:
        """Run ``(fn, *args)`` tasks on the thread pool, recording times.

        Per-task spans carry an explicit ``span_parent`` (the run span's id):
        pool threads have no span stack of their own, so thread-local nesting
        cannot resolve the parent for them.
        """

        def timed_call(task: tuple) -> tuple[list, float]:
            fn, *args = task
            with obs.span(span_name, parent=span_parent):
                start = time.perf_counter()
                out = list(fn(*args))
                return out, time.perf_counter() - start

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            results = list(pool.map(timed_call, tasks))
        outputs = []
        for out, seconds in results:
            outputs.append(out)
            timings.append(seconds)
        return outputs

    # -- process executor ----------------------------------------------------

    def _run_process(
        self,
        job: MapReduceJob,
        chunks: list[list],
        stats: JobStats,
        run_span_id: int | None = None,
    ) -> list[tuple[Any, Any]]:
        """Map + shuffle + reduce with one process pool and one shm plane.

        The pool and the shared-memory plane span both task phases, so a
        value matrix referenced by a map chunk *and* a reduce group is still
        registered only once.  The plane is closed in ``finally`` — success,
        task failure or pool breakage all release every segment.
        """
        plane = shm.SharedArrayPlane(min_bytes=self.shm_min_bytes)
        try:
            with ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context(_start_method()),
            ) as pool:
                map_results = self._submit_process_phase(
                    pool,
                    plane,
                    [("map", job, chunk) for chunk in chunks],
                    stats.map_task_seconds,
                    phase="map",
                    span_parent=run_span_id,
                )

                with obs.span("engine.shuffle"):
                    start = time.perf_counter()
                    groups = self.shuffle(
                        pair for emitted in map_results for pair in emitted
                    )
                    stats.shuffle_seconds = time.perf_counter() - start

                items = list(groups.items())
                reduce_results = self._submit_process_phase(
                    pool,
                    plane,
                    [("reduce", job, item) for item in items],
                    stats.reduce_task_seconds,
                    phase="reduce",
                    span_parent=run_span_id,
                )
        finally:
            plane.close()

        outputs = [pair for emitted in reduce_results for pair in emitted]
        stats.n_outputs = len(outputs)
        return outputs

    def _submit_process_phase(
        self,
        pool: ProcessPoolExecutor,
        plane: shm.SharedArrayPlane,
        tasks: list[tuple],
        timings: list[float],
        phase: str,
        span_parent: int | None = None,
    ) -> list[list]:
        """Ship one phase's tasks to the pool; results in submission order."""
        try:
            futures: list[Future] = [
                pool.submit(_process_task, shm.dumps(task, plane))
                for task in tasks
            ]
        except BrokenProcessPool as exc:  # pragma: no cover - races only
            raise MapReduceError(
                f"process pool broke while submitting {phase} tasks: {exc}"
            ) from exc

        outputs: list[list] = []
        try:
            for future in futures:
                result = future.result()
                if result[0] == "err":
                    _status, remote_tb, original = result
                    if isinstance(original, ReproError):
                        # Library errors keep their type and message —
                        # serial, thread and process execution all raise the
                        # same exception; the worker traceback rides along
                        # as the cause.
                        raise original from MapReduceError(
                            f"raised in a {phase} worker process; original "
                            f"traceback:\n{remote_tb}"
                        )
                    raise MapReduceError(
                        f"{phase} task failed in a worker process; original "
                        f"traceback:\n{remote_tb}"
                    )
                _status, out, seconds = result
                outputs.append(out)
                timings.append(seconds)
                # Worker processes have no trace; approximate each task as
                # an interval ending at result arrival in the parent clock.
                obs.record_span(
                    f"{phase}.task",
                    seconds,
                    parent=span_parent,
                    track="process-pool",
                )
        except BrokenProcessPool as exc:
            raise MapReduceError(
                f"a worker process died during the {phase} phase (killed or "
                f"crashed before reporting a result): {exc}"
            ) from exc
        finally:
            for future in futures:
                future.cancel()
        return outputs
