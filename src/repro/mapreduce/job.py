"""Map-reduce job abstraction (Appendix C).

A job transforms an iterable of ``(key, value)`` input pairs through a map
phase, a shuffle (grouping intermediate pairs by key), and a reduce phase.
Jobs are plain Python classes implementing :class:`MapReduceJob`; the engine
(:mod:`repro.mapreduce.engine`) decides how tasks are executed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable


class MapReduceJob(ABC):
    """One map-reduce job: ``map`` then shuffle then ``reduce``."""

    @abstractmethod
    def map(self, key: Any, value: Any) -> Iterable[tuple[Hashable, Any]]:
        """Emit intermediate ``(key, value)`` pairs for one input pair."""

    @abstractmethod
    def reduce(self, key: Hashable, values: list[Any]) -> Iterable[tuple[Any, Any]]:
        """Emit output pairs for one intermediate key and its value group."""


@runtime_checkable
class Engine(Protocol):
    """The engine contract every backend implements.

    :class:`repro.mapreduce.engine.LocalEngine` (serial / thread / process)
    and :class:`repro.distributed.ClusterEngine` (multi-host over TCP) are
    interchangeable behind this protocol: ``run`` executes one job over its
    inputs and returns ``(outputs, stats)``, bit-identically for a
    deterministic job regardless of backend — including under the cluster
    scheduler's work stealing, overlapped shuffle, worker loss and elastic
    join, none of which may leak into outputs.  Corpus indexing, querying
    and index persistence only ever depend on this surface.
    (``docs/ARCHITECTURE.md`` documents this contract and the dataflow
    built on it.)
    """

    n_workers: int
    executor: str

    def run(
        self, job: "MapReduceJob", inputs: Iterable[tuple[Any, Any]]
    ) -> tuple[list[tuple[Any, Any]], "JobStats"]:
        """Execute ``job`` over ``inputs``; returns (outputs, stats)."""
        ...  # pragma: no cover - protocol stub


@dataclass
class JobStats:
    """Per-phase accounting of one job run.

    ``map_task_seconds`` and ``reduce_task_seconds`` record the wall time of
    each individual task; the simulated-cluster scheduler replays them onto
    n virtual nodes to estimate distributed makespans (Fig. 10).  When the
    engine chunks map inputs (see ``LocalEngine.map_chunk_size``), each chunk
    is one schedulable task: ``n_map_chunks`` counts them and
    ``map_task_seconds`` holds one entry per chunk.
    """

    map_task_seconds: list[float] = field(default_factory=list)
    reduce_task_seconds: list[float] = field(default_factory=list)
    shuffle_seconds: float = 0.0
    n_outputs: int = 0
    n_map_chunks: int = 0
    #: End-to-end wall time of the run as measured by the engine; 0.0 when
    #: the stats were built outside an engine (e.g. merged or hand-made).
    wall_seconds: float = 0.0

    @property
    def total_task_seconds(self) -> float:
        """Sum of all task times (the single-node sequential cost).

        Deliberately excludes ``shuffle_seconds`` — the simulated-cluster
        scheduler replays *tasks* onto virtual nodes and accounts the
        shuffle separately.  Use :attr:`busy_seconds` for the full
        sequential cost including the shuffle.
        """
        return sum(self.map_task_seconds) + sum(self.reduce_task_seconds)

    @property
    def busy_seconds(self) -> float:
        """Task time plus shuffle time (the full sequential cost)."""
        return self.total_task_seconds + self.shuffle_seconds

    @property
    def overhead_seconds(self) -> float:
        """Wall time not accounted to tasks or the shuffle.

        Dispatch, scheduling waits, result transport.  0.0 when
        ``wall_seconds`` was never measured (or clocks disagree slightly on
        a fully-parallel run, where wall < busy is expected anyway).
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return max(0.0, self.wall_seconds - self.busy_seconds)
