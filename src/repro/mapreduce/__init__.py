"""Map-reduce substrate: local engine, simulated cluster, framework jobs."""

from .cluster import greedy_makespan, job_makespan, speedup_curve, straggler_ratio
from .engine import LocalEngine, auto_chunk_size, default_engine
from .job import JobStats, MapReduceJob
from .shm import SharedArrayPlane
from .pipeline import (
    FeatureIdentificationJob,
    PipelineRun,
    PolygamyPipeline,
    RelationshipJob,
    ScalarFunctionJob,
)

__all__ = [
    "LocalEngine",
    "SharedArrayPlane",
    "auto_chunk_size",
    "default_engine",
    "JobStats",
    "MapReduceJob",
    "greedy_makespan",
    "job_makespan",
    "speedup_curve",
    "straggler_ratio",
    "PolygamyPipeline",
    "PipelineRun",
    "ScalarFunctionJob",
    "FeatureIdentificationJob",
    "RelationshipJob",
]
