"""Map-reduce substrate: local engine, simulated cluster, framework jobs.

The real multi-host backend lives in :mod:`repro.distributed`; it plugs in
behind the same :class:`Engine` contract via ``executor="cluster"``.
"""

from .cluster import (
    greedy_makespan,
    job_makespan,
    overlapped_makespan,
    speedup_curve,
    straggler_ratio,
)
from .engine import (
    ALL_EXECUTORS,
    EXECUTORS,
    LocalEngine,
    auto_chunk_size,
    default_engine,
)
from .job import Engine, JobStats, MapReduceJob
from .shm import SharedArrayPlane
from .pipeline import (
    FeatureIdentificationJob,
    PipelineRun,
    PolygamyPipeline,
    RelationshipJob,
    ScalarFunctionJob,
)

__all__ = [
    "ALL_EXECUTORS",
    "EXECUTORS",
    "Engine",
    "LocalEngine",
    "SharedArrayPlane",
    "auto_chunk_size",
    "default_engine",
    "JobStats",
    "MapReduceJob",
    "greedy_makespan",
    "job_makespan",
    "overlapped_makespan",
    "speedup_curve",
    "straggler_ratio",
    "PolygamyPipeline",
    "PipelineRun",
    "ScalarFunctionJob",
    "FeatureIdentificationJob",
    "RelationshipJob",
]
