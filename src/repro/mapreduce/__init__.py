"""Map-reduce substrate: local engine, simulated cluster, framework jobs."""

from .cluster import greedy_makespan, job_makespan, speedup_curve, straggler_ratio
from .engine import LocalEngine
from .job import JobStats, MapReduceJob
from .pipeline import (
    FeatureIdentificationJob,
    PipelineRun,
    PolygamyPipeline,
    RelationshipJob,
    ScalarFunctionJob,
)

__all__ = [
    "LocalEngine",
    "JobStats",
    "MapReduceJob",
    "greedy_makespan",
    "job_makespan",
    "speedup_curve",
    "straggler_ratio",
    "PolygamyPipeline",
    "PipelineRun",
    "ScalarFunctionJob",
    "FeatureIdentificationJob",
    "RelationshipJob",
]
