"""Shared-memory data plane for the ``"process"`` executor.

The process executor ships every task payload to a worker through pickle.
For the framework jobs that is mostly fine — jobs, clauses and small result
objects are cheap — but the large NumPy matrices behind a task (raw data set
columns, scalar-function value matrices) would be serialized **per task**,
and the same matrix frequently backs many tasks (every function pair of a
query references its two value matrices; every partition of one data set
references the full record arrays).

This module removes that copy: a :class:`SharedArrayPlane` registers each
distinct large array **once** into a ``multiprocessing.shared_memory``
segment, and a pickler/unpickler pair (:func:`dumps` / :func:`loads`)
substitutes those arrays with tiny segment references during payload
serialization.  Workers reconstruct zero-copy, read-only views onto the
same physical pages.

Guarantees:

* **Registration is deduplicated** — an array appearing in ten payloads
  occupies one segment, written once.
* **Cleanup is guaranteed** — the engine closes the plane in a ``finally``
  block; :meth:`SharedArrayPlane.close` unlinks every segment even when a
  task raised, and the module-level :func:`live_segments` registry lets
  tests assert nothing leaked.
* **Workers never unlink** — attachments are *untracked*: only the creating
  process registers a segment with its ``resource_tracker``.  Attaching
  with tracking enabled is a well-known CPython pitfall before 3.13's
  ``track=False``: depending on when the worker was forked relative to the
  first registration, its registrations land either in the parent's tracker
  (where an unregister would erase the creator's entry) or in a lazily
  spawned per-worker tracker (which then reports every attachment as a leak
  at worker exit — or worse, unlinks live segments).  :func:`attach` uses
  ``track=False`` where available and suppresses the registration call on
  older interpreters.  The owning engine controls the segment lifetime
  alone.
* **Views are read-only** — map tasks must treat inputs as immutable (the
  serial executor shares the same objects by reference); read-only views
  turn an accidental in-place mutation into a loud error instead of a
  silent cross-process divergence.

The plane is transport only: it never changes *what* is computed, so the
engine's bit-identical serial/parallel guarantee is preserved.
"""

from __future__ import annotations

import io
import pickle
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from ..utils.errors import MapReduceError

#: Segment names are ``repro_shm_<token>``; tests scan for this prefix.
SEGMENT_PREFIX = "repro_shm_"

#: Arrays below this many bytes travel through plain pickle: a shared-memory
#: segment costs a file descriptor, a page-aligned allocation and an attach
#: syscall per worker, which only pays off for matrices of real size.
DEFAULT_MIN_BYTES = 32 * 1024

#: Tag marking a persistent id as one of ours (defensive: ``persistent_load``
#: must reject foreign pids instead of fabricating arrays from garbage).
_PID_TAG = "repro.mapreduce.shm"

#: Names of segments created by this process that are not yet unlinked.
#: :meth:`SharedArrayPlane.close` drains it; tests assert it is empty after
#: every engine run, including runs that failed.
_LIVE_SEGMENTS: set[str] = set()

#: Worker-side attachment cache: segment name -> (handle, base array).
#: One attach per segment per worker, no matter how many payloads reference
#: it; entries live until :func:`detach_all` or process exit.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering with the resource tracker.

    Python 3.13+ supports this directly (``track=False``); on older
    interpreters the registration call is suppressed for the duration of the
    constructor.  Attaching processes are single-threaded pool workers (or a
    test in the creating process, whose create-time registration already
    stands), so the brief suppression cannot swallow a concurrent register.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def live_segments() -> frozenset[str]:
    """Names of segments this process created and has not yet unlinked."""
    return frozenset(_LIVE_SEGMENTS)


class SharedArrayPlane:
    """Owner of the shared-memory segments behind one engine run.

    Parameters
    ----------
    min_bytes:
        Arrays smaller than this are left to plain pickle (see
        :data:`DEFAULT_MIN_BYTES`).
    """

    def __init__(self, min_bytes: int = DEFAULT_MIN_BYTES) -> None:
        if min_bytes < 1:
            raise MapReduceError("shared-memory min_bytes must be >= 1")
        self.min_bytes = min_bytes
        self._segments: list[shared_memory.SharedMemory] = []
        # id(array) -> ref; the keepalive list pins the arrays so a freed
        # array's id cannot be recycled into a stale cache hit.
        self._refs: dict[int, tuple] = {}
        self._keepalive: list[np.ndarray] = []
        self.closed = False

    @property
    def n_segments(self) -> int:
        """Number of distinct arrays promoted to shared memory."""
        return len(self._segments)

    @property
    def shared_bytes(self) -> int:
        """Total payload bytes resident in shared memory."""
        return sum(segment.size for segment in self._segments)

    def eligible(self, obj: Any) -> bool:
        """True when ``obj`` is an array worth promoting to shared memory."""
        return (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and not obj.dtype.hasobject
            and obj.nbytes >= self.min_bytes
        )

    def register(self, array: np.ndarray) -> tuple:
        """Copy ``array`` into a segment (once) and return its reference.

        The reference is a small picklable tuple ``(name, dtype, shape)``;
        :func:`attach` turns it back into a read-only view in any process.
        """
        if self.closed:
            raise MapReduceError("shared-array plane is already closed")
        key = id(array)
        ref = self._refs.get(key)
        if ref is not None:
            return ref
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes, name=name)
        _LIVE_SEGMENTS.add(name)
        self._segments.append(segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array  # handles non-contiguous sources too
        ref = (name, array.dtype.str, array.shape)
        self._refs[key] = ref
        self._keepalive.append(array)
        return ref

    def close(self) -> None:
        """Release and unlink every segment; idempotent, never raises partway.

        Called from the engine's ``finally`` block, so it must make progress
        past individual failures (a segment the OS already reclaimed must not
        strand its siblings).
        """
        if self.closed:
            return
        self.closed = True
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - platform-dependent
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE_SEGMENTS.discard(segment.name)
        self._segments.clear()
        self._refs.clear()
        self._keepalive.clear()

    def __enter__(self) -> "SharedArrayPlane":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def attach(ref: tuple) -> np.ndarray:
    """Materialize a registered array as a read-only shared view.

    Attachments are cached per process and never tracked by the resource
    tracker — the creating process owns the segment lifetime (see module
    docstring).
    """
    name, dtype, shape = ref
    cached = _ATTACHED.get(name)
    if cached is None:
        try:
            segment = _open_untracked(name)
        except FileNotFoundError as exc:
            raise MapReduceError(
                f"shared-memory segment {name!r} vanished before the worker "
                "attached (plane closed too early?)"
            ) from exc
        base = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        base.flags.writeable = False
        _ATTACHED[name] = (segment, base)
        return base
    segment, base = cached
    return base


def detach_all() -> None:
    """Drop every cached attachment (test isolation / worker teardown)."""
    for segment, _base in _ATTACHED.values():
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - view still held
            pass
    _ATTACHED.clear()


class _ShmPickler(pickle.Pickler):
    """Pickler that detours eligible arrays through the plane."""

    def __init__(self, file: io.BytesIO, plane: SharedArrayPlane | None) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._plane = plane

    def persistent_id(self, obj: Any) -> Any:
        plane = self._plane
        if plane is not None and plane.eligible(obj):
            return (_PID_TAG, plane.register(obj))
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler that resolves plane references back into shared views."""

    def persistent_load(self, pid: Any) -> Any:
        if isinstance(pid, tuple) and len(pid) == 2 and pid[0] == _PID_TAG:
            return attach(pid[1])
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps(obj: Any, plane: SharedArrayPlane | None = None) -> bytes:
    """Pickle ``obj``, detouring large arrays through ``plane`` (if given)."""
    buffer = io.BytesIO()
    _ShmPickler(buffer, plane).dump(obj)
    return buffer.getvalue()


def loads(payload: bytes) -> Any:
    """Inverse of :func:`dumps`; attaches referenced segments on demand."""
    return _ShmUnpickler(io.BytesIO(payload)).load()
