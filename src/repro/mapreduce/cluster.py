"""Simulated-cluster scheduling: makespans and speedups (Fig. 10).

The paper's scalability experiment measures the speedup of each framework
component on clusters of growing size, observing sub-linear scaling for
feature identification and relationship evaluation because *straggler
reducers* (tasks over high-resolution functions) dominate the makespan.

We reproduce exactly that quantity without physical nodes: every task's wall
time is measured during a real single-process run, then replayed through a
Hadoop-like greedy scheduler (each task goes to the earliest-free node, in
submission order).  The speedup on n nodes is the single-node sequential time
divided by the scheduled makespan — stragglers emerge naturally from the
heterogeneous task times.

Since the :mod:`repro.distributed` backend exists, the simulation has a
measured counterpart: ``bench_fig10_speedup.py`` runs the same workload on
real ``local_cluster`` hosts and reports both curves side by side.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..utils.errors import MapReduceError
from .job import JobStats


def greedy_makespan(task_seconds: list[float], n_nodes: int) -> float:
    """Makespan of scheduling tasks onto ``n_nodes`` earliest-free-first.

    Tasks are assigned in submission order, mirroring Hadoop's slot
    assignment; no preemption.
    """
    if n_nodes < 1:
        raise MapReduceError("cluster needs at least one node")
    if not task_seconds:
        return 0.0
    if any(t < 0 for t in task_seconds):
        raise MapReduceError("task durations must be non-negative")
    loads = [0.0] * min(n_nodes, len(task_seconds))
    heap = [(0.0, i) for i in range(len(loads))]
    heapq.heapify(heap)
    for t in task_seconds:
        load, node = heapq.heappop(heap)
        heapq.heappush(heap, (load + t, node))
    return max(load for load, _ in heap)


def job_makespan(stats: JobStats, n_nodes: int) -> float:
    """Scheduled makespan of one job: map wave + shuffle + reduce wave.

    The model is a hard barrier *between the two waves*: no reduce task is
    scheduled until the slowest map task has finished, and the shuffle runs
    serially on the coordinator in between — so the three terms simply add.
    This matches the local engine's pools and the distributed coordinator's
    ``streaming_reduce=False`` mode; it is the conservative replay for
    Fig. 10 (it can only understate, never overstate, cluster speedup).
    The coordinator's *default* scheduler overlaps the shuffle with the map
    wave — :func:`overlapped_makespan` models that one.
    """
    return (
        greedy_makespan(stats.map_task_seconds, n_nodes)
        + stats.shuffle_seconds
        + greedy_makespan(stats.reduce_task_seconds, n_nodes)
    )


def overlapped_makespan(stats: JobStats, n_nodes: int) -> float:
    """Makespan under the streaming scheduler's overlapped shuffle.

    Models the v2 coordinator's default mode: each map result is folded
    into the shuffle *while later map tasks still run*, so by the time the
    last map task lands the shuffle is already done and reduce tasks
    dispatch immediately.  The fold's cost therefore hides behind the map
    wave — except the part that folds the *last* map result, which nothing
    can overlap.  We charge that tail as the fold time amortized over map
    tasks (one task's share); with no map tasks the whole shuffle is the
    tail.  The two greedy waves still add: reduce work cannot start before
    the final map output exists (any map task may emit any key, so no
    grouping is final until the map phase is).
    """
    n_map = len(stats.map_task_seconds)
    fold_tail = stats.shuffle_seconds / n_map if n_map else stats.shuffle_seconds
    return (
        greedy_makespan(stats.map_task_seconds, n_nodes)
        + fold_tail
        + greedy_makespan(stats.reduce_task_seconds, n_nodes)
    )


def speedup_curve(
    stats: JobStats, node_counts: list[int], makespan=job_makespan
) -> dict[int, float]:
    """Speedup (T1 / Tn) of one job for each cluster size.

    The public helper behind the Fig. 10 benchmark (simulated curves) and
    the measured-vs-simulated comparison of the cluster backend.  T1 is the
    scheduled makespan on a single node (= sequential task time plus
    shuffle), Tn the makespan on n nodes.  ``makespan`` selects the
    scheduler model: :func:`job_makespan` (barrier, the default) or
    :func:`overlapped_makespan` (the streaming scheduler).

    Edge cases are defined, not NaN: a zero-duration workload (no tasks, or
    all tasks measuring 0.0s) reports a speedup of exactly 1.0 for every
    cluster size — there is nothing to speed up, and callers plotting or
    asserting on curves must not trip over division by zero.  More nodes
    than tasks is fine (extra nodes idle; the curve plateaus).
    """
    t1 = makespan(stats, 1)
    curve: dict[int, float] = {}
    for n in node_counts:
        tn = makespan(stats, n)
        curve[n] = t1 / tn if tn > 0 else 1.0
    return curve


def straggler_ratio(task_seconds: list[float]) -> float:
    """Max task time over mean task time — the straggler severity metric.

    Values near 1 mean homogeneous tasks (near-linear scaling); large values
    explain the sub-linear curves of Fig. 10.
    """
    if not task_seconds:
        return 1.0
    arr = np.asarray(task_seconds, dtype=np.float64)
    mean = arr.mean()
    return float(arr.max() / mean) if mean > 0 else 1.0
