"""Simulated-cluster scheduling: makespans and speedups (Fig. 10).

The paper's scalability experiment measures the speedup of each framework
component on clusters of growing size, observing sub-linear scaling for
feature identification and relationship evaluation because *straggler
reducers* (tasks over high-resolution functions) dominate the makespan.

We reproduce exactly that quantity without physical nodes: every task's wall
time is measured during a real single-process run, then replayed through a
Hadoop-like greedy scheduler (each task goes to the earliest-free node, in
submission order).  The speedup on n nodes is the single-node sequential time
divided by the scheduled makespan — stragglers emerge naturally from the
heterogeneous task times.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..utils.errors import MapReduceError
from .job import JobStats


def greedy_makespan(task_seconds: list[float], n_nodes: int) -> float:
    """Makespan of scheduling tasks onto ``n_nodes`` earliest-free-first.

    Tasks are assigned in submission order, mirroring Hadoop's slot
    assignment; no preemption.
    """
    if n_nodes < 1:
        raise MapReduceError("cluster needs at least one node")
    if not task_seconds:
        return 0.0
    if any(t < 0 for t in task_seconds):
        raise MapReduceError("task durations must be non-negative")
    loads = [0.0] * min(n_nodes, len(task_seconds))
    heap = [(0.0, i) for i in range(len(loads))]
    heapq.heapify(heap)
    for t in task_seconds:
        load, node = heapq.heappop(heap)
        heapq.heappush(heap, (load + t, node))
    return max(load for load, _ in heap)


def job_makespan(stats: JobStats, n_nodes: int) -> float:
    """Scheduled makespan of one job: map wave, then shuffle, then reduce wave.

    The map phase must finish before reducers start (a synchronization
    barrier, as in Hadoop), so the makespans add.  Shuffle time is treated as
    sequential coordination overhead.
    """
    return (
        greedy_makespan(stats.map_task_seconds, n_nodes)
        + stats.shuffle_seconds
        + greedy_makespan(stats.reduce_task_seconds, n_nodes)
    )


def speedup_curve(stats: JobStats, node_counts: list[int]) -> dict[int, float]:
    """Speedup (T1 / Tn) of one job for each cluster size.

    T1 is the scheduled makespan on a single node (= sequential time plus
    shuffle), Tn the makespan on n nodes.
    """
    t1 = job_makespan(stats, 1)
    curve: dict[int, float] = {}
    for n in node_counts:
        tn = job_makespan(stats, n)
        curve[n] = t1 / tn if tn > 0 else float("nan")
    return curve


def straggler_ratio(task_seconds: list[float]) -> float:
    """Max task time over mean task time — the straggler severity metric.

    Values near 1 mean homogeneous tasks (near-linear scaling); large values
    explain the sub-linear curves of Fig. 10.
    """
    if not task_seconds:
        return 1.0
    arr = np.asarray(task_seconds, dtype=np.float64)
    mean = arr.mean()
    return float(arr.max() / mean) if mean > 0 else 1.0
