"""The three framework jobs on the map-reduce engine (§5.4, Appendix C).

1. **Scalar Function Computation** — map tasks process record chunks of one
   data set and emit partial aggregates per (data set, resolution); reducers
   merge partials into the final value matrices.  (Partial aggregation in the
   mapper is the combiner pattern; the paper's record-level description has
   the same semantics with one emitted pair per tuple.)
2. **Feature Identification** — map tasks split functions by resolution;
   reducers build the merge-tree index and extract salient + extreme
   features for one function each.
3. **Relationship Computation** — map tasks enumerate (data set pair,
   resolution) combinations for a query; reducers evaluate all function
   pairs of one combination, including the restricted Monte Carlo tests.

Task wall times are recorded per job, so the Fig. 10 speedup experiment can
replay them through :func:`repro.mapreduce.cluster.speedup_curve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.clause import Clause
from ..core.features import FeatureExtractor
from ..core.operator import DatasetIndex, IndexedFunction, RelationReport, relation
from ..core.scalar_function import ScalarFunction
from ..data.aggregation import FunctionSpec, aggregate, default_specs
from ..data.dataset import Dataset
from ..spatial.city import CityModel
from ..spatial.resolution import SpatialResolution, viable_spatial_resolutions
from ..temporal.resolution import TemporalResolution, viable_temporal_resolutions
from ..utils.errors import MapReduceError
from .engine import default_engine
from .job import Engine, JobStats, MapReduceJob


def _chunk_dataset(dataset: Dataset, n_chunks: int) -> list[Dataset]:
    """Split a data set into record chunks (the map-task inputs of job 1)."""
    n = dataset.n_records
    n_chunks = max(1, min(n_chunks, n))
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    chunks = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        sel = slice(int(lo), int(hi))
        chunks.append(
            Dataset(
                dataset.schema,
                timestamps=dataset.timestamps[sel],
                x=None if dataset.x is None else dataset.x[sel],
                y=None if dataset.y is None else dataset.y[sel],
                regions=None if dataset.regions is None else dataset.regions[sel],
                keys={k: v[sel] for k, v in dataset.keys.items()},
                numerics={k: v[sel] for k, v in dataset.numerics.items()},
            )
        )
    return chunks


class ScalarFunctionJob(MapReduceJob):
    """Job 1: record chunks -> aggregated scalar functions per resolution.

    Inputs: ``((dataset_name, s_res, t_res), (chunk, regions, specs,
    step_range))``.  The mapper aggregates its chunk (partial matrices);
    the reducer sums partials.  Unique functions cannot be summed, so the
    mapper also emits the deduplicated (cell, identifier-hash) pairs and the
    reducer re-deduplicates globally.
    """

    def __init__(self, fill: str = "global_mean") -> None:
        self.fill = fill

    def map(self, key: Any, value: Any):
        chunk, regions, specs, step_range = value
        dataset_name, s_res, t_res = key
        partial: dict[str, Any] = {"n": chunk.n_records}
        # Density and attribute functions aggregate additively: compute
        # sums/counts on the chunk.  Unique functions need global dedup.
        aggs = aggregate(
            chunk,
            s_res,
            t_res,
            regions=regions,
            step_range=step_range,
            specs=[FunctionSpec(dataset_name, "density")],
            fill="zero",
        )
        partial["counts"] = aggs[0].counts
        sums: dict[str, np.ndarray] = {}
        valid: dict[str, np.ndarray] = {}
        for spec in specs:
            if spec.kind != "attribute":
                continue
            column = chunk.numerics[spec.attribute]
            cell_sum, cell_valid = _partial_attribute(
                chunk, column, s_res, t_res, regions, step_range
            )
            sums[spec.attribute] = cell_sum
            valid[spec.attribute] = cell_valid
        partial["sums"] = sums
        partial["valid"] = valid
        uniques: dict[str, np.ndarray] = {}
        for spec in specs:
            if spec.kind != "unique":
                continue
            uniques[spec.attribute] = _partial_unique_pairs(
                chunk, spec.attribute, s_res, t_res, regions, step_range
            )
        partial["uniques"] = uniques
        yield key, partial

    def reduce(self, key: Any, values: list[Any]):
        dataset_name, s_res, t_res = key
        counts = sum(v["counts"] for v in values if "counts" in v)
        merged: dict[str, Any] = {
            "counts": counts,
            "sums": _sum_dicts([v["sums"] for v in values]),
            "valid": _sum_dicts([v["valid"] for v in values]),
            "uniques": _merge_unique_dicts([v["uniques"] for v in values]),
        }
        yield key, merged


def _partial_attribute(
    chunk: Dataset,
    column: np.ndarray,
    s_res: SpatialResolution,
    t_res: TemporalResolution,
    regions,
    step_range: tuple[int, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell (sum, non-NaN count) of one numeric column for one chunk."""
    from ..data.aggregation import _assign_regions  # shared cell assignment

    region_idx, n_regions = _assign_regions(chunk, s_res, regions)
    buckets = t_res.bucket(chunk.timestamps)
    first, last = step_range
    n_steps = last - first + 1
    keep = (region_idx >= 0) & (buckets >= first) & (buckets <= last)
    keep &= ~np.isnan(column)
    cells = (buckets[keep] - first) * n_regions + region_idx[keep]
    n_cells = n_steps * n_regions
    sums = np.zeros(n_cells)
    np.add.at(sums, cells, column[keep])
    valid = np.bincount(cells, minlength=n_cells).astype(np.int64)
    return sums.reshape(n_steps, n_regions), valid.reshape(n_steps, n_regions)


def _partial_unique_pairs(
    chunk: Dataset,
    attribute: str,
    s_res: SpatialResolution,
    t_res: TemporalResolution,
    regions,
    step_range: tuple[int, int],
) -> np.ndarray:
    """Deduplicated (cell, identifier-hash) code pairs for one chunk.

    The identifier hash must be *process-independent*: chunks of one data
    set are mapped on different workers — separate interpreters under the
    process executor, separate hosts under the cluster executor — and the
    reducer merges their pairs by exact value.  Python's ``hash()`` is
    randomized per interpreter (``PYTHONHASHSEED``), which fork-based
    workers survive only by inheriting the parent's seed; ``crc32`` gives
    the same 31-bit code for the same identifier everywhere.
    """
    from zlib import crc32

    from ..data.aggregation import _assign_regions

    region_idx, n_regions = _assign_regions(chunk, s_res, regions)
    buckets = t_res.bucket(chunk.timestamps)
    first, last = step_range
    keep = (region_idx >= 0) & (buckets >= first) & (buckets <= last)
    cells = (buckets[keep] - first) * n_regions + region_idx[keep]
    ids = chunk.keys[attribute][keep]
    hashes = np.array(
        [crc32(str(v).encode("utf-8")) & 0x7FFFFFFF for v in ids],
        dtype=np.int64,
    )
    pairs = cells.astype(np.int64) * (2**31) + hashes
    return np.unique(pairs)


def _sum_dicts(dicts: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for d in dicts:
        for name, arr in d.items():
            out[name] = arr if name not in out else out[name] + arr
    return out


def _merge_unique_dicts(dicts: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    out: dict[str, list[np.ndarray]] = {}
    for d in dicts:
        for name, arr in d.items():
            out.setdefault(name, []).append(arr)
    return {name: np.unique(np.concatenate(arrs)) for name, arrs in out.items()}


class FeatureIdentificationJob(MapReduceJob):
    """Job 2: one reducer per scalar function builds its merge-tree features."""

    def __init__(self, extractor: FeatureExtractor | None = None) -> None:
        self.extractor = extractor or FeatureExtractor()

    def map(self, key: Any, value: Any):
        # The map phase splits functions by spatio-temporal resolution: the
        # shuffle key routes each function to its own reducer.
        function: ScalarFunction = value
        yield (key, function.function_id), function

    def reduce(self, key: Any, values: list[Any]):
        if len(values) != 1:
            raise MapReduceError(f"function key {key} shuffled {len(values)} values")
        function = values[0]
        features = self.extractor.extract(function)
        yield key, IndexedFunction(function=function, features=features)


class RelationshipJob(MapReduceJob):
    """Job 3: one reducer per (data set pair) evaluates all its relationships."""

    def __init__(
        self,
        clause: Clause | None = None,
        n_permutations: int = 1000,
        alternative: str = "two-sided",
        seed: int = 0,
        significance_mode: str = "exact",
    ) -> None:
        self.clause = clause or Clause()
        self.n_permutations = n_permutations
        self.alternative = alternative
        self.seed = seed
        self.significance_mode = significance_mode

    def map(self, key: Any, value: Any):
        # key: (name1, name2); value: (DatasetIndex, DatasetIndex).
        yield key, value

    def reduce(self, key: Any, values: list[Any]):
        index1, index2 = values[0]
        report = relation(
            index1,
            index2,
            clause=self.clause,
            n_permutations=self.n_permutations,
            alternative=self.alternative,
            seed=self.seed,
            significance_mode=self.significance_mode,
        )
        yield key, report


@dataclass
class PipelineRun:
    """Everything a full pipeline execution produced."""

    indexes: dict[str, DatasetIndex] = field(default_factory=dict)
    reports: list[RelationReport] = field(default_factory=list)
    scalar_stats: JobStats = field(default_factory=JobStats)
    feature_stats: JobStats = field(default_factory=JobStats)
    relationship_stats: JobStats = field(default_factory=JobStats)


class PolygamyPipeline:
    """End-to-end map-reduce execution of the Data Polygamy framework.

    This is the §5.4 deployment path; it produces the same indexes and
    reports as :class:`repro.core.Corpus` (which is the direct, in-process
    path) while recording per-task timings for the scalability experiments.
    """

    def __init__(
        self,
        city: CityModel,
        engine: Engine | None = None,
        extractor: FeatureExtractor | None = None,
        chunks_per_dataset: int = 4,
        fill: str = "global_mean",
    ) -> None:
        self.city = city
        self.engine = engine or default_engine()
        self.extractor = extractor or FeatureExtractor()
        self.chunks_per_dataset = chunks_per_dataset
        self.fill = fill

    # -- job 1 ----------------------------------------------------------------

    def run_scalar_functions(
        self,
        datasets: list[Dataset],
        spatial: tuple[SpatialResolution, ...] | None = None,
        temporal: tuple[TemporalResolution, ...] | None = None,
    ) -> tuple[dict[tuple, list[ScalarFunction]], JobStats]:
        """Job 1 for a collection: returns functions per (dataset, res) key."""
        inputs = []
        meta: dict[tuple, tuple] = {}
        for dataset in datasets:
            specs = default_specs(dataset)
            s_list = [
                r
                for r in viable_spatial_resolutions(dataset.schema.spatial_resolution)
                if r in self.city.available_resolutions()
                and (spatial is None or r in spatial)
            ]
            t_list = [
                r
                for r in viable_temporal_resolutions(dataset.schema.temporal_resolution)
                if temporal is None or r in temporal
            ]
            chunks = _chunk_dataset(dataset, self.chunks_per_dataset)
            for s_res in s_list:
                regions = (
                    None
                    if s_res is SpatialResolution.CITY
                    else self.city.region_set(s_res)
                )
                for t_res in t_list:
                    buckets = t_res.bucket(dataset.timestamps)
                    step_range = (int(buckets.min()), int(buckets.max()))
                    key = (dataset.name, s_res, t_res)
                    meta[key] = (dataset, specs, step_range)
                    for chunk in chunks:
                        inputs.append((key, (chunk, regions, specs, step_range)))
        outputs, stats = self.engine.run(ScalarFunctionJob(self.fill), inputs)

        functions: dict[tuple, list[ScalarFunction]] = {}
        for key, merged in outputs:
            dataset, specs, step_range = meta[key]
            _, s_res, t_res = key
            functions[key] = _materialize_functions(
                dataset,
                specs,
                s_res,
                t_res,
                step_range,
                merged,
                self.fill,
                spatial_pairs=self.city.spatial_pairs(s_res),
            )
        return functions, stats

    # -- job 2 ----------------------------------------------------------------

    def run_feature_identification(
        self, functions: dict[tuple, list[ScalarFunction]]
    ) -> tuple[dict[str, DatasetIndex], JobStats]:
        """Job 2: extract features for every function; build dataset indexes."""
        inputs = []
        for key, fns in functions.items():
            for fn in fns:
                inputs.append((key, fn))
        job = FeatureIdentificationJob(self.extractor)
        outputs, stats = self.engine.run(job, inputs)

        indexes: dict[str, DatasetIndex] = {}
        for (key, _fid), indexed in outputs:
            dataset_name, s_res, t_res = key
            ds_index = indexes.setdefault(dataset_name, DatasetIndex(dataset_name))
            ds_index.functions.setdefault((s_res, t_res), []).append(indexed)
        return indexes, stats

    # -- job 3 ----------------------------------------------------------------

    def run_relationships(
        self,
        indexes: dict[str, DatasetIndex],
        clause: Clause | None = None,
        n_permutations: int = 1000,
        seed: int = 0,
        significance_mode: str = "exact",
    ) -> tuple[list[RelationReport], JobStats]:
        """Job 3: evaluate every unordered data set pair."""
        names = sorted(indexes)
        inputs = []
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                inputs.append(((a, b), (indexes[a], indexes[b])))
        job = RelationshipJob(
            clause,
            n_permutations=n_permutations,
            seed=seed,
            significance_mode=significance_mode,
        )
        outputs, stats = self.engine.run(job, inputs)
        return [report for _, report in outputs], stats

    # -- end to end -------------------------------------------------------------

    def run(
        self,
        datasets: list[Dataset],
        clause: Clause | None = None,
        n_permutations: int = 1000,
        spatial: tuple[SpatialResolution, ...] | None = None,
        temporal: tuple[TemporalResolution, ...] | None = None,
        seed: int = 0,
        significance_mode: str = "exact",
    ) -> PipelineRun:
        """All three jobs back to back."""
        run = PipelineRun()
        functions, run.scalar_stats = self.run_scalar_functions(
            datasets, spatial=spatial, temporal=temporal
        )
        run.indexes, run.feature_stats = self.run_feature_identification(functions)
        run.reports, run.relationship_stats = self.run_relationships(
            run.indexes,
            clause=clause,
            n_permutations=n_permutations,
            seed=seed,
            significance_mode=significance_mode,
        )
        return run


def _materialize_functions(
    dataset: Dataset,
    specs: list[FunctionSpec],
    s_res: SpatialResolution,
    t_res: TemporalResolution,
    step_range: tuple[int, int],
    merged: dict[str, Any],
    fill: str,
    spatial_pairs: np.ndarray | None = None,
) -> list[ScalarFunction]:
    """Turn reduced partial aggregates into ScalarFunction instances."""
    from ..data.aggregation import fill_interpolate
    from ..graph.domain_graph import DomainGraph

    counts = merged["counts"]
    n_steps, n_regions = counts.shape
    first, last = step_range
    step_labels = np.arange(first, last + 1, dtype=np.int64)
    out: list[ScalarFunction] = []

    def build(function_id: str, values: np.ndarray) -> ScalarFunction:
        graph = DomainGraph(
            n_regions=n_regions,
            n_steps=n_steps,
            spatial_pairs=spatial_pairs,
            step_labels=step_labels,
        )
        return ScalarFunction(
            function_id, values, graph, s_res, t_res, dataset=dataset.name
        )

    for spec in specs:
        if spec.kind == "density":
            out.append(build(spec.function_id, counts.astype(np.float64)))
        elif spec.kind == "unique":
            pairs = merged["uniques"][spec.attribute]
            cells = (pairs // (2**31)).astype(np.int64)
            values = np.bincount(cells, minlength=n_steps * n_regions)
            out.append(
                build(
                    spec.function_id,
                    values.reshape(n_steps, n_regions).astype(np.float64),
                )
            )
        else:
            sums = merged["sums"][spec.attribute]
            valid = merged["valid"][spec.attribute]
            observed = valid > 0
            with np.errstate(invalid="ignore", divide="ignore"):
                values = np.where(observed, sums / np.maximum(valid, 1), np.nan)
            if fill == "interpolate":
                values = fill_interpolate(values, observed)
            elif fill == "zero":
                values = np.where(observed, values, 0.0)
            else:
                if not observed.any():
                    raise MapReduceError(
                        f"{spec.function_id}: no observed values to aggregate"
                    )
                values = np.where(observed, values, values[observed].mean())
            out.append(build(spec.function_id, values))
    return out
