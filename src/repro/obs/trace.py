"""Hierarchical tracing: spans collected per run into an exportable trace.

One :class:`Trace` is a process-wide collection of :class:`Span` records —
named intervals with monotonic start/duration, attributes, and a parent id
forming a tree.  Call sites never touch the trace directly; they use the
module-level :func:`span` context manager (and :func:`record_span` /
:func:`add_span` for intervals measured elsewhere, e.g. shipped back from a
cluster worker):

    with span("engine.run", executor="thread") as s:
        ...

Inert by default, same discipline as :mod:`repro.distributed.faults`: with
no trace installed (:data:`_ACTIVE` is ``None``), every hook is one module-
global read and a ``None`` check — ``span()`` hands back a shared no-op
context manager, so the production hot path stays untouched.  A dedicated
test pins the disabled-path overhead.

Activation is explicit (:func:`start_trace` / :func:`end_trace`) or
environment-steered: the CLI starts a trace when ``REPRO_TRACE`` names an
output file (see :mod:`repro.__main__`).

Exports:

* **JSONL** (:meth:`Trace.to_jsonl`) — one span object per line, the
  machine-diffable format the obs tests consume.
* **Chrome ``trace_event`` JSON** (:meth:`Trace.to_chrome`) — loadable in
  ``chrome://tracing`` and Perfetto.  Spans become complete (``"ph": "X"``)
  events; tracks (one per thread/worker lane) become named tids.  Extra
  repro payload (metrics snapshot, run reports) rides under a top-level
  ``"repro"`` key, which trace viewers ignore.

Timing: span starts are ``time.perf_counter()`` relative to the trace's
epoch — monotonic, never wall-clock, so spans cannot travel backwards
across an NTP step.  ``wall_epoch`` records the wall-clock time of the
epoch once, for humans correlating a trace with logs.
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from pathlib import Path
from typing import Any

__all__ = [
    "Span",
    "Trace",
    "add_span",
    "current_trace",
    "enabled",
    "end_trace",
    "record_span",
    "span",
    "start_trace",
]


class Span:
    """One closed interval of a trace (see module docstring)."""

    __slots__ = ("span_id", "parent_id", "name", "start", "duration", "attrs", "track")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        duration: float,
        attrs: dict[str, Any],
        track: str,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs
        self.track = track

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "track": self.track,
            "attrs": self.attrs,
        }


class _SpanHandle:
    """Context manager of one live span; records it on exit."""

    __slots__ = ("_trace", "span_id", "name", "attrs", "track", "_start", "_parent")

    def __init__(
        self,
        trace: "Trace",
        name: str,
        parent: int | None,
        track: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self._trace = trace
        self.name = name
        self.attrs = attrs
        self.track = track
        self._parent = parent
        self.span_id = trace._allocate_id()
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes mid-span (e.g. a result count known at the end)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        stack = self._trace._stack()
        if self._parent is None and stack:
            self._parent = stack[-1]
        stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._trace._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._trace._record(
            Span(
                self.span_id,
                self._parent,
                self.name,
                self._start - self._trace.epoch,
                duration,
                self.attrs,
                self.track or threading.current_thread().name,
            )
        )
        return False


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    span_id = None
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Trace:
    """One run's span collection (thread-safe; see module docstring)."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self.trace_id = f"{name}-{secrets.token_hex(4)}"
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self.spans: list[Span] = []
        #: Run reports (plain dicts) attached by engines while this trace
        #: was active; exported under the Chrome file's ``repro`` key.
        self.reports: list[dict] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    # -- recording -----------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _record(self, item: Span) -> None:
        with self._lock:
            self.spans.append(item)

    def span(
        self,
        name: str,
        parent: int | None = None,
        track: str | None = None,
        **attrs: Any,
    ) -> _SpanHandle:
        """A live span context manager.

        ``parent`` overrides the thread-local nesting (needed when the
        logical parent ran on another thread, e.g. a coordinator reader
        thread parenting under the run span); ``track`` overrides the lane
        name (default: the recording thread's name).
        """
        return _SpanHandle(self, name, parent, track, attrs)

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        parent_id: int | None = None,
        track: str = "",
        attrs: dict[str, Any] | None = None,
    ) -> int:
        """Record an already-measured interval (trace-relative ``start``).

        This is how remote intervals enter the tree: worker-side task spans
        ship back as (name, offset, duration) tuples and are re-based onto
        the coordinator's clock before landing here.  Returns the span id so
        callers can parent further spans under it.
        """
        span_id = self._allocate_id()
        self._record(
            Span(
                span_id,
                parent_id,
                name,
                start,
                duration,
                dict(attrs or {}),
                track or threading.current_thread().name,
            )
        )
        return span_id

    def rel_now(self) -> float:
        """Seconds since the trace epoch (the ``start`` coordinate space)."""
        return time.perf_counter() - self.epoch

    def add_report(self, report: dict) -> None:
        with self._lock:
            self.reports.append(report)

    # -- analysis ------------------------------------------------------------

    def duration(self) -> float:
        """Span-covered wall window: first start to last end."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def coverage(self) -> float:
        """Fraction of :meth:`duration` covered by the union of all spans."""
        total = self.duration()
        if total <= 0.0:
            return 0.0
        intervals = sorted((s.start, s.end) for s in self.spans)
        covered = 0.0
        cursor = intervals[0][0]
        for start, end in intervals:
            if end <= cursor:
                continue
            covered += end - max(start, cursor)
            cursor = end
        return covered / total

    def tree(self) -> dict[int | None, list[Span]]:
        """Spans grouped by parent id (``None`` keys the roots)."""
        children: dict[int | None, list[Span]] = {}
        for item in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            children.setdefault(item.parent_id, []).append(item)
        return children

    def shape(self) -> list[tuple[str, str | None]]:
        """The timing-free structure: sorted (name, parent name) pairs.

        Two runs of the same workload produce the same shape — the property
        the schema-stability tests pin down.
        """
        by_id = {s.span_id: s for s in self.spans}
        pairs = []
        for item in self.spans:
            parent = by_id.get(item.parent_id)
            pairs.append((item.name, parent.name if parent else None))
        return sorted(pairs)

    # -- export --------------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per span (plus a leading trace header)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            header = {
                "trace_id": self.trace_id,
                "name": self.name,
                "wall_epoch": self.wall_epoch,
                "n_spans": len(self.spans),
            }
            handle.write(json.dumps(header) + "\n")
            for item in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
                handle.write(json.dumps(item.to_dict()) + "\n")
        return path

    def chrome_events(self) -> list[dict]:
        """Spans as Chrome ``trace_event`` complete events (+ tid metadata)."""
        tracks = sorted({s.track for s in self.spans})
        tids = {track: index for index, track in enumerate(tracks)}
        events: list[dict] = [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tids[track],
                "args": {"name": track},
            }
            for track in tracks
        ]
        for item in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            args = {k: v for k, v in item.attrs.items()}
            args["span_id"] = item.span_id
            if item.parent_id is not None:
                args["parent_id"] = item.parent_id
            events.append(
                {
                    "ph": "X",
                    "name": item.name,
                    "pid": 1,
                    "tid": tids[item.track],
                    "ts": round(item.start * 1e6, 3),
                    "dur": round(item.duration * 1e6, 3),
                    "args": args,
                }
            )
        return events

    def to_chrome(self, path: str | Path, metrics: dict | None = None) -> Path:
        """Write the Chrome/Perfetto JSON file (see module docstring)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "repro": {
                "trace_id": self.trace_id,
                "name": self.name,
                "wall_epoch": self.wall_epoch,
                "coverage": self.coverage(),
                "reports": self.reports,
                "metrics": metrics or {},
            },
        }
        path.write_text(json.dumps(document, indent=1), encoding="utf-8")
        return path


#: The process-wide active trace; ``None`` (the default) keeps hooks inert.
_ACTIVE: Trace | None = None

_INSTALL_LOCK = threading.Lock()


def start_trace(name: str = "run") -> Trace:
    """Install a fresh trace as the process's active one and return it."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = Trace(name)
        return _ACTIVE


def end_trace() -> Trace | None:
    """Uninstall and return the active trace (hooks become inert again)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        trace, _ACTIVE = _ACTIVE, None
        return trace


def current_trace() -> Trace | None:
    return _ACTIVE


def enabled() -> bool:
    """True when a trace is collecting (the one branch hot paths pay)."""
    return _ACTIVE is not None


# -- hook shims (call sites use these; inert = one global read) --------------


def span(
    name: str, parent: int | None = None, track: str | None = None, **attrs: Any
):
    """Open a span on the active trace, or a shared no-op when disabled."""
    trace = _ACTIVE
    if trace is None:
        return _NOOP_SPAN
    return trace.span(name, parent=parent, track=track, **attrs)


def record_span(
    name: str,
    seconds: float,
    parent: int | None = None,
    track: str = "",
    **attrs: Any,
) -> int | None:
    """Record an interval of ``seconds`` ending now (measured elsewhere)."""
    trace = _ACTIVE
    if trace is None:
        return None
    return trace.add_span(
        name, trace.rel_now() - seconds, seconds, parent, track, attrs
    )


def add_span(
    name: str,
    start: float,
    duration: float,
    parent: int | None = None,
    track: str = "",
    **attrs: Any,
) -> int | None:
    """Record an interval at an explicit trace-relative ``start``."""
    trace = _ACTIVE
    if trace is None:
        return None
    return trace.add_span(name, start, duration, parent, track, attrs)
