"""Live HTTP exporter: ``GET /metrics`` (OpenMetrics) and ``GET /healthz``.

Opt-in and zero-cost when off — the exporter exists only after
:func:`start_exporter` (the CLI's ``--metrics-port`` flag) or
:func:`ensure_from_env` (:data:`ENV_METRICS_PORT`) ran; otherwise no
socket is bound, no thread started.  One exporter per process, stdlib
``http.server`` on a daemon thread, bound to localhost:

* ``GET /metrics`` — every registered metrics source merged and rendered
  in the OpenMetrics / Prometheus text exposition format (counter samples
  get the ``_total`` suffix, histograms their cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` samples plus ``_p50`` /
  ``_p95`` summary gauges, terminated by ``# EOF``).  The process
  registry (:func:`repro.obs.metrics.snapshot`) is always a source; the
  cluster coordinator adds its fleet aggregator, so a scrape mid-run sees
  per-worker *and* fleet-merged series.
* ``GET /healthz`` — JSON health merged from registered sources (the
  coordinator reports worker liveness from heartbeat ages, outstanding
  tasks, the active run, and quarantined inputs; engines report their
  fallback state).  Overall ``status`` is ``"ok"`` unless any source
  degrades it.

Metric names are sanitized for the exposition grammar (dots become
underscores): ``repro.query.seconds`` scrapes as ``repro_query_seconds``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from ..utils.errors import MapReduceError
from . import metrics as metrics_mod
from .logging import get_logger

__all__ = [
    "ENV_METRICS_PORT",
    "MetricsExporter",
    "active_exporter",
    "ensure_from_env",
    "merge_snapshots",
    "render_openmetrics",
    "start_exporter",
    "stop_exporter",
]

#: Environment knob: set to a port number to serve ``/metrics`` and
#: ``/healthz`` for the process's lifetime (``0`` binds an ephemeral
#: port, readable from ``active_exporter().port``).
ENV_METRICS_PORT = "REPRO_METRICS_PORT"

#: Content type of the OpenMetrics text exposition.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

logger = get_logger(__name__)


def _parse_series(series: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a snapshot series key ``name{k=v,...}`` into name + labels."""
    name, brace, inner = series.partition("{")
    if not brace:
        return series, []
    labels = []
    for part in inner.rstrip("}").split(","):
        key, _, value = part.partition("=")
        labels.append((key, value))
    return name, labels


def _sanitize_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: list[tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold several registry snapshots into one.

    Counters and gauges of the same series sum; histograms fold
    bucket-wise when their bounds agree (first one wins otherwise — a
    mixed-bounds collision is a caller bug, not a scrape failure).
    """
    merged: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for section in ("counters", "gauges"):
            for series, value in snapshot.get(section, {}).items():
                merged[section][series] = merged[section].get(series, 0) + value
        for series, entry in snapshot.get("histograms", {}).items():
            seen = merged["histograms"].get(series)
            if seen is None:
                merged["histograms"][series] = {
                    **entry,
                    "counts": list(entry["counts"]),
                }
            elif seen["bounds"] == entry["bounds"]:
                seen["counts"] = [
                    a + b for a, b in zip(seen["counts"], entry["counts"])
                ]
                seen["count"] += entry["count"]
                seen["total"] += entry["total"]
                mins = [m for m in (seen["min"], entry["min"]) if m is not None]
                maxes = [m for m in (seen["max"], entry["max"]) if m is not None]
                seen["min"] = min(mins) if mins else None
                seen["max"] = max(maxes) if maxes else None
    return merged


def render_openmetrics(snapshot: dict[str, Any]) -> str:
    """Render one (merged) snapshot as OpenMetrics text exposition."""
    families: dict[str, list[str]] = {}

    def family(name: str, kind: str) -> list[str]:
        sanitized = _sanitize_name(name)
        lines = families.get(sanitized)
        if lines is None:
            lines = families[sanitized] = [f"# TYPE {sanitized} {kind}"]
        return lines

    for series, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = _parse_series(series)
        lines = family(name, "counter")
        lines.append(
            f"{_sanitize_name(name)}_total{_render_labels(labels)} "
            f"{_format_value(value)}"
        )
    for series, value in sorted(snapshot.get("gauges", {}).items()):
        name, labels = _parse_series(series)
        lines = family(name, "gauge")
        lines.append(
            f"{_sanitize_name(name)}{_render_labels(labels)} "
            f"{_format_value(value)}"
        )
    for series, entry in sorted(snapshot.get("histograms", {}).items()):
        name, labels = _parse_series(series)
        lines = family(name, "histogram")
        sanitized = _sanitize_name(name)
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            bucket_labels = _render_labels(labels + [("le", repr(float(bound)))])
            lines.append(f"{sanitized}_bucket{bucket_labels} {cumulative}")
        cumulative += entry["counts"][len(entry["bounds"])]
        inf_labels = _render_labels(labels + [("le", "+Inf")])
        lines.append(f"{sanitized}_bucket{inf_labels} {cumulative}")
        lines.append(
            f"{sanitized}_sum{_render_labels(labels)} "
            f"{_format_value(float(entry['total']))}"
        )
        lines.append(
            f"{sanitized}_count{_render_labels(labels)} {entry['count']}"
        )
        for quantile_key in ("p50", "p95"):
            quantile_lines = family(f"{name}_{quantile_key}", "gauge")
            quantile_lines.append(
                f"{sanitized}_{quantile_key}{_render_labels(labels)} "
                f"{_format_value(float(entry.get(quantile_key, 0.0)))}"
            )
    out: list[str] = []
    for sanitized in sorted(families):
        out.extend(families[sanitized])
    out.append("# EOF")
    return "\n".join(out) + "\n"


class _Handler(BaseHTTPRequestHandler):
    exporter: "MetricsExporter"  # set on the subclass per exporter

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.exporter.render_metrics().encode("utf-8")
            self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz":
            payload = self.exporter.render_health()
            body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
            self._reply(200, "application/json; charset=utf-8", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("exporter: " + format, *args)


class MetricsExporter:
    """The per-process metrics/health HTTP endpoint (daemon thread)."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        self._lock = threading.Lock()
        #: Metrics sources: callables returning a snapshot-shaped dict.
        #: The process registry is always source zero.
        self._sources: list[Callable[[], dict[str, Any]]] = [
            metrics_mod.snapshot
        ]
        #: Health sources by name: callables returning a JSON-able dict.
        self._health: dict[str, Callable[[], dict[str, Any]]] = {}
        handler = type("_BoundHandler", (_Handler,), {"exporter": self})
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            raise MapReduceError(
                f"cannot bind the metrics exporter to {host}:{port}: {exc}"
            ) from exc
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            daemon=True,
            name="repro-metrics-exporter",
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def add_source(self, source: Callable[[], dict[str, Any]]) -> None:
        with self._lock:
            if source not in self._sources:
                self._sources.append(source)

    def remove_source(self, source: Callable[[], dict[str, Any]]) -> None:
        with self._lock:
            if source in self._sources:
                self._sources.remove(source)

    def add_health(
        self, name: str, source: Callable[[], dict[str, Any]]
    ) -> None:
        with self._lock:
            self._health[name] = source

    def remove_health(self, name: str) -> None:
        with self._lock:
            self._health.pop(name, None)

    def render_metrics(self) -> str:
        with self._lock:
            sources = list(self._sources)
        snapshots = []
        for source in sources:
            try:
                snapshots.append(source())
            except Exception:  # pragma: no cover - a dying source
                logger.exception("metrics source %r failed; skipping", source)
        return render_openmetrics(merge_snapshots(snapshots))

    def render_health(self) -> dict[str, Any]:
        with self._lock:
            health = dict(self._health)
        sources: dict[str, Any] = {}
        status = "ok"
        for name, source in sorted(health.items()):
            try:
                payload = source()
            except Exception as exc:  # pragma: no cover - a dying source
                payload = {"status": "error", "error": str(exc)}
            sources[name] = payload
            if payload.get("status", "ok") != "ok":
                status = "degraded"
        return {"status": status, "sources": sources}

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


_ACTIVE: MetricsExporter | None = None
_ACTIVE_LOCK = threading.Lock()


def start_exporter(port: int = 0, host: str = "127.0.0.1") -> MetricsExporter:
    """Start (or return) the process's exporter.

    Idempotent: a second call returns the running exporter — one endpoint
    per process, however many engines and coordinators attach to it.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is None:
            _ACTIVE = MetricsExporter(port=port, host=host)
            logger.info(
                "metrics exporter serving on %s/metrics", _ACTIVE.url
            )
        return _ACTIVE


def active_exporter() -> MetricsExporter | None:
    """The running exporter, or ``None`` (the default: no socket at all)."""
    return _ACTIVE


def stop_exporter() -> None:
    global _ACTIVE
    with _ACTIVE_LOCK:
        exporter, _ACTIVE = _ACTIVE, None
    if exporter is not None:
        exporter.close()


def ensure_from_env() -> MetricsExporter | None:
    """Start the exporter iff :data:`ENV_METRICS_PORT` is set.

    Called by the coordinator (and the CLI) so any driver process exports
    live metrics when the operator asks; with the variable unset this is
    a dictionary lookup and nothing else — zero sockets by default.
    """
    import os

    raw = os.environ.get(ENV_METRICS_PORT, "").strip()
    if not raw:
        return active_exporter()
    try:
        port = int(raw)
    except ValueError:
        raise MapReduceError(
            f"${ENV_METRICS_PORT} must be an integer port, got {raw!r}"
        ) from None
    return start_exporter(port)
