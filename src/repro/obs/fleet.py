"""Fleet metrics: ship per-worker registry deltas, fold them fleet-wide.

The live half of the metrics plane.  Each worker daemon owns one
:class:`DeltaShipper` over its process registry; every heartbeat it emits
the *delta* since the previous heartbeat (protocol v2.3 piggybacks it on
``Heartbeat.metrics``).  The coordinator owns one :class:`FleetAggregator`
that folds arriving deltas into a per-worker replica registry — counters
and histogram buckets add, so the fold is **order-independent**, which is
exactly the property the fixed-bound histograms were designed for
(:meth:`~repro.obs.metrics.Histogram.merge`).

Delivery is at-most-once with duplicates dropped: every delta carries a
per-shipper sequence number and a random per-process epoch.  The
aggregator ignores a ``(epoch, seq)`` it has already applied (a retried
frame), and resets a worker's replica when the epoch changes (the worker
restarted and its cumulative baselines started over).  A delta consumed
from the shipper but lost with its connection is *dropped, not
re-shipped* — the fleet view is advisory telemetry, never an input to
scheduling or results.

The delta itself is a plain JSON-able dict::

    {"seq": 7, "epoch": "3f9ab2c1",
     "counters":   [[name, [[label, value], ...], increment], ...],
     "gauges":     [[name, labels, value], ...],
     "histograms": [[name, labels, {"counts": [...], "count": n,
                                    "total": t, "min": m, "max": M}], ...]}

Histogram entries ship bucket-count *diffs* (plus cumulative min/max,
which fold idempotently through ``min``/``max``); ``bounds`` is included
only when a histogram deviates from :data:`DEFAULT_BUCKET_BOUNDS`, so a
steady-state heartbeat stays small.
"""

from __future__ import annotations

import secrets
import threading
from typing import Any

from .metrics import (
    DEFAULT_BUCKET_BOUNDS,
    REGISTRY,
    Histogram,
    MetricsRegistry,
)

__all__ = ["DeltaShipper", "FleetAggregator"]


class DeltaShipper:
    """Emits the changes of a registry since the previous emission.

    One per worker daemon (not per connection): baselines and the sequence
    number survive reconnects, so a new coordinator only ever sees honest
    increments and a retained coordinator keeps deduplicating by ``seq``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else REGISTRY
        self._lock = threading.Lock()
        self._seq = 0
        #: Random per-process epoch: a restarted worker reusing its id must
        #: not have its fresh seq=1 delta dropped as a duplicate.
        self.epoch = secrets.token_hex(4)
        self._counter_base: dict[tuple, int] = {}
        self._gauge_last: dict[tuple, float] = {}
        self._hist_base: dict[tuple, tuple[list[int], int, float]] = {}

    def next_delta(self) -> dict[str, Any] | None:
        """The delta since the last call, or ``None`` when nothing changed."""
        counters: list[list] = []
        gauges: list[list] = []
        histograms: list[list] = []
        with self._lock:
            for kind, name, labels, inst in self._registry.instruments():
                key = (kind, name, labels)
                pairs = [list(pair) for pair in labels]
                if kind == "counter":
                    value = inst.value
                    diff = value - self._counter_base.get(key, 0)
                    if diff:
                        counters.append([name, pairs, diff])
                        self._counter_base[key] = value
                elif kind == "gauge":
                    value = inst.value
                    if self._gauge_last.get(key) != value:
                        gauges.append([name, pairs, value])
                        self._gauge_last[key] = value
                else:
                    with inst._lock:
                        counts = list(inst.counts)
                        count, total = inst.count, inst.total
                        low, high = inst.min, inst.max
                    base_counts, base_count, base_total = self._hist_base.get(
                        key, ([0] * len(counts), 0, 0.0)
                    )
                    if count == base_count:
                        continue
                    entry: dict[str, Any] = {
                        "counts": [
                            now - before
                            for now, before in zip(counts, base_counts)
                        ],
                        "count": count - base_count,
                        "total": total - base_total,
                        "min": low,
                        "max": high,
                    }
                    if inst.bounds != DEFAULT_BUCKET_BOUNDS:
                        entry["bounds"] = list(inst.bounds)
                    histograms.append([name, pairs, entry])
                    self._hist_base[key] = (counts, count, total)
            if not counters and not gauges and not histograms:
                return None
            self._seq += 1
            return {
                "seq": self._seq,
                "epoch": self.epoch,
                "counters": counters,
                "gauges": gauges,
                "histograms": histograms,
            }


class FleetAggregator:
    """Folds worker deltas into per-worker replicas and a fleet-wide view.

    ``apply`` is called from the coordinator's per-worker reader threads;
    the replica registries are internally locked, so concurrent workers
    fold safely.  Because counters and histogram buckets fold by addition
    and gauges apply only when their delta's ``seq`` is the newest seen
    for that series, **any arrival order of a worker's deltas (including
    duplicates) converges to the same replica** — the property the fleet
    aggregation test pins.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._registries: dict[str, MetricsRegistry] = {}
        self._epochs: dict[str, str] = {}
        self._applied: dict[str, set[int]] = {}
        self._gauge_seq: dict[tuple, int] = {}
        self.deltas_applied = 0

    def apply(self, worker_id: str, delta: Any) -> bool:
        """Fold one delta in; ``False`` for duplicates or malformed input."""
        if not isinstance(delta, dict):
            return False
        seq = delta.get("seq")
        epoch = delta.get("epoch", "")
        if not isinstance(seq, int):
            return False
        with self._lock:
            if self._epochs.get(worker_id) != epoch:
                # Worker (re)started: cumulative baselines reset over there,
                # so the replica must reset here or restarts double-count.
                self._epochs[worker_id] = epoch
                self._registries[worker_id] = MetricsRegistry()
                self._applied[worker_id] = set()
                self._gauge_seq = {
                    key: value
                    for key, value in self._gauge_seq.items()
                    if key[0] != worker_id
                }
            applied = self._applied[worker_id]
            if seq in applied:
                return False
            applied.add(seq)
            registry = self._registries[worker_id]
            self.deltas_applied += 1
        for name, pairs, increment in delta.get("counters", ()):
            registry.counter(name, **dict(pairs)).inc(increment)
        for name, pairs, value in delta.get("gauges", ()):
            key = (worker_id, name, tuple(tuple(p) for p in pairs))
            with self._lock:
                newest = seq >= self._gauge_seq.get(key, 0)
                if newest:
                    self._gauge_seq[key] = seq
            if newest:
                registry.gauge(name, **dict(pairs)).set(value)
        for name, pairs, entry in delta.get("histograms", ()):
            bounds = tuple(entry.get("bounds", DEFAULT_BUCKET_BOUNDS))
            shard = Histogram(name, bounds=bounds)
            shard.counts = list(entry["counts"])
            shard.count = int(entry["count"])
            shard.total = float(entry["total"])
            if shard.count:
                shard.min = float(entry["min"])
                shard.max = float(entry["max"])
            registry.histogram(name, bounds, **dict(pairs)).merge(shard)
        return True

    def worker_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._registries)

    def worker_registry(self, worker_id: str) -> MetricsRegistry | None:
        with self._lock:
            return self._registries.get(worker_id)

    def fleet_registry(self) -> MetricsRegistry:
        """A fresh registry holding the merge of every worker's replica.

        Counters and histograms fold additively; gauges fold by *sum*
        (e.g. fleet queue depth is the sum of per-worker depths).
        """
        merged = MetricsRegistry()
        with self._lock:
            replicas = list(self._registries.values())
        for replica in replicas:
            for kind, name, labels, inst in replica.instruments():
                pairs = dict(labels)
                if kind == "counter":
                    merged.counter(name, **pairs).inc(inst.value)
                elif kind == "gauge":
                    target = merged.gauge(name, **pairs)
                    target.set(target.value + inst.value)
                else:
                    merged.histogram(name, inst.bounds, **pairs).merge(inst)
        return merged

    def snapshot(self) -> dict[str, Any]:
        """One combined snapshot: per-worker labeled series + fleet totals.

        Per-worker series carry a ``worker=<id>`` label; the fleet-merged
        totals keep the bare series names.  Shape-compatible with
        :meth:`MetricsRegistry.snapshot`, so the exporter merges it like
        any other source.
        """
        combined = self.fleet_registry().snapshot()
        with self._lock:
            replicas = list(self._registries.items())
        for worker_id, replica in replicas:
            part = replica.snapshot(worker=worker_id)
            for section in ("counters", "gauges", "histograms"):
                combined[section].update(part[section])
        return combined
