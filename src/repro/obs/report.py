"""Run reports: one human/JSON summary per engine run.

A :class:`RunReport` condenses a run's :class:`~repro.mapreduce.job.JobStats`
plus the engine-level context the stats alone cannot carry — which executor,
how many workers, the per-worker task/steal/retry breakdown of a cluster
run, data-plane bytes moved, and the fallback reason if the cluster
degraded.  Engines build one after every run (``engine.last_run_report``)
and, when a trace is active, attach its JSON form to the trace so
``repro stats TRACE.json`` can render the breakdown later.

``render()`` is the pretty text form; ``to_json()``/``from_json()`` are the
machine round trip.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..mapreduce.job import JobStats

__all__ = ["RunReport"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100.0:
        return f"{seconds:,.0f}s"
    if seconds >= 0.1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(n)} B"  # pragma: no cover - unreachable


@dataclass
class RunReport:
    """Summary of one engine run (see module docstring)."""

    job: str = ""
    executor: str = ""
    n_workers: int = 0
    n_map_tasks: int = 0
    n_reduce_tasks: int = 0
    n_outputs: int = 0
    map_seconds: float = 0.0
    reduce_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: Cluster runs fold the shuffle into map-result arrival (overlapped);
    #: local runs run it as a phase between map and reduce.
    shuffle_overlapped: bool = False
    #: Cluster only: tasks completed per worker id.
    worker_tasks: dict[str, int] = field(default_factory=dict)
    #: Cluster only: steal requests granted per worker id.
    worker_steals: dict[str, int] = field(default_factory=dict)
    #: Cluster only: worker-loss retry events of this run.
    retries: int = 0
    #: Cluster only: why the run degraded to a local executor, or ``None``.
    fallback: str | None = None
    #: Cluster only: artifact bytes served over worker sockets this run.
    bytes_served: int = 0
    #: Cluster only: distinct arrays promoted to spool artifacts this run.
    n_artifacts: int = 0

    @classmethod
    def from_stats(
        cls, stats: "JobStats", job: str, executor: str, n_workers: int, **extra: Any
    ) -> "RunReport":
        return cls(
            job=job,
            executor=executor,
            n_workers=n_workers,
            n_map_tasks=len(stats.map_task_seconds),
            n_reduce_tasks=len(stats.reduce_task_seconds),
            n_outputs=stats.n_outputs,
            map_seconds=sum(stats.map_task_seconds),
            reduce_seconds=sum(stats.reduce_task_seconds),
            shuffle_seconds=stats.shuffle_seconds,
            wall_seconds=stats.wall_seconds,
            **extra,
        )

    @property
    def busy_seconds(self) -> float:
        """Total task + shuffle time (the sequential cost of the run)."""
        return self.map_seconds + self.reduce_seconds + self.shuffle_seconds

    @property
    def overhead_seconds(self) -> float:
        """Wall time not accounted to tasks or shuffle (dispatch, waits)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return max(0.0, self.wall_seconds - self.busy_seconds)

    @property
    def parallelism(self) -> float:
        """Achieved busy/wall ratio (1.0 means perfectly serial)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.busy_seconds / self.wall_seconds

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RunReport":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def render(self) -> str:
        """The pretty text report (``repro stats`` output)."""
        shuffle_note = " (overlapped fold)" if self.shuffle_overlapped else ""
        lines = [
            f"run report — {self.job or 'job'} on {self.executor or '?'} "
            f"({self.n_workers} worker(s))",
            f"  tasks:   {self.n_map_tasks} map + {self.n_reduce_tasks} reduce "
            f"-> {self.n_outputs} output(s)",
            f"  phases:  map {_fmt_seconds(self.map_seconds)}, "
            f"shuffle {_fmt_seconds(self.shuffle_seconds)}{shuffle_note}, "
            f"reduce {_fmt_seconds(self.reduce_seconds)}",
        ]
        if self.wall_seconds > 0.0:
            lines.append(
                f"  wall:    {_fmt_seconds(self.wall_seconds)} "
                f"(busy {_fmt_seconds(self.busy_seconds)}, overhead "
                f"{_fmt_seconds(self.overhead_seconds)}, "
                f"{self.parallelism:.2f}x busy/wall)"
            )
        if self.worker_tasks:
            lines.append("  workers:")
            for worker in sorted(self.worker_tasks):
                steals = self.worker_steals.get(worker, 0)
                steal_note = f", {steals} steal grant(s)" if steals else ""
                lines.append(
                    f"    {worker}: {self.worker_tasks[worker]} task(s)"
                    f"{steal_note}"
                )
        if self.retries:
            lines.append(f"  retries: {self.retries} worker-loss event(s)")
        if self.n_artifacts or self.bytes_served:
            lines.append(
                f"  data plane: {self.n_artifacts} artifact(s) spooled, "
                f"{_fmt_bytes(self.bytes_served)} served over sockets"
            )
        if self.fallback:
            lines.append(f"  fallback: {self.fallback}")
        return "\n".join(lines)
