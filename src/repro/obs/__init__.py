"""repro.obs — tracing, metrics, logging, and run reports.

The observability layer of the pipeline, three planes plus reports:

* :mod:`repro.obs.trace` — hierarchical spans collected into a per-run
  :class:`Trace`, exportable as JSONL and Chrome ``trace_event`` JSON.
  Inert by default; enabled via :func:`start_trace` or the CLI's
  ``--trace`` / :data:`ENV_TRACE` knob.
* :mod:`repro.obs.metrics` — process-local counters, gauges, and
  deterministic log-bucket histograms (:data:`REGISTRY`), always on.
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy
  (:func:`get_logger`) with an optional JSON-lines formatter
  (:data:`ENV_LOG_JSON`).
* :mod:`repro.obs.report` — :class:`RunReport`, the per-run summary
  engines expose as ``last_run_report`` and ``repro stats`` renders.

The live plane builds on those:

* :mod:`repro.obs.fleet` — per-worker registry deltas shipped on
  heartbeats (:class:`DeltaShipper`) and folded fleet-wide by the
  coordinator (:class:`FleetAggregator`).
* :mod:`repro.obs.export` — the opt-in ``/metrics`` (OpenMetrics) and
  ``/healthz`` HTTP endpoint (``--metrics-port`` / :data:`ENV_METRICS_PORT`).
* :mod:`repro.obs.top` — the ``repro top`` live terminal view polling an
  exporter.
* :mod:`repro.obs.profile` — the wall-clock sampling profiler with
  collapsed-stack output (``--profile`` / :data:`ENV_PROFILE`).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

from .export import (
    ENV_METRICS_PORT,
    MetricsExporter,
    active_exporter,
    ensure_from_env,
    render_openmetrics,
    start_exporter,
    stop_exporter,
)
from .fleet import DeltaShipper, FleetAggregator
from .logging import (
    ENV_LOG_JSON,
    JsonLinesFormatter,
    ROOT_LOGGER_NAME,
    capture_logging,
    configure_logging,
    get_logger,
)
from .metrics import (
    DEFAULT_BUCKET_BOUNDS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from .metrics import reset as reset_metrics
from .metrics import snapshot as metrics_snapshot
from .profile import (
    ENV_PROFILE,
    Profiler,
    active_profiler,
    end_profile,
    parse_collapsed,
    start_profile,
)
from .profile import enabled as profile_enabled
from .report import RunReport
from .trace import (
    Span,
    Trace,
    add_span,
    current_trace,
    enabled,
    end_trace,
    record_span,
    span,
    start_trace,
)

#: Environment knob: set to a file path to trace a CLI run; ``.json``
#: suffix selects Chrome ``trace_event`` output, anything else JSONL.
ENV_TRACE = "REPRO_TRACE"

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "DeltaShipper",
    "ENV_LOG_JSON",
    "ENV_METRICS_PORT",
    "ENV_PROFILE",
    "ENV_TRACE",
    "Counter",
    "FleetAggregator",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "MetricsExporter",
    "MetricsRegistry",
    "Profiler",
    "REGISTRY",
    "ROOT_LOGGER_NAME",
    "RunReport",
    "Span",
    "Trace",
    "active_exporter",
    "active_profiler",
    "add_span",
    "capture_logging",
    "configure_logging",
    "counter",
    "current_trace",
    "enabled",
    "end_profile",
    "end_trace",
    "ensure_from_env",
    "gauge",
    "get_logger",
    "histogram",
    "metrics_snapshot",
    "parse_collapsed",
    "profile_enabled",
    "record_span",
    "render_openmetrics",
    "reset_metrics",
    "span",
    "start_exporter",
    "start_profile",
    "start_trace",
    "stop_exporter",
]
