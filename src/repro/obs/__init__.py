"""repro.obs — tracing, metrics, logging, and run reports.

The observability layer of the pipeline, three planes plus reports:

* :mod:`repro.obs.trace` — hierarchical spans collected into a per-run
  :class:`Trace`, exportable as JSONL and Chrome ``trace_event`` JSON.
  Inert by default; enabled via :func:`start_trace` or the CLI's
  ``--trace`` / :data:`ENV_TRACE` knob.
* :mod:`repro.obs.metrics` — process-local counters, gauges, and
  deterministic log-bucket histograms (:data:`REGISTRY`), always on.
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy
  (:func:`get_logger`) with an optional JSON-lines formatter
  (:data:`ENV_LOG_JSON`).
* :mod:`repro.obs.report` — :class:`RunReport`, the per-run summary
  engines expose as ``last_run_report`` and ``repro stats`` renders.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

from .logging import (
    ENV_LOG_JSON,
    JsonLinesFormatter,
    ROOT_LOGGER_NAME,
    capture_logging,
    configure_logging,
    get_logger,
)
from .metrics import (
    DEFAULT_BUCKET_BOUNDS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from .metrics import reset as reset_metrics
from .metrics import snapshot as metrics_snapshot
from .report import RunReport
from .trace import (
    Span,
    Trace,
    add_span,
    current_trace,
    enabled,
    end_trace,
    record_span,
    span,
    start_trace,
)

#: Environment knob: set to a file path to trace a CLI run; ``.json``
#: suffix selects Chrome ``trace_event`` output, anything else JSONL.
ENV_TRACE = "REPRO_TRACE"

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "ENV_LOG_JSON",
    "ENV_TRACE",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "REGISTRY",
    "ROOT_LOGGER_NAME",
    "RunReport",
    "Span",
    "Trace",
    "add_span",
    "capture_logging",
    "configure_logging",
    "counter",
    "current_trace",
    "enabled",
    "end_trace",
    "gauge",
    "get_logger",
    "histogram",
    "metrics_snapshot",
    "record_span",
    "reset_metrics",
    "span",
    "start_trace",
]
