"""The ``repro.*`` logger hierarchy and JSON-lines structured logging.

Library modules obtain loggers through :func:`get_logger`, which anchors
every name under the ``repro`` root (``repro.distributed.coordinator``,
``repro.persist`` — module ``__name__`` values pass through unchanged, bare
script names are prefixed).  The root carries a ``NullHandler``: a library
must never print on its own, so an application that configures nothing
stays silent, per the stdlib logging contract.

Applications (the CLI, worker daemons, CI scripts) opt into output with
:func:`configure_logging`.  The format is human text by default; setting
``REPRO_LOG_JSON`` (or ``json_lines=True``) switches to one JSON object
per line::

    {"ts": 1754640000.123, "level": "WARNING",
     "logger": "repro.distributed.coordinator",
     "message": "requeueing after loss: ..."}

which is what log aggregators and the CI observability job consume.
"""

from __future__ import annotations

import io
import json
import logging
import os
import sys
import time
from typing import Any, TextIO

__all__ = [
    "ENV_LOG_JSON",
    "JsonLinesFormatter",
    "ROOT_LOGGER_NAME",
    "configure_logging",
    "get_logger",
]

#: The root of the hierarchy; every :func:`get_logger` name lives under it.
ROOT_LOGGER_NAME = "repro"

#: Set (to anything but ``""``/``"0"``) to make :func:`configure_logging`
#: emit JSON lines instead of human-formatted text.
ENV_LOG_JSON = "REPRO_LOG_JSON"

# A library never emits on its own: the NullHandler swallows records until
# an application attaches a real handler (and stops the "no handlers could
# be found" stderr warning in the meantime).
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger anchored under the ``repro`` hierarchy.

    Pass ``__name__``: package modules (already ``repro.x.y``) keep their
    name; anything else (a script's ``__main__``, a bare tool name) is
    prefixed so its records still flow through the ``repro`` root handler.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record (see module docstring for the schema)."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            entry["exc"] = self.formatException(record.exc_info)
        extra = getattr(record, "data", None)
        if isinstance(extra, dict):
            entry.update(extra)
        return json.dumps(entry, default=str)


class _TextFormatter(logging.Formatter):
    """Human format with sub-second timestamps (the non-JSON default)."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)-7s %(name)s: %(message)s")

    def formatTime(self, record: logging.LogRecord, datefmt: str | None = None) -> str:
        base = time.strftime("%H:%M:%S", time.localtime(record.created))
        return f"{base}.{int(record.msecs):03d}"


#: Attribute marking handlers this module installed, so reconfiguration
#: replaces them instead of stacking duplicates.
_MANAGED = "_repro_obs_handler"


def configure_logging(
    level: int = logging.INFO,
    stream: TextIO | None = None,
    json_lines: bool | None = None,
) -> logging.Handler:
    """Attach (or replace) the application handler on the ``repro`` root.

    ``json_lines=None`` (the default) consults :data:`ENV_LOG_JSON`.
    Idempotent: calling again swaps the managed handler, so a CLI command
    and a test harness can both call it without doubling every line.
    Returns the installed handler (tests capture through it).
    """
    if json_lines is None:
        json_lines = os.environ.get(ENV_LOG_JSON, "") not in ("", "0")
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else _TextFormatter())
    setattr(handler, _MANAGED, True)
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def capture_logging(level: int = logging.INFO, json_lines: bool = True) -> io.StringIO:
    """Route ``repro.*`` records into a returned buffer (test helper)."""
    buffer = io.StringIO()
    configure_logging(level=level, stream=buffer, json_lines=json_lines)
    return buffer
