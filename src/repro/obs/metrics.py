"""Process-local metrics: counters, gauges, log-bucket histograms.

One :data:`REGISTRY` per process is the source of truth for the counters
that used to live scattered across engine attributes (``last_run_*``
fields, fault ``fired`` counters) — those attributes survive as thin views
over registry instruments.  Unlike tracing, metrics are *always on*: an
increment is one lock and one integer add, cheap enough for every
control-plane event (retries, fault injections, backoff sleeps), while hot
data-plane loops record aggregates once per run.

Instruments are keyed by ``(name, labels)``, so per-worker or per-site
series coexist under one metric name::

    counter("repro.cluster.worker_tasks", worker="host0").inc()
    histogram("repro.query.seconds").observe(elapsed)

Histograms use **fixed log-scale bucket bounds**
(:data:`DEFAULT_BUCKET_BOUNDS`, quarter-decades from 1 µs to 10 ks):
because every histogram of a metric shares the same bounds, merging two of
them is an element-wise add of bucket counts — deterministic regardless of
merge order or which process observed what.  That is what lets per-worker
latency histograms fold into one cluster-wide distribution without a
re-bucketing step.

Snapshots (:func:`snapshot`) are plain JSON-able dicts, embedded into
benchmark records and trace exports so perf numbers carry their context.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "reset",
    "snapshot",
]

#: Quarter-decade log-scale bucket upper bounds: 10**(k/4) for k in
#: [-24, -23, ..., 16], i.e. 1e-6 .. 1e4 seconds.  Fixed for every
#: histogram so merges are a deterministic element-wise count add.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    round(10.0 ** (k / 4.0), 12) for k in range(-24, 17)
)

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: Labels) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-written value (e.g. retries of the most recent run)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bound log-bucket histogram of observations.

    ``counts[i]`` counts observations ``<= bounds[i]`` (and greater than
    ``bounds[i-1]``); the final slot counts overflow past the last bound.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "_lock",
        "counts",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self._lock = threading.Lock()
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (deterministic: bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket bounds "
                f"({len(other.bounds)} vs {len(self.bounds)} bounds)"
            )
        with self._lock:
            for index, n in enumerate(other.counts):
                self.counts[index] += n
            self.count += other.count
            self.total += other.total
            if other.count:
                self.min = min(self.min, other.min)
                self.max = max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """Bucket-bound estimate of the ``q`` quantile (0 when empty)."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for index, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max  # pragma: no cover - rank <= count always hits

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """The per-process instrument table (thread-safe, JSON-snapshottable)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Gauge] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(name, key[1])
            return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(name, key[1])
            return instrument

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(name, key[1], bounds)
            return instrument

    def counters(self, name: str) -> Iterable[Counter]:
        """Every series of one counter name (across label sets)."""
        with self._lock:
            return [c for (n, _), c in self._counters.items() if n == name]

    def instruments(self) -> list[tuple[str, str, Labels, Any]]:
        """Every live series as ``(kind, name, labels, instrument)`` rows.

        The raw-iteration face of the registry: the fleet delta shipper and
        the fleet-wide merge walk this instead of reaching into the keyed
        dicts.  The rows alias the live instruments (no copy).
        """
        with self._lock:
            return (
                [("counter", n, la, i) for (n, la), i in self._counters.items()]
                + [("gauge", n, la, i) for (n, la), i in self._gauges.items()]
                + [
                    ("histogram", n, la, i)
                    for (n, la), i in self._histograms.items()
                ]
            )

    def snapshot(self, **extra_labels: Any) -> dict[str, Any]:
        """A JSON-able view: ``{"counters": {...}, "gauges": {...}, ...}``.

        ``extra_labels`` are merged into every series key — how the fleet
        aggregator renders one worker's registry as ``worker=<id>`` series.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)

        def key(name: str, labels: Labels) -> str:
            if extra_labels:
                merged = dict(labels)
                merged.update(extra_labels)
                labels = _label_key(merged)
            return _series_name(name, labels)

        return {
            "counters": {
                key(name, labels): instrument.value
                for (name, labels), instrument in sorted(counters.items())
            },
            "gauges": {
                key(name, labels): instrument.value
                for (name, labels), instrument in sorted(gauges.items())
            },
            "histograms": {
                key(name, labels): instrument.to_dict()
                for (name, labels), instrument in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests isolate themselves with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry — the source of truth behind the thin
#: ``last_run_*`` attribute views on engines and coordinators.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: Any) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(
    name: str, bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS, **labels: Any
) -> Histogram:
    return REGISTRY.histogram(name, bounds, **labels)


def snapshot() -> dict[str, Any]:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
