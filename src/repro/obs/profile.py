"""Wall-clock sampling profiler emitting collapsed-stack output.

The fourth plane of ``repro.obs``: a daemon thread samples
``sys._current_frames()`` at a fixed interval and counts how often each
stack was on-CPU-or-waiting, keyed by the root-first collapsed form
flamegraph tools consume::

    engine.py:run:319;executor.py:submit:88;worker.py:_compute:201 42

Enabled via ``repro --profile OUT`` / :data:`ENV_PROFILE` on the driver;
workers profile per-task when the coordinator sets ``JoinRun.profile``
and ship their counts back on ``TaskResult.profile`` (the v2.3 analogue
of the v2.2 span piggyback), where the driver folds them in under a
``worker:<id>;`` prefix so one flamegraph spans the whole fleet.

Disabled is the default and costs what disabled tracing costs: the
module-level functions check one global against ``None`` and the shared
:data:`_NOOP_PROFILER` swallows calls without allocating — the same
no-op-singleton contract ``tests/obs/test_overhead.py`` pins for spans.
"""

from __future__ import annotations

import os.path
import sys
import threading
from typing import Any, Iterable

__all__ = [
    "DEFAULT_INTERVAL",
    "ENV_PROFILE",
    "Profiler",
    "active_profiler",
    "enabled",
    "end_profile",
    "parse_collapsed",
    "start_profile",
]

#: Environment knob: set to an output path to profile a CLI run; the
#: collapsed-stack file is written when the command finishes.
ENV_PROFILE = "REPRO_PROFILE"

#: Sampling period in seconds (200 Hz): coarse enough that the sampler
#: is invisible next to real work, fine enough to resolve task phases.
DEFAULT_INTERVAL = 0.005


def _frame_name(frame: Any) -> str:
    code = frame.f_code
    filename = os.path.basename(code.co_filename)
    name = f"{filename}:{code.co_name}:{frame.f_lineno}"
    # ";" joins frames and " " splits stack from count in the collapsed
    # grammar, so neither may survive inside a frame name.
    return name.replace(";", ":").replace(" ", "_")


def _collapse(frame: Any) -> str:
    frames = []
    while frame is not None:
        frames.append(_frame_name(frame))
        frame = frame.f_back
    return ";".join(reversed(frames))


class Profiler:
    """Samples every thread's stack on a daemon thread until stopped.

    ``threads`` restricts sampling to the given thread idents (the worker
    uses this to profile exactly the slot thread running a task); the
    sampler always skips its own thread.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        threads: Iterable[int] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(
                f"profiler interval must be > 0 seconds, got {interval}"
            )
        self.interval = interval
        self._threads = frozenset(threads) if threads is not None else None
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self.samples = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._sample_loop, daemon=True, name="repro-profiler"
        )
        self._thread.start()

    def _sample_loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            with self._lock:
                for ident, frame in frames.items():
                    if ident == own:
                        continue
                    if self._threads is not None and ident not in self._threads:
                        continue
                    stack = _collapse(frame)
                    if stack:
                        self._counts[stack] = self._counts.get(stack, 0) + 1
                        self.samples += 1

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def counts(self) -> dict[str, int]:
        """A copy of the ``{collapsed_stack: samples}`` table so far."""
        with self._lock:
            return dict(self._counts)

    def add_counts(self, counts: dict[str, int], prefix: str = "") -> None:
        """Fold another profile in, optionally under a root frame.

        The coordinator folds worker-shipped task profiles in with
        ``prefix="worker:<id>"`` so fleet stacks stay distinguishable.
        """
        if not isinstance(counts, dict):
            return
        with self._lock:
            for stack, n in counts.items():
                if not isinstance(stack, str) or not isinstance(n, int):
                    continue
                if prefix:
                    stack = f"{prefix};{stack}" if stack else prefix
                self._counts[stack] = self._counts.get(stack, 0) + n
                self.samples += n

    def collapsed(self) -> str:
        """The profile in collapsed-stack text form (sorted, one per line)."""
        with self._lock:
            rows = sorted(self._counts.items())
        return "".join(f"{stack} {n}\n" for stack, n in rows)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed())


def parse_collapsed(text: str) -> dict[str, int]:
    """Parse collapsed-stack text back into a ``{stack: count}`` table.

    The inverse of :meth:`Profiler.collapsed`; the round-trip test uses it,
    and it accepts anything flamegraph tooling would (blank lines skipped,
    counts folded across duplicate stacks).
    """
    counts: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, raw = line.rpartition(" ")
        if not stack:
            raise ValueError(f"collapsed-stack line has no count: {line!r}")
        counts[stack] = counts.get(stack, 0) + int(raw)
    return counts


class _NoopProfiler:
    """Shared do-nothing stand-in returned while profiling is off."""

    __slots__ = ()
    interval = 0.0
    samples = 0

    def stop(self) -> None:
        pass

    def counts(self) -> dict[str, int]:
        return {}

    def add_counts(self, counts: dict[str, int], prefix: str = "") -> None:
        pass

    def collapsed(self) -> str:
        return ""

    def write(self, path: str) -> None:
        pass


#: The one no-op instance; identity-pinned by the overhead test.
_NOOP_PROFILER = _NoopProfiler()

_ACTIVE: Profiler | None = None
_ACTIVE_LOCK = threading.Lock()


def start_profile(
    interval: float = DEFAULT_INTERVAL,
    threads: Iterable[int] | None = None,
) -> Profiler:
    """Start the process-wide profiler (idempotent while one is running)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is None:
            _ACTIVE = Profiler(interval=interval, threads=threads)
        return _ACTIVE


def end_profile() -> Profiler | None:
    """Stop the process-wide profiler and return it (holding its counts)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        profiler, _ACTIVE = _ACTIVE, None
    if profiler is not None:
        profiler.stop()
    return profiler


def active_profiler():
    """The running profiler, or the shared no-op when profiling is off."""
    return _ACTIVE if _ACTIVE is not None else _NOOP_PROFILER


def enabled() -> bool:
    return _ACTIVE is not None
