"""``repro top`` — a dependency-free live view over the metrics exporter.

Polls ``GET /metrics`` on a running exporter (any driver or coordinator
started with ``--metrics-port`` / ``REPRO_METRICS_PORT``), parses the
OpenMetrics text back into series, and redraws a per-worker table of task
throughput, steal grants, retries, queue depth, and latency quantiles
until the exporter goes away (the run ended) or the frame budget runs
out.  Everything here is stdlib: ``urllib`` to poll, ANSI clears to
redraw, and the same bucket math the histograms use server-side.

The rendering is pure (:func:`render_frame` takes parsed series, returns
a string) so tests drive it without sockets or timing.
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request
from typing import Any, TextIO

__all__ = [
    "parse_prometheus",
    "quantile_from_buckets",
    "render_frame",
    "run_top",
]

#: Series keyed ``(family_name, ((label, value), ...))`` → sample value.
Series = dict[tuple[str, tuple[tuple[str, str], ...]], float]


def parse_prometheus(text: str) -> Series:
    """Parse OpenMetrics/Prometheus text exposition into a series table.

    Only what ``repro top`` needs: sample lines (comments and ``# EOF``
    skipped), labels split on unescaped quotes not required because repro
    label values never contain commas or quotes.
    """
    series: Series = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        sample, _, raw_value = line.rpartition(" ")
        name, brace, inner = sample.partition("{")
        labels: tuple[tuple[str, str], ...] = ()
        if brace:
            pairs = []
            for part in inner.rstrip("}").split(","):
                key, _, value = part.partition("=")
                pairs.append((key, value.strip('"')))
            labels = tuple(sorted(pairs))
        series[(name, labels)] = float(raw_value)
    return series


def quantile_from_buckets(
    buckets: list[tuple[float, float]], q: float
) -> float:
    """Estimate the ``q`` quantile from cumulative ``(le, count)`` buckets.

    Mirrors :meth:`repro.obs.metrics.Histogram.quantile`: returns the
    upper bound of the first bucket whose cumulative count reaches the
    rank (the same bounded-relative-error estimate the server computes).
    """
    if not buckets:
        return 0.0
    buckets = sorted(buckets)
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = max(1.0, q * total)
    for bound, cumulative in buckets:
        if cumulative >= rank:
            return bound
    return buckets[-1][0]  # pragma: no cover - last cumulative == total


def _label(labels: tuple[tuple[str, str], ...], key: str) -> str | None:
    for k, v in labels:
        if k == key:
            return v
    return None


def _strip(labels: tuple[tuple[str, str], ...], *keys: str) -> tuple:
    return tuple((k, v) for k, v in labels if k not in keys)


def _fmt_seconds(value: float) -> str:
    if value <= 0:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_frame(series: Series, *, elapsed: float = 0.0) -> str:
    """Render one ``repro top`` frame from a parsed series table."""
    workers: dict[str, dict[str, float]] = {}

    def worker_row(worker: str) -> dict[str, float]:
        return workers.setdefault(
            worker,
            {"tasks": 0.0, "steals": 0.0, "queue": 0.0, "losses": 0.0},
        )

    hist_buckets: dict[str, list[tuple[float, float]]] = {}
    totals = {"retries": 0.0, "fallbacks": 0.0, "deltas": 0.0}
    for (name, labels), value in series.items():
        worker = _label(labels, "worker")
        if name in ("repro_worker_tasks_total", "repro_cluster_worker_tasks_total"):
            if worker:
                worker_row(worker)["tasks"] += value
        elif name == "repro_cluster_steal_grants_total":
            if worker:
                worker_row(worker)["steals"] += value
        elif name == "repro_worker_queue_depth":
            if worker:
                worker_row(worker)["queue"] += value
        elif name == "repro_cluster_worker_losses_total":
            if worker:
                worker_row(worker)["losses"] += value
        elif name == "repro_cluster_retries_total":
            totals["retries"] += value
        elif name == "repro_cluster_fallbacks_total":
            totals["fallbacks"] += value
        elif name == "repro_cluster_metrics_deltas_total":
            totals["deltas"] += value
        elif name.endswith("_bucket"):
            family = name[: -len("_bucket")]
            if family not in (
                "repro_query_seconds",
                "repro_worker_task_seconds",
            ):
                continue
            le = _label(labels, "le")
            if le is None or worker is not None:
                continue  # fleet-merged series only; skip per-worker shards
            bound = float("inf") if le == "+Inf" else float(le)
            hist_buckets.setdefault(family, []).append((bound, value))

    lines = [
        f"repro top — {len(workers)} worker(s)"
        + (f" — {elapsed:.0f}s elapsed" if elapsed else "")
    ]
    lines.append(
        f"  retries={totals['retries']:.0f}"
        f"  fallbacks={totals['fallbacks']:.0f}"
        f"  metric-deltas={totals['deltas']:.0f}"
    )
    for family in sorted(hist_buckets):
        buckets = [(b, c) for b, c in hist_buckets[family] if b != float("inf")]
        count = max((c for _, c in hist_buckets[family]), default=0.0)
        p50 = quantile_from_buckets(buckets, 0.50)
        p95 = quantile_from_buckets(buckets, 0.95)
        p99 = quantile_from_buckets(buckets, 0.99)
        label = family.removeprefix("repro_").replace("_", ".")
        lines.append(
            f"  {label}: n={count:.0f}"
            f"  p50={_fmt_seconds(p50)}"
            f"  p95={_fmt_seconds(p95)}"
            f"  p99={_fmt_seconds(p99)}"
        )
    header = f"  {'WORKER':<18} {'TASKS':>8} {'STEALS':>8} {'QUEUE':>7} {'LOSSES':>7}"
    lines.append(header)
    for worker in sorted(workers):
        row = workers[worker]
        lines.append(
            f"  {worker:<18} {row['tasks']:>8.0f} {row['steals']:>8.0f}"
            f" {row['queue']:>7.0f} {row['losses']:>7.0f}"
        )
    if not workers:
        lines.append("  (no worker series yet — fleet warming up)")
    return "\n".join(lines) + "\n"


def _fetch(url: str, timeout: float = 2.0) -> str | None:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8", "replace")
    except (urllib.error.URLError, OSError, ValueError):
        return None


#: Consecutive failed scrapes (with no frame ever drawn) before giving up.
_MISS_LIMIT = 5


def run_top(
    url: str,
    interval: float = 1.0,
    frames: int | None = None,
    stream: TextIO | None = None,
) -> int:
    """Poll ``url``/metrics and redraw until the exporter goes away.

    Returns 0 after at least one successful frame (the exporter
    disappearing afterwards means the run ended — normal exit), and 2 if
    the exporter was never reachable at all.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    base = url.rstrip("/")
    metrics_url = base if base.endswith("/metrics") else base + "/metrics"
    clear = "\x1b[2J\x1b[H" if getattr(out, "isatty", lambda: False)() else ""
    start = time.monotonic()
    drawn = 0
    misses = 0
    while frames is None or drawn < frames:
        text = _fetch(metrics_url)
        if text is None:
            if drawn:
                out.write("repro top: exporter gone — run ended.\n")
                return 0
            misses += 1
            if misses >= _MISS_LIMIT:
                out.write(f"repro top: no exporter at {metrics_url}\n")
                return 2
        else:
            frame = render_frame(
                parse_prometheus(text), elapsed=time.monotonic() - start
            )
            out.write(clear + frame)
            out.flush()
            drawn += 1
            if frames is not None and drawn >= frames:
                break
        time.sleep(interval)
    return 0
