"""Incremental index maintenance: fingerprint, diff, rebuild only what changed.

Urban data arrives continuously — new taxi days, new 311 records, new
sensors — but a persisted index (:mod:`repro.persist`) is write-once: any
change used to force a full ``Corpus.build_index`` recompute.  This
subsystem turns the saved index into a *maintainable* artifact:

* :mod:`.fingerprint` hashes each partition's raw inputs (data set schema +
  columns, function specs, city model, extractor config, fill policy) into
  content fingerprints recorded in the index manifest (format v2);
* :mod:`.plan` diffs a live :class:`~repro.core.corpus.Corpus` against a
  saved index's fingerprints into an :class:`UpdatePlan` of partitions to
  keep / rebuild / add / drop (rendered by ``repro update --dry-run``);
* :mod:`.update` applies the plan: only the changed partitions'
  ``IndexPartitionJob`` tasks run — through any
  :class:`~repro.mapreduce.job.Engine` backend (thread, process, cluster)
  unchanged — then the results are spliced with the untouched partition
  files on disk and the manifest is rewritten atomically.

The subsystem's contract, asserted per executor by the property suite: an
incrementally updated index is **bit-identical** to a from-scratch rebuild
of the same catalog, and unchanged partitions are provably never rewritten.

Entry points: ``CorpusIndex.update(path, corpus)`` and
``repro update --data CAT --index IDX [--dry-run]``.
"""

from .fingerprint import (
    city_digest,
    config_digest,
    dataset_digest,
    fingerprints_for_inputs,
    partition_fingerprint,
    specs_digest,
)
from .plan import ACTIONS, PlanEntry, UpdatePlan, plan_update
from .update import UpdateReport, apply_update, update_index

__all__ = [
    "ACTIONS",
    "PlanEntry",
    "UpdatePlan",
    "UpdateReport",
    "apply_update",
    "city_digest",
    "config_digest",
    "dataset_digest",
    "fingerprints_for_inputs",
    "partition_fingerprint",
    "plan_update",
    "specs_digest",
    "update_index",
]
