"""Content fingerprints: what exactly went into a (data set, resolution) partition.

A partition of the persisted index (one NPZ file, see
:mod:`repro.persist.format`) is a pure function of five inputs: the data
set's schema and raw columns, the function specs evaluated over it, the
city model (regions + adjacency), the feature-extractor configuration, and
the missing-data fill policy.  This module hashes each of those into a
SHA-256 digest and combines them — together with the partition's
(spatial, temporal) resolution — into one *partition fingerprint*.

``Corpus.build_index`` records the fingerprints in the index manifest
(format v2); :func:`repro.incremental.plan.plan_update` recomputes them from
a live corpus and diffs.  Two equal fingerprints mean the partition's bytes
on disk are already what a from-scratch rebuild would produce (partition
files are byte-deterministic, see
:func:`repro.persist.format.deterministic_savez`), so the file can be
reused untouched.

Hashing is orders of magnitude cheaper than indexing: one linear pass over
the raw columns versus merge-tree construction per scalar function.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any

import numpy as np

from ..core.features import FeatureExtractor
from ..data.aggregation import FunctionSpec
from ..data.catalog import city_to_dict, schema_to_dict
from ..data.dataset import Dataset
from ..persist.format import extractor_to_dict
from ..spatial.city import CityModel
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution

#: Domain separator baked into every digest: fingerprints are only
#: comparable between builds that hash the same things the same way.
FINGERPRINT_SCHEME = "repro-fingerprint-v1"


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


def _hash_parts(*parts) -> str:
    digest = hashlib.sha256(FINGERPRINT_SCHEME.encode())
    for part in parts:
        # Length-prefix each part so concatenation ambiguity cannot make
        # two different input sequences hash alike.  Parts are bytes or
        # C-contiguous memoryviews (raw columns hash without a copy).
        size = part.nbytes if isinstance(part, memoryview) else len(part)
        digest.update(size.to_bytes(8, "little"))
        digest.update(part)
    return digest.hexdigest()


def _column_bytes(name: str, column: np.ndarray) -> list:
    """Identity + content of one column, shape- and dtype-sensitive.

    Returns buffer-protocol parts for :func:`_hash_parts`: numeric/string
    columns hash as zero-copy memoryviews of their raw bytes; object
    columns (ragged identifiers) degrade to a canonical JSON of
    type-tagged reprs, so a value flipping type (``1`` vs ``"1"``) still
    changes the digest.
    """
    array = np.ascontiguousarray(column)
    header = f"{name}|{array.dtype.str}|{array.shape}".encode()
    if array.dtype == object:
        tagged = [f"{type(v).__name__}:{v!r}" for v in array.tolist()]
        return [header, _canonical(tagged)]
    return [header, memoryview(array).cast("B")]


def dataset_digest(dataset: Dataset) -> str:
    """SHA-256 over a data set's schema and every raw column.

    Any change — an appended day of records, an edited value, a renamed
    attribute, a different native resolution — changes the digest.
    """
    parts: list[bytes] = [_canonical(schema_to_dict(dataset.schema))]
    parts += _column_bytes("timestamps", dataset.timestamps)
    for name, column in (("x", dataset.x), ("y", dataset.y)):
        if column is not None:
            parts += _column_bytes(name, column)
    if dataset.regions is not None:
        parts += _column_bytes("regions", dataset.regions)
    for name in dataset.schema.key_attributes:
        parts += _column_bytes(f"key:{name}", dataset.keys[name])
    for name in dataset.schema.numeric_attributes:
        parts += _column_bytes(f"num:{name}", dataset.numerics[name])
    return _hash_parts(*parts)


def city_digest(city: CityModel) -> str:
    """SHA-256 of the full city model (region polygons + adjacency)."""
    return _hash_parts(_canonical(city_to_dict(city)))


def config_digest(extractor: FeatureExtractor, fill: str) -> str:
    """SHA-256 of the indexing configuration (extractor knobs + fill policy)."""
    return _hash_parts(
        _canonical({"extractor": extractor_to_dict(extractor), "fill": fill})
    )


def specs_digest(specs: list[FunctionSpec]) -> str:
    """SHA-256 of a function-spec list, *order-sensitive*.

    Spec order determines function order inside the partition file, which a
    bit-identical rebuild must preserve — so reordering is a change.
    """
    return _hash_parts(_canonical([asdict(spec) for spec in specs]))


def partition_fingerprint(
    ds_digest: str,
    sp_digest: str,
    ct_digest: str,
    cf_digest: str,
    spatial: SpatialResolution,
    temporal: TemporalResolution,
) -> str:
    """Combine the component digests into one partition fingerprint."""
    return _hash_parts(
        ds_digest.encode(),
        sp_digest.encode(),
        ct_digest.encode(),
        cf_digest.encode(),
        f"{spatial.value}|{temporal.value}".encode(),
    )


def fingerprints_for_inputs(
    inputs: list[tuple[Any, Any]],
    city: CityModel,
    extractor: FeatureExtractor,
    fill: str,
) -> dict[tuple[str, SpatialResolution, TemporalResolution], str]:
    """Fingerprint every partition of a ``Corpus.partition_inputs`` list.

    Keys match :attr:`CorpusIndex.partition_fingerprints`:
    ``(dataset_name, spatial, temporal)``.  Data sets and spec lists are
    hashed once each and reused across their resolutions.
    """
    ct = city_digest(city)
    cf = config_digest(extractor, fill)
    ds_cache: dict[str, str] = {}
    sp_cache: dict[int, str] = {}
    out: dict[tuple[str, SpatialResolution, TemporalResolution], str] = {}
    for (name, s_res, t_res), (_seq, dataset, specs, _regions, _pairs) in inputs:
        if name not in ds_cache:
            ds_cache[name] = dataset_digest(dataset)
        if id(specs) not in sp_cache:
            sp_cache[id(specs)] = specs_digest(specs)
        out[(name, s_res, t_res)] = partition_fingerprint(
            ds_cache[name], sp_cache[id(specs)], ct, cf, s_res, t_res
        )
    return out
