"""The update applier: execute an :class:`~repro.incremental.plan.UpdatePlan`.

Only the changed partitions' :class:`~repro.core.corpus.IndexPartitionJob`
map tasks are routed through the ``Engine.run(job, inputs)`` contract — the
same job, the same payload shape, the same engines as a from-scratch build,
so thread, process and cluster executors all work unchanged.  Untouched
partitions are spliced in by hard link (falling back to copy on filesystems
without link support): their bytes are never read, never rewritten, and a
kept file keeps its inode and mtime — which is how tests *prove* reuse.

Atomicity mirrors :func:`repro.persist.index_io.save_index`: everything is
assembled in a ``.<name>.update-tmp`` sibling and swapped into place with
:func:`~repro.persist.index_io.replace_directory` only after the new
manifest is on disk.  A crash at any point before the swap leaves the old
index fully loadable; a crash during the swap leaves it in the retired
``.<name>.old`` sibling.

The payoff invariant (asserted by ``tests/incremental/test_property.py``):
an updated index is **bit-identical** to ``corpus.build_index(...).save()``
— partition bytes exactly, the manifest up to the two wall-clock timing
counters — because partition files are byte-deterministic and the manifest
is built by the same :func:`~repro.persist.index_io.build_manifest` both
ways.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from .. import obs
from ..core.corpus import Corpus, IndexPartitionJob, IndexStats, resolution_scope
from ..data.aggregation import FunctionSpec
from ..mapreduce.engine import default_engine
from ..mapreduce.job import Engine
from ..persist.format import (
    INDEX_MANIFEST,
    PARTITION_DIR,
    partition_filename,
    write_partition,
)
from ..persist.index_io import build_manifest, replace_directory, write_manifest
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import PersistError
from .plan import UpdatePlan, plan_update


@dataclass
class UpdateReport:
    """What an update did (or, for a dry run, would do).

    ``bytes_reused`` counts partition payloads spliced in without being
    read or rewritten; ``bytes_rewritten`` counts freshly written partition
    payloads plus the manifest.  ``applied`` is False for dry runs; a no-op
    apply sets ``applied`` with zero bytes rewritten (nothing on disk is
    touched, not even the manifest).
    """

    plan: UpdatePlan = field(repr=False)
    n_reused: int = 0
    n_rebuilt: int = 0
    n_added: int = 0
    n_dropped: int = 0
    bytes_reused: int = 0
    bytes_rewritten: int = 0
    wall_seconds: float = 0.0
    applied: bool = False

    @classmethod
    def from_plan(cls, plan: UpdatePlan) -> "UpdateReport":
        """A fresh (not yet applied) report carrying the plan's counts."""
        counts = plan.counts
        return cls(
            plan=plan,
            n_reused=counts["keep"],
            n_rebuilt=counts["rebuild"],
            n_added=counts["add"],
            n_dropped=counts["drop"],
        )

    @property
    def noop(self) -> bool:
        """True when the saved index already matched the live corpus."""
        return self.plan.is_noop

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        if not self.applied:
            return self.plan.describe()
        if self.noop:
            return (
                f"index at {self.plan.index_path} is up to date: "
                f"{self.n_reused} partition(s) reused "
                f"({self.bytes_reused:,} bytes untouched), nothing rewritten"
            )
        return (
            f"updated {self.plan.index_path} in {self.wall_seconds:.2f}s: "
            f"rebuilt {self.n_rebuilt}, added {self.n_added}, "
            f"dropped {self.n_dropped}, reused {self.n_reused} partition(s) "
            f"({self.bytes_reused:,} bytes untouched, "
            f"{self.bytes_rewritten:,} bytes written)"
        )


def _link_or_copy(source: Path, target: Path) -> None:
    """Splice one kept partition into the staging directory.

    Hard link when the filesystem allows it (same directory tree, so same
    device): zero I/O, and the file provably keeps its identity (inode).
    """
    try:
        os.link(source, target)
    except OSError:  # pragma: no cover - filesystem without hard links
        shutil.copy2(source, target)


def apply_update(
    path: str | Path,
    corpus: Corpus,
    spatial: tuple[SpatialResolution, ...] | None = None,
    temporal: tuple[TemporalResolution, ...] | None = None,
    specs: dict[str, list[FunctionSpec]] | None = None,
    engine: Engine | None = None,
    plan: UpdatePlan | None = None,
) -> UpdateReport:
    """Reconcile the saved index at ``path`` with ``corpus`` in place.

    Pass a precomputed ``plan`` (from :func:`plan_update` with the same
    arguments) to skip re-planning; otherwise one is computed here.  A
    no-op plan returns without touching the directory at all.  Engine
    resolution follows ``Corpus.build_index``: an explicit ``engine`` wins,
    else ``$REPRO_EXECUTOR`` / ``$REPRO_WORKERS`` decide.
    """
    start = time.perf_counter()
    directory = Path(path).expanduser().resolve()
    if plan is None:
        plan = plan_update(
            directory, corpus, spatial=spatial, temporal=temporal, specs=specs
        )
    report = UpdateReport.from_plan(plan)

    if plan.is_noop:
        report.bytes_reused = sum(
            int((e.old_record or {}).get("nbytes", 0)) for e in plan.by_action("keep")
        )
        report.applied = True
        report.wall_seconds = time.perf_counter() - start
        return report

    staging = directory.parent / f".{directory.name}.update-tmp"
    retired = directory.parent / f".{directory.name}.update-old"
    if staging.exists():
        shutil.rmtree(staging)
    (staging / PARTITION_DIR).mkdir(parents=True)

    # Route only the changed partitions through the engine — the identical
    # IndexPartitionJob (and payload shape) a from-scratch build uses.
    changed = plan.by_action("rebuild") + plan.by_action("add")
    with obs.span(
        "incremental.apply", index=directory.name, n_changed=len(changed)
    ) as apply_span:
        built_functions: dict[Any, list] = {}
        built_stats: dict[Any, IndexStats] = {}
        if changed:
            if engine is None:
                engine = default_engine(map_chunk_size="auto")
            job = IndexPartitionJob(corpus.extractor, corpus.fill)
            outputs, _ = engine.run(job, [e.input for e in changed])
            for name, (ds_index, stats_by_resolution) in outputs:
                for resolution, functions in ds_index.functions.items():
                    built_functions[(name, *resolution)] = functions
                for resolution, stats in stats_by_resolution.items():
                    built_stats[(name, *resolution)] = stats

        # Assemble the new partition set in canonical seq order: keeps are
        # spliced by link, changed partitions are written fresh.
        records: list[dict] = []
        total_stats = IndexStats()
        for dataset in corpus.datasets.values():
            total_stats.raw_bytes += dataset.nbytes()
        for entry in sorted(
            (e for e in plan.entries if e.action != "drop"),
            key=lambda e: e.new_seq,
        ):
            key = (entry.dataset, entry.spatial, entry.temporal)
            filename = partition_filename(
                entry.new_seq, entry.dataset, entry.spatial, entry.temporal
            )
            target = staging / PARTITION_DIR / filename
            if entry.action == "keep":
                old = entry.old_record
                source = directory / old["file"]
                if not source.is_file():
                    raise PersistError(
                        f"cannot reuse partition {old['file']!r}: file is missing"
                    )
                _link_or_copy(source, target)
                record = dict(old)
                record["seq"] = entry.new_seq
                record["file"] = f"{PARTITION_DIR}/{filename}"
                record["fingerprint"] = entry.fingerprint
                report.bytes_reused += int(old.get("nbytes", 0))
                stats = IndexStats(**old["stats"]) if "stats" in old else IndexStats()
            else:  # rebuild / add
                functions = built_functions[key]
                meta = write_partition(target, functions)
                record = {
                    "seq": entry.new_seq,
                    "dataset": entry.dataset,
                    "spatial": entry.spatial.value,
                    "temporal": entry.temporal.value,
                    "file": f"{PARTITION_DIR}/{filename}",
                    **meta,
                }
                stats = built_stats[key]
                record["stats"] = asdict(stats)
                record["fingerprint"] = entry.fingerprint
                report.bytes_rewritten += int(meta["nbytes"])
            records.append(record)
            total_stats.merge(stats)

        manifest = build_manifest(
            city=corpus.city,
            extractor=corpus.extractor,
            fill=corpus.fill,
            datasets=list(corpus.datasets),
            stats=total_stats,
            records=records,
            scope=resolution_scope(spatial, temporal),
        )
        manifest_path = staging / INDEX_MANIFEST
        write_manifest(manifest_path, manifest)
        report.bytes_rewritten += manifest_path.stat().st_size

        replace_directory(staging, directory, retired)
        report.applied = True
        report.wall_seconds = time.perf_counter() - start
        apply_span.set(
            bytes_reused=report.bytes_reused,
            bytes_rewritten=report.bytes_rewritten,
        )
    return report


def update_index(
    path: str | Path,
    corpus: Corpus,
    spatial: tuple[SpatialResolution, ...] | None = None,
    temporal: tuple[TemporalResolution, ...] | None = None,
    specs: dict[str, list[FunctionSpec]] | None = None,
    dry_run: bool = False,
    engine: Engine | None = None,
) -> UpdateReport:
    """Plan — and unless ``dry_run`` — apply an incremental index update.

    The convenience entry point behind ``CorpusIndex.update`` and the
    ``repro update`` CLI verb.
    """
    plan = plan_update(path, corpus, spatial=spatial, temporal=temporal, specs=specs)
    if dry_run:
        return UpdateReport.from_plan(plan)
    return apply_update(
        path,
        corpus,
        spatial=spatial,
        temporal=temporal,
        specs=specs,
        engine=engine,
        plan=plan,
    )
