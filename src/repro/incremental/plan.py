"""The update planner: diff a live corpus against a saved index.

:func:`plan_update` enumerates the partitions a from-scratch
``Corpus.build_index`` would produce (via ``Corpus.partition_inputs``, so
planner and builder can never disagree), fingerprints them
(:mod:`.fingerprint`), and compares against the fingerprints recorded in
the saved index's manifest.  The result is an :class:`UpdatePlan` — one
:class:`PlanEntry` per partition, each with one of four actions:

* ``keep`` — fingerprint matches: the on-disk NPZ already holds exactly
  what a rebuild would write (partition files are byte-deterministic), so
  the applier relinks it untouched;
* ``rebuild`` — the partition exists but its inputs changed (data set
  content, specs, city model, extractor config or fill — the entry's
  ``reason`` says which);
* ``add`` — the partition is new (new data set, or a resolution newly
  viable);
* ``drop`` — the saved partition has no counterpart in the live corpus
  (data set removed, or resolution no longer requested).

A v1 index (no fingerprints recorded) plans as a full rebuild: reuse must
be *proven*, never assumed.  The plan renders human-readably via
:meth:`UpdatePlan.describe` (the ``repro update --dry-run`` output) and is
executed by :func:`repro.incremental.update.apply_update`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .. import obs
from ..core.corpus import Corpus, resolution_scope
from ..data.aggregation import FunctionSpec
from ..persist.index_io import read_manifest
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .fingerprint import city_digest, config_digest, fingerprints_for_inputs

#: Plan actions in rendering order.
ACTIONS = ("keep", "rebuild", "add", "drop")


@dataclass
class PlanEntry:
    """One partition's fate under the plan."""

    action: str
    dataset: str
    spatial: SpatialResolution
    temporal: TemporalResolution
    reason: str
    #: Position in the new canonical partition order (None for drops).
    new_seq: int | None = None
    #: The saved manifest's partition record (None for adds).
    old_record: dict | None = None
    #: Fingerprint the partition will carry after the update (None for drops).
    fingerprint: str | None = None
    #: The partition's ``IndexPartitionJob`` map input (rebuild/add only);
    #: carries the live Dataset by reference, so excluded from repr.
    input: tuple[Any, Any] | None = field(default=None, repr=False)

    @property
    def resolution_label(self) -> str:
        """``spatial/temporal`` rendering used by describe()."""
        return f"{self.spatial.value}/{self.temporal.value}"


@dataclass
class UpdatePlan:
    """Every partition's fate plus the context needed to apply or render it."""

    index_path: Path
    entries: list[PlanEntry]
    #: Data set name order of the saved manifest and of the live corpus.
    saved_datasets: list[str]
    new_datasets: list[str]
    #: Saved manifest format version (1 plans as full rebuild).
    saved_version: int
    #: ``stats.raw_bytes`` of the saved manifest and of the live corpus.
    #: A data set with *zero* viable partitions leaves no fingerprint to
    #: diff, but its size still feeds the manifest's raw-byte counter — so
    #: a no-op claim must check this too.
    saved_raw_bytes: int = 0
    new_raw_bytes: int = 0
    #: Recorded resolution scope of the saved manifest vs. the scope this
    #: plan was computed for (see ``repro.core.corpus.resolution_scope``).
    saved_scope: dict | None = None
    new_scope: dict | None = None
    #: Whether the extractor/fill config or city model digests differ from
    #: the saved manifest's.  With partitions present this shows up as
    #: rebuilds anyway, but an index whose data sets have *zero* viable
    #: partitions would otherwise no-op past a config change, leaving a
    #: stale manifest.
    config_changed: bool = False
    city_changed: bool = False

    def by_action(self, action: str) -> list[PlanEntry]:
        """All entries with one action, in plan order."""
        return [e for e in self.entries if e.action == action]

    @property
    def counts(self) -> dict[str, int]:
        """``{action: entry count}`` for all four actions."""
        return {a: len(self.by_action(a)) for a in ACTIONS}

    @property
    def n_changed(self) -> int:
        """Partitions the applier must write or remove."""
        c = self.counts
        return c["rebuild"] + c["add"] + c["drop"]

    @property
    def is_noop(self) -> bool:
        """True when applying would rewrite nothing at all.

        Every partition is a ``keep`` in its original slot (same seq, same
        file name), the manifest's data set list is unchanged, and the
        raw-byte accounting still matches — so the manifest on disk is
        already exactly what the update would write.
        """
        if self.n_changed or self.saved_datasets != self.new_datasets:
            return False
        if self.saved_raw_bytes != self.new_raw_bytes:
            return False
        if self.saved_scope != self.new_scope:
            return False
        if self.config_changed or self.city_changed:
            return False
        for entry in self.entries:
            record = entry.old_record or {}
            if record.get("seq") != entry.new_seq:
                return False
        return True

    def describe(self) -> str:
        """Human-readable rendering (the ``repro update --dry-run`` output)."""
        lines = [f"update plan for {self.index_path}"]
        if self.is_noop:
            lines.append("  index is up to date; nothing to do")
        width = max((len(e.dataset) for e in self.entries), default=0)
        res_width = max((len(e.resolution_label) for e in self.entries), default=0)
        for entry in self.entries:
            lines.append(
                f"  {entry.action:<8s} {entry.dataset:<{width}s} "
                f"{entry.resolution_label:<{res_width}s}  ({entry.reason})"
            )
        c = self.counts
        lines.append(
            f"{len(self.entries)} partitions: {c['keep']} keep, "
            f"{c['rebuild']} rebuild, {c['add']} add, {c['drop']} drop"
        )
        return "\n".join(lines)


def plan_update(
    path: str | Path,
    corpus: Corpus,
    spatial: tuple[SpatialResolution, ...] | None = None,
    temporal: tuple[TemporalResolution, ...] | None = None,
    specs: dict[str, list[FunctionSpec]] | None = None,
) -> UpdatePlan:
    """Diff the saved index at ``path`` against ``corpus``.

    ``spatial``/``temporal``/``specs`` mirror ``Corpus.build_index``: the
    plan targets exactly the index that ``build_index`` with the same
    arguments would produce.  Reads only the manifest — no partition file
    is opened.  Raises :class:`~repro.utils.errors.PersistError` for a
    missing or corrupt index.
    """
    directory = Path(path).expanduser().resolve()
    with obs.span("incremental.plan", index=directory.name) as plan_span:
        manifest = read_manifest(directory)
        version = int(manifest["format_version"])

        saved_fingerprints = manifest.get("fingerprints") or {}
        config_changed = saved_fingerprints.get("config") != config_digest(
            corpus.extractor, corpus.fill
        )
        city_changed = saved_fingerprints.get("city") != city_digest(corpus.city)

        inputs = corpus.partition_inputs(
            spatial=spatial, temporal=temporal, specs=specs
        )
        fingerprints = fingerprints_for_inputs(
            inputs, corpus.city, corpus.extractor, corpus.fill
        )

        saved: dict[tuple[str, SpatialResolution, TemporalResolution], dict] = {}
        for record in manifest["partitions"]:
            key = (
                record["dataset"],
                SpatialResolution(record["spatial"]),
                TemporalResolution(record["temporal"]),
            )
            saved[key] = record

        entries: list[PlanEntry] = []
        matched: set[tuple[str, SpatialResolution, TemporalResolution]] = set()
        for new_seq, ((name, s_res, t_res), value) in enumerate(inputs):
            key = (name, s_res, t_res)
            fingerprint = fingerprints[key]
            record = saved.get(key)
            if record is None:
                action, reason = "add", "not in index"
            else:
                matched.add(key)
                old_fingerprint = record.get("fingerprint")
                if old_fingerprint == fingerprint:
                    action, reason = "keep", "fingerprint match"
                elif old_fingerprint is None:
                    action = "rebuild"
                    reason = f"no fingerprint recorded (format v{version})"
                elif config_changed:
                    action, reason = "rebuild", "extractor/fill configuration changed"
                elif city_changed:
                    action, reason = "rebuild", "city model changed"
                else:
                    # The stored fingerprint is a composite; with config and
                    # city ruled out, the change is in the data set or its
                    # function specs — not distinguishable after the fact.
                    action, reason = "rebuild", "data set content or specs changed"
            entries.append(
                PlanEntry(
                    action=action,
                    dataset=name,
                    spatial=s_res,
                    temporal=t_res,
                    reason=reason,
                    new_seq=new_seq,
                    old_record=record,
                    fingerprint=fingerprint,
                    input=((name, s_res, t_res), (new_seq, *value[1:])),
                )
            )
        for key, record in saved.items():
            if key in matched:
                continue
            name, s_res, t_res = key
            # Distinguish "the data set is gone" from "the data set is still
            # here but this resolution fell outside the maintained whitelists"
            # — the latter means a narrowed `--temporal`/`--spatial` is about
            # to delete partitions, which the dry run must say plainly.
            if name in corpus.datasets:
                reason = "resolution no longer maintained"
            else:
                reason = "not in catalog"
            entries.append(
                PlanEntry(
                    action="drop",
                    dataset=name,
                    spatial=s_res,
                    temporal=t_res,
                    reason=reason,
                    old_record=record,
                )
            )

        plan_span.set(n_entries=len(entries))

    return UpdatePlan(
        index_path=directory,
        entries=entries,
        saved_datasets=list(manifest["datasets"]),
        new_datasets=list(corpus.datasets),
        saved_version=version,
        saved_raw_bytes=int(manifest["stats"].get("raw_bytes", 0)),
        new_raw_bytes=sum(ds.nbytes() for ds in corpus.datasets.values()),
        saved_scope=manifest.get("scope"),
        new_scope=resolution_scope(spatial, temporal),
        config_changed=config_changed,
        city_changed=city_changed,
    )
