"""Time-varying scalar functions on the spatio-temporal domain (§2.1, §3.1).

A :class:`ScalarFunction` couples an ``(n_steps, n_regions)`` value matrix
with the :class:`~repro.graph.DomainGraph` it lives on.  The function is
piecewise linear: defined on the graph's vertices, interpolated along edges.
Vertex ``step * n_regions + region`` carries ``values[step, region]``, so the
flattened (C-order) matrix is exactly the vertex-indexed value array.

Simulated perturbation (§B.1) is realized as a total order on vertices:
vertices are compared by ``(value, vertex_id)``; no data is mutated, but all
topological computations (merge trees, level-set traversals) use this strict
order, which makes every PL function effectively Morse.
"""

from __future__ import annotations

import numpy as np

from ..data.aggregation import AggregatedFunction
from ..graph.domain_graph import DomainGraph
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import DataError
from ..utils.rng import RngLike, ensure_rng


class ScalarFunction:
    """A scalar function ``f : S x T -> R`` represented on a domain graph.

    Parameters
    ----------
    function_id:
        Stable identifier, e.g. ``"taxi.density"``.
    values:
        ``(n_steps, n_regions)`` float64 matrix; NaN is rejected (apply a fill
        policy during aggregation first).
    graph:
        The domain graph; its shape must match ``values``.
    spatial, temporal:
        Resolution of the matrix.
    dataset:
        Name of the data set the function was derived from.
    """

    def __init__(
        self,
        function_id: str,
        values: np.ndarray,
        graph: DomainGraph,
        spatial: SpatialResolution,
        temporal: TemporalResolution,
        dataset: str = "",
    ) -> None:
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim != 2:
            raise DataError(f"{function_id}: values must be a 2-D matrix")
        if vals.shape != (graph.n_steps, graph.n_regions):
            raise DataError(
                f"{function_id}: values shape {vals.shape} does not match the "
                f"domain graph ({graph.n_steps}, {graph.n_regions})"
            )
        if not np.isfinite(vals).all():
            raise DataError(
                f"{function_id}: values must be finite (no NaN/inf); "
                "apply a fill policy during aggregation first"
            )
        self.function_id = function_id
        self.values = vals
        self.graph = graph
        self.spatial = spatial
        self.temporal = temporal
        self.dataset = dataset or function_id.split(".", 1)[0]

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_aggregated(
        cls, agg: AggregatedFunction, spatial_pairs: np.ndarray | None = None
    ) -> "ScalarFunction":
        """Wrap an :class:`AggregatedFunction` with its domain graph.

        ``spatial_pairs`` is the region adjacency at the function's spatial
        resolution (omit for city-resolution time series).
        """
        graph = DomainGraph(
            n_regions=agg.n_regions,
            n_steps=agg.n_steps,
            spatial_pairs=spatial_pairs,
            step_labels=agg.step_labels,
        )
        return cls(
            function_id=agg.spec.function_id,
            values=agg.values,
            graph=graph,
            spatial=agg.spatial,
            temporal=agg.temporal,
            dataset=agg.spec.dataset,
        )

    @classmethod
    def time_series(
        cls,
        function_id: str,
        values: np.ndarray,
        temporal: TemporalResolution = TemporalResolution.HOUR,
        step_labels: np.ndarray | None = None,
    ) -> "ScalarFunction":
        """A purely temporal (city-resolution, 1-D) function."""
        vals = np.asarray(values, dtype=np.float64).reshape(-1, 1)
        graph = DomainGraph(1, vals.shape[0], step_labels=step_labels)
        return cls(function_id, vals, graph, SpatialResolution.CITY, temporal)

    # -- views ---------------------------------------------------------------

    @property
    def n_steps(self) -> int:
        """Number of time steps."""
        return int(self.values.shape[0])

    @property
    def n_regions(self) -> int:
        """Number of spatial regions."""
        return int(self.values.shape[1])

    @property
    def n_vertices(self) -> int:
        """Number of domain-graph vertices."""
        return self.graph.n_vertices

    def flat_values(self) -> np.ndarray:
        """Vertex-indexed value array (C-order flattening of the matrix)."""
        return self.values.ravel()

    # -- simulated perturbation ------------------------------------------------

    def vertex_order(self, descending: bool = True) -> np.ndarray:
        """Vertex ids sorted by the perturbed total order.

        Descending order compares by ``(-value, -vertex_id)``; ascending by
        ``(value, vertex_id)``.  Mirroring the tie-break along with the value
        direction keeps the two sweeps (join/split) consistent: for any pair
        of equal-valued vertices the one treated as *higher* in the join sweep
        is also *higher* in the split sweep.
        """
        flat = self.flat_values()
        ids = np.arange(flat.size)
        if descending:
            return np.lexsort((-ids, -flat))
        return np.lexsort((ids, flat))

    # -- transformations -------------------------------------------------------

    def slice_steps(self, step_positions: np.ndarray) -> "ScalarFunction":
        """Restrict the function to a contiguous range of time-step positions.

        Used for seasonal-interval processing (§3.3): thresholds and merge
        trees are computed per interval.  ``step_positions`` must be
        consecutive positions into the current step axis.
        """
        pos = np.asarray(step_positions, dtype=np.int64)
        if pos.size == 0:
            raise DataError("cannot slice a function to zero time steps")
        if not np.array_equal(pos, np.arange(pos[0], pos[0] + pos.size)):
            raise DataError("seasonal interval slices must be contiguous")
        graph = DomainGraph(
            n_regions=self.n_regions,
            n_steps=pos.size,
            spatial_pairs=self.graph.spatial_pairs,
            step_labels=self.graph.step_labels[pos],
        )
        return ScalarFunction(
            function_id=self.function_id,
            values=self.values[pos, :],
            graph=graph,
            spatial=self.spatial,
            temporal=self.temporal,
            dataset=self.dataset,
        )

    def with_noise(self, level: float, seed: RngLike = None) -> "ScalarFunction":
        """Gaussian noise bounded by ``level`` x IQR of the function (§6.2).

        The paper's robustness experiment adds random Gaussian noise to every
        spatio-temporal point, with the noise *amount bounded by a fraction of
        the inter-quartile range*.  We draw from N(0, (level*IQR/2)^2) and
        clip to ±level*IQR, which keeps ~95% of draws unclipped while
        enforcing the bound.
        """
        if level < 0:
            raise DataError("noise level must be >= 0")
        rng = ensure_rng(seed)
        q1, q3 = np.percentile(self.values, [25.0, 75.0])
        bound = level * (q3 - q1)
        noise = rng.normal(0.0, bound / 2.0 if bound > 0 else 0.0, self.values.shape)
        noise = np.clip(noise, -bound, bound)
        return ScalarFunction(
            function_id=f"{self.function_id}+noise",
            values=self.values + noise,
            graph=self.graph,
            spatial=self.spatial,
            temporal=self.temporal,
            dataset=self.dataset,
        )

    def nbytes(self) -> int:
        """Storage footprint of the value matrix (§5.4 space accounting)."""
        return int(self.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScalarFunction({self.function_id!r}, steps={self.n_steps}, "
            f"regions={self.n_regions}, {self.spatial.name}/{self.temporal.name})"
        )
