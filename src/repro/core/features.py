"""Feature identification: level-set queries and the feature pipeline (§3.2).

Positive features of a function are its super-level set at θ⁺; negative
features its sub-level set at θ⁻ (§2.1).  Given the merge trees, features are
computed output-sensitively: the traversal starts from the valid extrema
(function value beyond the threshold) and only ever touches level-set
vertices plus their immediate boundary.

:class:`FeatureExtractor` runs the full §3.3 pipeline for one scalar
function: seasonal-interval segmentation, per-interval merge trees and
salient thresholds, pooled extreme thresholds, and the resulting salient and
extreme :class:`FeatureSet` masks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..temporal.intervals import interval_slices, seasonal_interval_ids
from ..utils.bitvector import BitVector
from ..utils.errors import DataError
from .merge_tree import MergeTree, compute_join_tree, compute_split_tree
from .scalar_function import ScalarFunction
from .thresholds import SalientThresholds, extreme_thresholds, salient_thresholds


@dataclass
class FeatureSet:
    """Positive and negative features of one function as boolean masks.

    Masks have shape ``(n_steps, n_regions)``; entry ``[z, x]`` is True iff
    the spatio-temporal point (region x, step z) is a feature.  The masks are
    the dense form of the bit vectors of Appendix C (:meth:`to_bitvectors`
    produces the packed form used for space accounting).
    """

    positive: np.ndarray
    negative: np.ndarray

    def __post_init__(self) -> None:
        self.positive = np.asarray(self.positive, dtype=bool)
        self.negative = np.asarray(self.negative, dtype=bool)
        if self.positive.shape != self.negative.shape:
            raise DataError("positive/negative feature masks must align")

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_steps, n_regions)``."""
        return self.positive.shape  # type: ignore[return-value]

    def union(self) -> np.ndarray:
        """Mask of all features (Σ_i = positive ∪ negative)."""
        return self.positive | self.negative

    def n_features(self) -> int:
        """|Σ_i| — number of feature points."""
        return int(np.count_nonzero(self.union()))

    def slice_steps(self, start: int, stop: int) -> "FeatureSet":
        """Restrict to time-step positions ``[start, stop)``.

        Used to align two functions on their overlapping time range before
        relationship evaluation.
        """
        return FeatureSet(self.positive[start:stop], self.negative[start:stop])

    def to_bitvectors(self) -> tuple[BitVector, BitVector]:
        """Packed bit-vector form (Appendix C storage representation)."""
        return (
            BitVector.from_bools(self.positive.ravel()),
            BitVector.from_bools(self.negative.ravel()),
        )

    @classmethod
    def empty(cls, n_steps: int, n_regions: int) -> "FeatureSet":
        """A feature set with no features."""
        return cls(
            np.zeros((n_steps, n_regions), dtype=bool),
            np.zeros((n_steps, n_regions), dtype=bool),
        )


# ---------------------------------------------------------------------------
# Level-set queries
# ---------------------------------------------------------------------------


def superlevel_mask(function: ScalarFunction, theta: float) -> np.ndarray:
    """Brute-force super-level set ``f ≥ θ`` (flat boolean mask)."""
    return function.flat_values() >= theta


def sublevel_mask(function: ScalarFunction, theta: float) -> np.ndarray:
    """Brute-force sub-level set ``f ≤ θ`` (flat boolean mask)."""
    return function.flat_values() <= theta


def query_superlevel(
    function: ScalarFunction, theta: float, tree: MergeTree
) -> np.ndarray:
    """Output-sensitive super-level set query via the join tree (§3.2).

    Seeds the traversal at maxima with value ≥ θ (read off the join tree's
    sorted leaves) and explores level-set vertices breadth-first.  Every
    super-level component contains at least one such maximum, so the
    traversal covers the whole set while touching only its vertices and
    their immediate boundary.
    """
    if tree.kind != "join":
        raise DataError("query_superlevel requires a join tree")
    return _levelset_traversal(function, tree, theta, positive=True)


def query_sublevel(
    function: ScalarFunction, theta: float, tree: MergeTree
) -> np.ndarray:
    """Output-sensitive sub-level set query via the split tree (§3.2)."""
    if tree.kind != "split":
        raise DataError("query_sublevel requires a split tree")
    return _levelset_traversal(function, tree, theta, positive=False)


def _levelset_traversal(
    function: ScalarFunction, tree: MergeTree, theta: float, positive: bool
) -> np.ndarray:
    values = function.flat_values()
    graph = function.graph
    inside = np.zeros(values.size, dtype=bool)
    if positive:
        seeds = tree.extrema[values[tree.extrema] >= theta]
    else:
        seeds = tree.extrema[values[tree.extrema] <= theta]
    queue: deque[int] = deque(int(s) for s in seeds)
    inside[seeds] = True
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            u = int(u)
            if inside[u]:
                continue
            if (positive and values[u] >= theta) or (
                not positive and values[u] <= theta
            ):
                inside[u] = True
                queue.append(u)
    return inside


# ---------------------------------------------------------------------------
# Full per-function feature pipeline
# ---------------------------------------------------------------------------


@dataclass
class IntervalReport:
    """Diagnostics for one seasonal interval of one function."""

    step_start: int
    step_stop: int
    thresholds: SalientThresholds
    n_maxima: int
    n_minima: int


@dataclass
class FunctionFeatures:
    """Everything the framework precomputes per scalar function (§5.2).

    ``salient`` and ``extreme`` are the two feature channels evaluated by the
    relationship operator.  ``extreme_theta_pos``/``neg`` record the global
    box-plot fences (``None`` when undefined), and ``intervals`` the
    per-interval salient thresholds.
    """

    function_id: str
    salient: FeatureSet
    extreme: FeatureSet
    extreme_theta_pos: float | None
    extreme_theta_neg: float | None
    intervals: list[IntervalReport] = field(default_factory=list)

    def nbytes(self) -> int:
        """Packed storage footprint of the four feature bit vectors."""
        sp, sn = self.salient.to_bitvectors()
        ep, en = self.extreme.to_bitvectors()
        return sp.nbytes() + sn.nbytes() + ep.nbytes() + en.nbytes()


class FeatureExtractor:
    """Computes salient and extreme features of scalar functions (§3.3, §5.2).

    Parameters
    ----------
    seasonal:
        Apply seasonal-interval segmentation (monthly intervals for hourly
        functions, quarterly for daily ones).  Disable to compute one global
        threshold pair — used by ablation benchmarks.
    use_index:
        Use the output-sensitive merge-tree traversal for level-set queries
        (the paper's index path).  When False, features are computed by the
        brute-force vectorized masks — same result, different cost model.
    extreme_fence:
        The ``k`` of the box-plot rule ``Q1/Q3 ∓ k * IQR``.
    max_feature_fraction:
        Degenerate-threshold guard.  Features are by definition regions that
        deviate from *normal* behaviour (§2.1); for zero-inflated functions
        (e.g. precipitation, which is zero most of the time) the data-driven
        θ⁻ lands on the flat baseline and the sub-level set covers most of
        the domain — normal behaviour, not features.  If one side's feature
        mask covers more than this fraction of an interval, that side is
        dropped for the interval.  Set to 1.0 to disable the guard and follow
        the paper's formulas verbatim.
    """

    def __init__(
        self,
        seasonal: bool = True,
        use_index: bool = False,
        extreme_fence: float = 1.5,
        max_feature_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < max_feature_fraction <= 1.0:
            raise DataError("max_feature_fraction must be within (0, 1]")
        self.seasonal = seasonal
        self.use_index = use_index
        self.extreme_fence = extreme_fence
        self.max_feature_fraction = max_feature_fraction

    def extract(self, function: ScalarFunction) -> FunctionFeatures:
        """Run the full pipeline for one function."""
        n_steps, n_regions = function.n_steps, function.n_regions
        salient_pos = np.zeros((n_steps, n_regions), dtype=bool)
        salient_neg = np.zeros((n_steps, n_regions), dtype=bool)
        pooled_max: list[np.ndarray] = []
        pooled_min: list[np.ndarray] = []
        reports: list[IntervalReport] = []

        for positions in self._intervals(function):
            sliced = function.slice_steps(positions)
            flat = sliced.flat_values()
            join = compute_join_tree(sliced.graph, flat, sliced.vertex_order(True))
            split = compute_split_tree(sliced.graph, flat, sliced.vertex_order(False))
            thresholds = salient_thresholds(join, split)
            pooled_max.append(thresholds.salient_max_values)
            pooled_min.append(thresholds.salient_min_values)
            start, stop = int(positions[0]), int(positions[-1]) + 1
            reports.append(
                IntervalReport(
                    step_start=start,
                    step_stop=stop,
                    thresholds=thresholds,
                    n_maxima=join.n_extrema,
                    n_minima=split.n_extrema,
                )
            )
            max_cells = self.max_feature_fraction * sliced.n_vertices
            if thresholds.theta_pos is not None:
                mask = self._positive_mask(sliced, thresholds.theta_pos, join)
                if mask.sum() <= max_cells:
                    salient_pos[start:stop] = mask.reshape(stop - start, n_regions)
            if thresholds.theta_neg is not None:
                mask = self._negative_mask(sliced, thresholds.theta_neg, split)
                if mask.sum() <= max_cells:
                    salient_neg[start:stop] = mask.reshape(stop - start, n_regions)

        theta_epos, theta_eneg = extreme_thresholds(
            np.concatenate(pooled_max) if pooled_max else np.zeros(0),
            np.concatenate(pooled_min) if pooled_min else np.zeros(0),
            k=self.extreme_fence,
        )
        max_cells = self.max_feature_fraction * function.n_vertices
        extreme_pos = (
            (function.values >= theta_epos)
            if theta_epos is not None
            else np.zeros((n_steps, n_regions), dtype=bool)
        )
        if extreme_pos.sum() > max_cells:
            extreme_pos = np.zeros((n_steps, n_regions), dtype=bool)
        extreme_neg = (
            (function.values <= theta_eneg)
            if theta_eneg is not None
            else np.zeros((n_steps, n_regions), dtype=bool)
        )
        if extreme_neg.sum() > max_cells:
            extreme_neg = np.zeros((n_steps, n_regions), dtype=bool)

        return FunctionFeatures(
            function_id=function.function_id,
            salient=FeatureSet(salient_pos, salient_neg),
            extreme=FeatureSet(extreme_pos, extreme_neg),
            extreme_theta_pos=theta_epos,
            extreme_theta_neg=theta_eneg,
            intervals=reports,
        )

    def extract_with_thresholds(
        self,
        function: ScalarFunction,
        theta_pos: float | None,
        theta_neg: float | None,
    ) -> FeatureSet:
        """Features for user-supplied thresholds (§5.3 clause path)."""
        n_steps, n_regions = function.n_steps, function.n_regions
        pos = (
            (function.values >= theta_pos)
            if theta_pos is not None
            else np.zeros((n_steps, n_regions), dtype=bool)
        )
        neg = (
            (function.values <= theta_neg)
            if theta_neg is not None
            else np.zeros((n_steps, n_regions), dtype=bool)
        )
        return FeatureSet(pos, neg)

    # -- internals -----------------------------------------------------------

    def _intervals(self, function: ScalarFunction) -> list[np.ndarray]:
        if not self.seasonal:
            return [np.arange(function.n_steps)]
        labels = seasonal_interval_ids(function.temporal, function.graph.step_labels)
        return interval_slices(labels)

    def _positive_mask(
        self, sliced: ScalarFunction, theta: float, join: MergeTree
    ) -> np.ndarray:
        if self.use_index:
            return query_superlevel(sliced, theta, join)
        return superlevel_mask(sliced, theta)

    def _negative_mask(
        self, sliced: ScalarFunction, theta: float, split: MergeTree
    ) -> np.ndarray:
        if self.use_index:
            return query_sublevel(sliced, theta, split)
        return sublevel_mask(sliced, theta)
