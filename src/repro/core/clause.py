"""Query clauses: optional filters of the relationship query (§5.3).

A clause restricts which relationships a query returns (minimum |τ|, minimum
ρ, feature channels, resolutions) and may pin user-supplied feature
thresholds for specific functions.  Clause filters are applied *before* the
Monte Carlo significance test, which lets the query evaluator skip the
expensive test for pairs the clause already rejects (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import QueryError
from .relationship import RelationshipMeasures
from .significance import DEFAULT_ALPHA

FEATURE_TYPES = ("salient", "extreme")


@dataclass(frozen=True)
class Clause:
    """Filter conditions for a relationship query.

    Attributes
    ----------
    min_score:
        Keep only relationships with ``|τ| >= min_score``.
    min_strength:
        Keep only relationships with ``ρ >= min_strength``.
    feature_types:
        Which feature channels to evaluate (default: both salient and
        extreme).
    spatial, temporal:
        Optional whitelists of resolutions to evaluate at.
    alpha:
        Significance level for Definition 14 (default 5%).
    thresholds:
        Optional user-supplied feature thresholds per function id:
        ``{function_id: (theta_pos, theta_neg)}``.  When present, features
        for that function are recomputed from these thresholds instead of
        the precomputed data-driven ones (§5.3).
    """

    min_score: float = 0.0
    min_strength: float = 0.0
    feature_types: tuple[str, ...] = FEATURE_TYPES
    spatial: tuple[SpatialResolution, ...] | None = None
    temporal: tuple[TemporalResolution, ...] | None = None
    alpha: float = DEFAULT_ALPHA
    thresholds: dict[str, tuple[float | None, float | None]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_score <= 1.0:
            raise QueryError("min_score must be within [0, 1]")
        if not 0.0 <= self.min_strength <= 1.0:
            raise QueryError("min_strength must be within [0, 1]")
        if not 0.0 < self.alpha <= 1.0:
            raise QueryError("alpha must be within (0, 1]")
        unknown = set(self.feature_types) - set(FEATURE_TYPES)
        if unknown:
            raise QueryError(f"unknown feature types: {sorted(unknown)}")

    def admits_resolution(
        self, spatial: SpatialResolution, temporal: TemporalResolution
    ) -> bool:
        """True iff the clause allows evaluating at this resolution pair."""
        if self.spatial is not None and spatial not in self.spatial:
            return False
        if self.temporal is not None and temporal not in self.temporal:
            return False
        return True

    def admits_measures(self, measures: RelationshipMeasures) -> bool:
        """True iff (τ, ρ) pass the clause's minimums."""
        if abs(measures.score) < self.min_score:
            return False
        return measures.strength >= self.min_strength
