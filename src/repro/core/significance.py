"""Restricted Monte Carlo permutation tests (§4).

Urban data carries spatial and temporal autocorrelation; naive permutation
tests that scramble every point independently destroy that structure and
overstate significance.  The paper's randomizations preserve it:

* **Temporal correlation** (functions whose domain is purely temporal): time
  is wrapped onto a 1-D torus and rotated — every randomization is a circular
  shift, which preserves the series' autocorrelation exactly.
* **Spatial correlation** (functions with a spatial domain): the region graph
  is mapped onto itself by a breadth-first *toroidal shift* — a random
  bijection grown from a random seed pair so that adjacent regions map to
  adjacent regions wherever possible.

A *naive* full-shuffle test is also provided for the ablation benchmark that
reproduces the paper's §6.3 observation (the standard test rejects genuine
relationships such as snow-precipitation vs. bike-trip duration).

Implementation notes.  For rotations the per-shift intersection counts are
circular cross-correlations, computed for *all* shifts at once with FFTs in
``O(n_regions · n_steps log n_steps)``.  For toroidal shifts the counts
reduce to gathers over precomputed region-by-region co-occurrence matrices
(``C[r, s] = Σ_t mask1[t, r] · mask2[t, s]``), so each of the |m| = 1,000
shifts costs only O(n_regions).

The permutation statistic counts #p as ``|Σ⁺₁∩Σ⁺₂| + |Σ⁻₁∩Σ⁻₂|``; this equals
Definition 10's union count whenever a function's positive and negative
features are disjoint (always true when θ⁻ < θ⁺, i.e. for every non-degenerate
threshold pair), and only the null distribution — not the observed score —
uses it.

Evaluation modes.  Three modes trade per-pair Python overhead for speed
while pinning down exactly what they preserve:

* ``"exact"`` — the reference: one pair at a time, the full permutation
  loop.  Bit-identical across releases and executors; everything else is
  validated against it.
* ``"batched"`` — :func:`significance_batch` vectorizes the permutation
  test across a whole chunk of pairs at once (stacked rotation FFTs,
  batched co-occurrence matmuls + one gather for toroidal shifts).  All
  null counts are exact integers in float64, so batched p-values are
  **bit-identical** to exact mode.
* ``"adaptive"`` — batched scoring plus sequential early termination: a
  pair's permutation stream (identical to exact mode's, in the same
  order) is consumed in growing spans, and permuting stops as soon as the
  significance *decision* at the configured α is mathematically settled —
  either the hit count alone already forces p > α, or even all remaining
  permutations hitting could not push p above α.  The reported p-value
  then uses fewer permutations (recorded in
  ``SignificanceResult.n_permutations``), but the decision
  ``is_significant(alpha)`` is **provably identical** to exact mode's.

Exhaustive fallback.  When the domain admits fewer distinct randomizations
than requested — temporal rotations have only ``n_steps - 1`` non-trivial
shifts — the test evaluates the full population instead of sampling, and
``SignificanceResult.n_permutations`` reports the count actually evaluated
(all four score paths do this; the rotation path is where it commonly
bites).  The rotation path computes every shift in one FFT pass, so for it
all three modes return identical p-values.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..graph.domain_graph import DomainGraph
from ..utils.errors import DataError
from ..utils.rng import RngLike, ensure_rng
from .features import FeatureSet
from .relationship import evaluate_features

#: Significance level used throughout the paper (§5.3).
DEFAULT_ALPHA = 0.05

#: Number of randomizations |m| used by the paper (§4).
DEFAULT_PERMUTATIONS = 1000

_ALTERNATIVES = ("two-sided", "greater", "less")

#: Evaluation modes for the permutation test (see the module docstring).
SIGNIFICANCE_MODES = ("exact", "batched", "adaptive")


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a Monte Carlo significance test for one function pair.

    ``n_permutations`` is the number of randomizations actually evaluated —
    smaller than the requested |m| when the domain admits fewer distinct
    shifts (exhaustive fallback) or when adaptive mode stopped early.
    """

    p_value: float
    observed_score: float
    n_permutations: int
    method: str
    alternative: str
    mode: str = "exact"

    def is_significant(self, alpha: float = DEFAULT_ALPHA) -> bool:
        """Definition 14: the relationship is significant iff p ≤ α."""
        return self.p_value <= alpha


def significance_test(
    fs1: FeatureSet,
    fs2: FeatureSet,
    graph: DomainGraph,
    n_permutations: int = DEFAULT_PERMUTATIONS,
    alternative: str = "two-sided",
    method: str | None = None,
    seed: RngLike = None,
    mode: str = "exact",
    alpha: float = DEFAULT_ALPHA,
) -> SignificanceResult:
    """Restricted Monte Carlo test for a pair of feature sets.

    Parameters
    ----------
    fs1, fs2:
        Aligned feature sets (same ``(n_steps, n_regions)`` shape).
    graph:
        Domain graph shared by the two functions (provides the region
        adjacency used to build toroidal shifts).
    n_permutations:
        Number of randomizations |m|.
    alternative:
        ``"two-sided"`` (default; tests |τ|), ``"greater"`` or ``"less"``.
        The paper's Eq. 4 is the left tail; two-sided matches its reported
        usage where both strong positive and strong negative relationships
        survive the filter.
    method:
        Force ``"temporal_rotation"``, ``"spatial_toroidal"`` or ``"naive"``.
        Default: rotation for purely temporal domains, toroidal shifts
        otherwise (§4).
    seed:
        RNG seed for reproducible tests.
    mode:
        ``"exact"`` (default), ``"batched"`` or ``"adaptive"`` — see the
        module docstring.  Batched is bit-identical to exact; adaptive is
        decision-identical at ``alpha``.
    alpha:
        Significance level driving adaptive early termination.  Ignored by
        the other modes.
    """
    if mode not in SIGNIFICANCE_MODES:
        raise DataError(f"unknown significance mode {mode!r}")
    if mode != "exact":
        request = SignificanceRequest(fs1, fs2, graph, seed=seed, method=method)
        return significance_batch(
            [request],
            n_permutations=n_permutations,
            alternative=alternative,
            mode=mode,
            alpha=alpha,
        )[0]
    if alternative not in _ALTERNATIVES:
        raise DataError(f"unknown alternative {alternative!r}")
    if fs1.shape != fs2.shape:
        raise DataError("feature sets must be aligned before testing")
    if method is None:
        method = "temporal_rotation" if graph.is_time_series else "spatial_toroidal"

    observed = evaluate_features(fs1, fs2).score
    rng = ensure_rng(seed)

    if method == "temporal_rotation":
        scores = _rotation_scores(fs1, fs2, n_permutations, rng)
    elif method == "spatial_toroidal":
        scores = _toroidal_scores(fs1, fs2, graph, n_permutations, rng)
    elif method == "spatiotemporal_torus":
        scores = _torus3_scores(fs1, fs2, graph, n_permutations, rng)
    elif method == "naive":
        scores = _naive_scores(fs1, fs2, n_permutations, rng)
    else:
        raise DataError(f"unknown significance method {method!r}")

    p = _p_value(observed, scores, alternative)
    return SignificanceResult(
        p_value=p,
        observed_score=observed,
        n_permutations=int(scores.size),
        method=method,
        alternative=alternative,
    )


def _count_hits(observed: float, scores: np.ndarray, alternative: str) -> int:
    """Permutation scores at least as extreme as ``observed``."""
    eps = 1e-12
    if alternative == "two-sided":
        return int(np.count_nonzero(np.abs(scores) >= abs(observed) - eps))
    if alternative == "greater":
        return int(np.count_nonzero(scores >= observed - eps))
    return int(np.count_nonzero(scores <= observed + eps))


def _p_value(observed: float, scores: np.ndarray, alternative: str) -> float:
    """Add-one permutation p-value (the observed statistic counts once)."""
    hits = _count_hits(observed, scores, alternative)
    return float((1 + hits) / (scores.size + 1))


# ---------------------------------------------------------------------------
# Temporal rotations (1-D torus)
# ---------------------------------------------------------------------------


def _cross_correlation_counts(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``counts[k] = Σ_t Σ_r a[t, r] * b[(t - k) % m, r]`` for all shifts k.

    Computed with FFTs along the time axis and summed over regions.  Inputs
    are boolean masks; the result is rounded back to exact integers.
    """
    m = a.shape[0]
    fa = np.fft.rfft(a.astype(np.float64), axis=0)
    fb = np.fft.rfft(b.astype(np.float64), axis=0)
    corr = np.fft.irfft(fa * np.conj(fb), n=m, axis=0).sum(axis=1)
    return np.rint(corr).astype(np.int64)


def rotation_scores_all(fs1: FeatureSet, fs2: FeatureSet) -> np.ndarray:
    """Relationship score of every non-trivial circular time shift.

    Index k of the result is the score after rotating ``fs2`` forward in time
    by k steps (k = 1 .. n_steps-1).
    """
    p1, n1 = fs1.positive, fs1.negative
    p2, n2 = fs2.positive, fs2.negative
    u1, u2 = fs1.union(), fs2.union()
    pp = _cross_correlation_counts(p1, p2)
    nn = _cross_correlation_counts(n1, n2)
    pn = _cross_correlation_counts(p1, n2)
    np_ = _cross_correlation_counts(n1, p2)
    sigma = _cross_correlation_counts(u1, u2)
    with np.errstate(divide="ignore", invalid="ignore"):
        tau = np.where(sigma > 0, (pp + nn - pn - np_) / np.maximum(sigma, 1), 0.0)
    return tau[1:]  # k = 0 is the observed configuration


def _rotation_scores(
    fs1: FeatureSet, fs2: FeatureSet, n_permutations: int, rng: np.random.Generator
) -> np.ndarray:
    n_steps = fs1.shape[0]
    if n_steps < 2:
        return np.zeros(0)
    all_scores = rotation_scores_all(fs1, fs2)
    if all_scores.size <= n_permutations:
        return all_scores
    chosen = rng.choice(all_scores.size, size=n_permutations, replace=False)
    return all_scores[chosen]


# ---------------------------------------------------------------------------
# Spatial toroidal shifts (graph self-maps, §4)
# ---------------------------------------------------------------------------


def toroidal_map(neighbors: list[np.ndarray], rng: np.random.Generator) -> np.ndarray:
    """One adjacency-respecting random bijection of the region graph.

    Starts from a random seed assignment ``m(u0) = v0`` and grows breadth-
    first: each unassigned neighbour of ``u`` is mapped onto an unused
    neighbour of ``m(u)`` when one exists (preserving adjacency), otherwise
    onto a random unused region.  The result is always a permutation.
    """
    n = len(neighbors)
    image = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=bool)
    start = int(rng.integers(n))
    target = int(rng.integers(n))
    image[start] = target
    used[target] = True
    queue: deque[int] = deque([start])
    order = rng.permutation(n)
    while queue:
        u = queue.popleft()
        v = int(image[u])
        for un in neighbors[u]:
            un = int(un)
            if image[un] >= 0:
                continue
            candidates = [int(vn) for vn in neighbors[v] if not used[vn]]
            if candidates:
                choice = candidates[int(rng.integers(len(candidates)))]
            else:
                choice = _first_free(used, order)
            image[un] = choice
            used[choice] = True
            queue.append(un)
    for un in np.flatnonzero(image < 0):
        choice = _first_free(used, order)
        image[int(un)] = choice
        used[choice] = True
    return image


def _first_free(used: np.ndarray, order: np.ndarray) -> int:
    for v in order:
        if not used[v]:
            return int(v)
    raise DataError("toroidal map ran out of free vertices")  # pragma: no cover


def adjacency_preservation(neighbors: list[np.ndarray], image: np.ndarray) -> float:
    """Fraction of graph edges whose endpoints stay adjacent under ``image``.

    Diagnostic for the quality of a toroidal shift (§4 asks that distances be
    preserved 'in most cases').
    """
    neighbor_sets = [set(int(x) for x in ns) for ns in neighbors]
    total = 0
    kept = 0
    for u, ns in enumerate(neighbors):
        for w in ns:
            if u < int(w):
                total += 1
                if int(image[w]) in neighbor_sets[int(image[u])]:
                    kept += 1
    return kept / total if total else 1.0


#: Domain-level cache of toroidal-shift families.  §4 defines the |m| shifts
#: as randomizations of the *spatial domain*, so one family per region graph
#: is both faithful and fast: reusing the same permutations across function
#: pairs is the standard formulation of a permutation test.  The lock makes
#: the cache safe under the thread executor: parallel query map tasks over
#: the same region graph share one deterministically-seeded family instead
#: of racing to build (and evict) their own.
_TOROIDAL_CACHE: dict[tuple, np.ndarray] = {}
_TOROIDAL_CACHE_LIMIT = 32
_TOROIDAL_CACHE_LOCK = threading.Lock()


def domain_toroidal_maps(graph: DomainGraph, n_maps: int) -> np.ndarray:
    """The cached family of ``n_maps`` toroidal shifts of a region graph."""
    key = (
        graph.n_regions,
        graph.spatial_pairs.tobytes(),
        int(n_maps),
    )
    with _TOROIDAL_CACHE_LOCK:
        cached = _TOROIDAL_CACHE.get(key)
        if cached is None:
            neighbors = [graph.region_neighbors(r) for r in range(graph.n_regions)]
            rng = ensure_rng(zlib.crc32(key[1]) + graph.n_regions)
            cached = np.stack([toroidal_map(neighbors, rng) for _ in range(n_maps)])
            if len(_TOROIDAL_CACHE) >= _TOROIDAL_CACHE_LIMIT:
                _TOROIDAL_CACHE.pop(next(iter(_TOROIDAL_CACHE)))
            _TOROIDAL_CACHE[key] = cached
    return cached


def _toroidal_scores(
    fs1: FeatureSet,
    fs2: FeatureSet,
    graph: DomainGraph,
    n_permutations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    n_regions = fs1.shape[1]
    if n_regions < 2:
        # Degenerate spatial domain: fall back to temporal rotations.
        return _rotation_scores(fs1, fs2, n_permutations, rng)
    maps = domain_toroidal_maps(graph, n_permutations)

    p1, n1 = fs1.positive, fs1.negative
    p2, n2 = fs2.positive, fs2.negative
    u1, u2 = fs1.union(), fs2.union()
    # Co-occurrence matrices: C[r, s] = sum_t mask1[t, r] * mask2[t, s].
    c_pp = p1.T.astype(np.float64) @ p2.astype(np.float64)
    c_nn = n1.T.astype(np.float64) @ n2.astype(np.float64)
    c_pn = p1.T.astype(np.float64) @ n2.astype(np.float64)
    c_np = n1.T.astype(np.float64) @ p2.astype(np.float64)
    c_uu = u1.T.astype(np.float64) @ u2.astype(np.float64)

    scores = np.empty(n_permutations, dtype=np.float64)
    regions = np.arange(n_regions)
    for i in range(n_permutations):
        # mask2 region r is relocated to rows[r]; the intersection with
        # mask1 therefore pairs mask1 column rows[r] with mask2 column r.
        rows = maps[i]
        pp = c_pp[rows, regions].sum()
        nn = c_nn[rows, regions].sum()
        pn = c_pn[rows, regions].sum()
        np_ = c_np[rows, regions].sum()
        sig = c_uu[rows, regions].sum()
        scores[i] = (pp + nn - pn - np_) / sig if sig > 0 else 0.0
    return scores


# ---------------------------------------------------------------------------
# Combined spatio-temporal torus (§8 future work)
# ---------------------------------------------------------------------------


def _torus3_scores(
    fs1: FeatureSet,
    fs2: FeatureSet,
    graph: DomainGraph,
    n_permutations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Randomizations combining a toroidal spatial shift with a time rotation.

    The paper's §8 proposes extending the significance test to a 3-torus that
    wraps space and time together; each randomization here applies an
    adjacency-respecting spatial self-map *and* a circular time rotation to
    the second function's features, preserving both correlation structures
    simultaneously.
    """
    n_steps, n_regions = fs1.shape
    if n_regions < 2:
        return _rotation_scores(fs1, fs2, n_permutations, rng)
    maps = domain_toroidal_maps(graph, n_permutations)
    p1, n1, u1 = fs1.positive, fs1.negative, fs1.union()
    p2, n2, u2 = fs2.positive, fs2.negative, fs2.union()
    scores = np.empty(n_permutations, dtype=np.float64)
    for i in range(n_permutations):
        k = int(rng.integers(1, n_steps)) if n_steps > 1 else 0
        cols = maps[i]
        p2s = np.roll(p2, k, axis=0)
        n2s = np.roll(n2, k, axis=0)
        u2s = np.roll(u2, k, axis=0)
        # Column permutation: region r of fs2 relocated to cols[r].
        pp = int(np.count_nonzero(p1[:, cols] & p2s))
        nn = int(np.count_nonzero(n1[:, cols] & n2s))
        pn = int(np.count_nonzero(p1[:, cols] & n2s))
        np_ = int(np.count_nonzero(n1[:, cols] & p2s))
        sig = int(np.count_nonzero(u1[:, cols] & u2s))
        scores[i] = (pp + nn - pn - np_) / sig if sig > 0 else 0.0
    return scores


# ---------------------------------------------------------------------------
# Naive (unrestricted) permutation — ablation baseline
# ---------------------------------------------------------------------------


def _naive_scores(
    fs1: FeatureSet, fs2: FeatureSet, n_permutations: int, rng: np.random.Generator
) -> np.ndarray:
    """Scores under full independent shuffling of all spatio-temporal points.

    This is the 'standard Monte Carlo procedure' of §6.3: it ignores spatial
    and temporal dependence entirely.
    """
    shape = fs1.shape
    size = shape[0] * shape[1]
    p1 = fs1.positive.ravel()
    n1 = fs1.negative.ravel()
    p2 = fs2.positive.ravel()
    n2 = fs2.negative.ravel()
    scores = np.empty(n_permutations, dtype=np.float64)
    for i in range(n_permutations):
        perm = rng.permutation(size)
        pp = np.count_nonzero(p1 & p2[perm])
        nn = np.count_nonzero(n1 & n2[perm])
        pn = np.count_nonzero(p1 & n2[perm])
        np_ = np.count_nonzero(n1 & p2[perm])
        sig = np.count_nonzero((p1 | n1) & (p2 | n2)[perm])
        scores[i] = (pp + nn - pn - np_) / sig if sig > 0 else 0.0
    return scores


# ---------------------------------------------------------------------------
# Batched + adaptive evaluation (query hot path)
# ---------------------------------------------------------------------------

#: First adaptive span size; spans double afterwards so a decided pair pays
#: at most ~2x the permutations it minimally needed.
_ADAPTIVE_FIRST_SPAN = 32


@dataclass(frozen=True)
class SignificanceRequest:
    """One pair queued for :func:`significance_batch`.

    ``observed`` lets callers that already computed the relationship score
    (e.g. while filtering candidates) skip the recompute; ``None`` means
    re-evaluate, exactly as :func:`significance_test` does.
    """

    fs1: FeatureSet
    fs2: FeatureSet
    graph: DomainGraph
    seed: RngLike = None
    method: str | None = None
    observed: float | None = None


def _adaptive_spans(n_avail: int) -> list[tuple[int, int]]:
    """Fixed doubling span boundaries over the permutation stream.

    The boundaries depend only on ``n_avail`` — never on which pairs share a
    batch — so a pair stops at the same permutation count under any
    chunking or executor, keeping adaptive results bit-identical across
    parallel plans.
    """
    spans = []
    lo = 0
    size = _ADAPTIVE_FIRST_SPAN
    while lo < n_avail:
        hi = min(lo + size, n_avail)
        spans.append((lo, hi))
        lo = hi
        size *= 2
    return spans


def _decided(hits, n_done, n_avail: int, alpha: float):
    """True where the significance decision at ``alpha`` is already forced.

    Not-significant: the exact-mode p-value is ``(1 + H) / (n_avail + 1)``
    with final hit count ``H >= hits``; float division is monotone in the
    numerator, so ``(1 + hits) / (n_avail + 1) > alpha`` already forces it
    above alpha.  The early-stop p ``(1 + hits) / (n_done + 1)`` only has a
    smaller denominator, so its decision agrees.

    Significant: ``H <= hits + (n_avail - n_done)``, so the first clause
    forces the exact-mode p under alpha; the second clause pins the
    *reported* early-stop quotient under alpha too (guarding the one-ulp
    gap between the two float divisions).
    """
    remaining = n_avail - n_done
    not_sig = (1.0 + hits) / (n_avail + 1) > alpha
    sig = ((1.0 + hits + remaining) / (n_avail + 1) <= alpha) & (
        (1.0 + hits) / (n_done + 1) <= alpha
    )
    return not_sig | sig


def _hits_against(
    observed: np.ndarray, scores: np.ndarray, alternative: str
) -> np.ndarray:
    """Row-wise hit counts: ``observed`` is (P,), ``scores`` is (P, k)."""
    eps = 1e-12
    if alternative == "two-sided":
        return (np.abs(scores) >= np.abs(observed)[:, None] - eps).sum(axis=1)
    if alternative == "greater":
        return (scores >= observed[:, None] - eps).sum(axis=1)
    return (scores <= observed[:, None] + eps).sum(axis=1)


def _request_observed(request: SignificanceRequest) -> float:
    if request.observed is not None:
        return float(request.observed)
    return evaluate_features(request.fs1, request.fs2).score


def significance_batch(
    requests: list[SignificanceRequest],
    n_permutations: int = DEFAULT_PERMUTATIONS,
    alternative: str = "two-sided",
    mode: str = "batched",
    alpha: float = DEFAULT_ALPHA,
) -> list[SignificanceResult]:
    """Vectorized permutation tests for a chunk of pairs at once.

    Returns one :class:`SignificanceResult` per request, in order.  Pairs
    are grouped by method and domain shape: rotation pairs share stacked
    FFT passes, toroidal pairs over the same region graph share batched
    co-occurrence matmuls and a single gather per span.  ``mode="batched"``
    is bit-identical to per-pair exact results; ``mode="adaptive"`` adds
    early termination that provably preserves every ``is_significant(alpha)``
    decision (see :func:`_decided`).
    """
    if alternative not in _ALTERNATIVES:
        raise DataError(f"unknown alternative {alternative!r}")
    if mode not in ("batched", "adaptive"):
        raise DataError(f"unknown batch significance mode {mode!r}")

    rotation_groups: dict[tuple[int, int], list[tuple[int, str]]] = {}
    toroidal_groups: dict[tuple[int, int, bytes], list[int]] = {}
    stream_items: list[tuple[int, str]] = []
    for idx, request in enumerate(requests):
        if request.fs1.shape != request.fs2.shape:
            raise DataError("feature sets must be aligned before testing")
        method = request.method
        if method is None:
            method = (
                "temporal_rotation"
                if request.graph.is_time_series
                else "spatial_toroidal"
            )
        if method not in (
            "temporal_rotation",
            "spatial_toroidal",
            "spatiotemporal_torus",
            "naive",
        ):
            raise DataError(f"unknown significance method {method!r}")
        n_steps, n_regions = request.fs1.shape
        if method == "temporal_rotation" or (
            n_regions < 2 and method in ("spatial_toroidal", "spatiotemporal_torus")
        ):
            # Degenerate spatial domains fall back to rotations (matching
            # the exact path) but keep their requested method label.
            rotation_groups.setdefault((n_steps, n_regions), []).append((idx, method))
        elif method == "spatial_toroidal":
            key = (n_steps, n_regions, request.graph.spatial_pairs.tobytes())
            toroidal_groups.setdefault(key, []).append(idx)
        else:
            stream_items.append((idx, method))

    results: list[SignificanceResult | None] = [None] * len(requests)
    with obs.span(
        "significance.batch",
        n_requests=len(requests),
        mode=mode,
        n_groups=len(rotation_groups) + len(toroidal_groups) + len(stream_items),
    ):
        for items in rotation_groups.values():
            _run_rotation_group(
                requests, items, n_permutations, alternative, mode, results
            )
        for idxs in toroidal_groups.values():
            _run_toroidal_group(
                requests, idxs, n_permutations, alternative, mode, alpha, results
            )
        for idx, method in stream_items:
            results[idx] = _run_stream(
                requests[idx], method, n_permutations, alternative, mode, alpha
            )
    return results  # type: ignore[return-value]


def _run_rotation_group(
    requests: list[SignificanceRequest],
    items: list[tuple[int, str]],
    n_permutations: int,
    alternative: str,
    mode: str,
    results: list[SignificanceResult | None],
) -> None:
    """Stacked-FFT rotation scores for all pairs sharing one domain shape.

    Rotations already evaluate every shift in a single pass, so adaptive
    mode has nothing to truncate here: all three modes agree bit-for-bit.
    """
    reqs = [requests[idx] for idx, _ in items]
    n_steps = reqs[0].fs1.shape[0]
    if n_steps < 2:
        empty = np.zeros(0)
        for idx, label in items:
            observed = _request_observed(requests[idx])
            results[idx] = SignificanceResult(
                p_value=_p_value(observed, empty, alternative),
                observed_score=observed,
                n_permutations=0,
                method=label,
                alternative=alternative,
                mode=mode,
            )
        return
    p1 = np.stack([r.fs1.positive for r in reqs])
    n1 = np.stack([r.fs1.negative for r in reqs])
    u1 = np.stack([r.fs1.union() for r in reqs])
    p2 = np.stack([r.fs2.positive for r in reqs])
    n2 = np.stack([r.fs2.negative for r in reqs])
    u2 = np.stack([r.fs2.union() for r in reqs])
    pp = _stacked_cross_correlation(p1, p2)
    nn = _stacked_cross_correlation(n1, n2)
    pn = _stacked_cross_correlation(p1, n2)
    np_ = _stacked_cross_correlation(n1, p2)
    sigma = _stacked_cross_correlation(u1, u2)
    with np.errstate(divide="ignore", invalid="ignore"):
        tau = np.where(sigma > 0, (pp + nn - pn - np_) / np.maximum(sigma, 1), 0.0)
    tau = tau[:, 1:]  # k = 0 is the observed configuration
    for j, (idx, label) in enumerate(items):
        request = requests[idx]
        all_scores = tau[j]
        if all_scores.size > n_permutations:
            rng = ensure_rng(request.seed)
            chosen = rng.choice(all_scores.size, size=n_permutations, replace=False)
            scores = all_scores[chosen]
        else:
            scores = all_scores
        observed = _request_observed(request)
        results[idx] = SignificanceResult(
            p_value=_p_value(observed, scores, alternative),
            observed_score=observed,
            n_permutations=int(scores.size),
            method=label,
            alternative=alternative,
            mode=mode,
        )


def _stacked_cross_correlation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """:func:`_cross_correlation_counts` for a (P, T, R) stack of mask pairs."""
    m = a.shape[1]
    fa = np.fft.rfft(a.astype(np.float64), axis=1)
    fb = np.fft.rfft(b.astype(np.float64), axis=1)
    corr = np.fft.irfft(fa * np.conj(fb), n=m, axis=1).sum(axis=2)
    return np.rint(corr).astype(np.int64)


def _run_toroidal_group(
    requests: list[SignificanceRequest],
    idxs: list[int],
    n_permutations: int,
    alternative: str,
    mode: str,
    alpha: float,
    results: list[SignificanceResult | None],
) -> None:
    """Batched toroidal-shift scores for pairs sharing one region graph.

    The five per-pair co-occurrence matrices collapse into a numerator and
    denominator stack (all entries exact integers in float64), so each span
    of shifts costs two gathers for the whole group instead of five per
    pair.  Adaptive mode drops decided pairs from the stack between spans;
    the cached map family is seeded by graph content only, so its first
    ``n`` maps are the same for any requested count and every pair consumes
    the identical permutation stream exact mode would.
    """
    reqs = [requests[i] for i in idxs]
    graph = reqs[0].graph
    maps = domain_toroidal_maps(graph, n_permutations)
    n_regions = reqs[0].fs1.shape[1]

    def cooc(a: list[np.ndarray], b: list[np.ndarray]) -> np.ndarray:
        sa = np.stack(a).astype(np.float64)
        sb = np.stack(b).astype(np.float64)
        return sa.transpose(0, 2, 1) @ sb

    p1 = [r.fs1.positive for r in reqs]
    n1 = [r.fs1.negative for r in reqs]
    u1 = [r.fs1.union() for r in reqs]
    p2 = [r.fs2.positive for r in reqs]
    n2 = [r.fs2.negative for r in reqs]
    u2 = [r.fs2.union() for r in reqs]
    num = cooc(p1, p2) + cooc(n1, n2) - cooc(p1, n2) - cooc(n1, p2)
    den = cooc(u1, u2)

    observed = np.array([_request_observed(r) for r in reqs])
    n_pairs = len(reqs)
    hits = np.zeros(n_pairs, dtype=np.int64)
    done = np.zeros(n_pairs, dtype=np.int64)
    alive = np.arange(n_pairs)
    regions = np.arange(n_regions)
    spans = (
        _adaptive_spans(n_permutations)
        if mode == "adaptive"
        else [(0, n_permutations)]
    )
    for lo, hi in spans:
        if alive.size == 0:
            break
        rows = maps[lo:hi]
        num_g = num[alive][:, rows, regions].sum(axis=2)
        den_g = den[alive][:, rows, regions].sum(axis=2)
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = np.where(den_g > 0, num_g / np.maximum(den_g, 1), 0.0)
        hits[alive] += _hits_against(observed[alive], scores, alternative)
        done[alive] = hi
        if mode == "adaptive" and hi < n_permutations:
            alive = alive[~_decided(hits[alive], hi, n_permutations, alpha)]

    for j, idx in enumerate(idxs):
        p = float((1 + hits[j]) / (done[j] + 1))
        results[idx] = SignificanceResult(
            p_value=p,
            observed_score=float(observed[j]),
            n_permutations=int(done[j]),
            method="spatial_toroidal",
            alternative=alternative,
            mode=mode,
        )


def _run_stream(
    request: SignificanceRequest,
    method: str,
    n_permutations: int,
    alternative: str,
    mode: str,
    alpha: float,
) -> SignificanceResult:
    """Span-at-a-time evaluation for the per-pair RNG-stream methods.

    The torus3 and naive randomizations consume a per-pair RNG stream, so
    they cannot stack across pairs; they still vectorize within each span
    and support adaptive early termination.  RNG draws happen span by span
    in exact mode's order, so the first k randomizations match exact
    mode's first k.
    """
    observed = _request_observed(request)
    rng = ensure_rng(request.seed)
    if method == "spatiotemporal_torus":
        span_scores = _torus3_span_scores(request, n_permutations, rng)
    else:
        span_scores = _naive_span_scores(request, rng)
    spans = (
        _adaptive_spans(n_permutations)
        if mode == "adaptive"
        else [(0, n_permutations)]
    )
    hits = 0
    done = 0
    for lo, hi in spans:
        hits += _count_hits(observed, span_scores(lo, hi), alternative)
        done = hi
        if (
            mode == "adaptive"
            and done < n_permutations
            and bool(_decided(np.int64(hits), done, n_permutations, alpha))
        ):
            break
    return SignificanceResult(
        p_value=float((1 + hits) / (done + 1)),
        observed_score=observed,
        n_permutations=done,
        method=method,
        alternative=alternative,
        mode=mode,
    )


def _torus3_span_scores(
    request: SignificanceRequest, n_permutations: int, rng: np.random.Generator
):
    """Vectorized spans of :func:`_torus3_scores` randomizations."""
    n_steps, _ = request.fs1.shape
    maps = domain_toroidal_maps(request.graph, n_permutations)
    fs1, fs2 = request.fs1, request.fs2
    p1, n1, u1 = fs1.positive, fs1.negative, fs1.union()
    p2, n2, u2 = fs2.positive, fs2.negative, fs2.union()
    t_idx = np.arange(n_steps)

    def span(lo: int, hi: int) -> np.ndarray:
        ks = np.array(
            [
                int(rng.integers(1, n_steps)) if n_steps > 1 else 0
                for _ in range(hi - lo)
            ]
        )
        rows = (t_idx[None, :] - ks[:, None]) % n_steps
        cols = maps[lo:hi]
        p1c = p1[:, cols].transpose(1, 0, 2)
        n1c = n1[:, cols].transpose(1, 0, 2)
        u1c = u1[:, cols].transpose(1, 0, 2)
        pp = np.count_nonzero(p1c & p2[rows], axis=(1, 2))
        nn = np.count_nonzero(n1c & n2[rows], axis=(1, 2))
        pn = np.count_nonzero(p1c & n2[rows], axis=(1, 2))
        np_ = np.count_nonzero(n1c & p2[rows], axis=(1, 2))
        sig = np.count_nonzero(u1c & u2[rows], axis=(1, 2))
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(sig > 0, (pp + nn - pn - np_) / np.maximum(sig, 1), 0.0)

    return span


def _naive_span_scores(request: SignificanceRequest, rng: np.random.Generator):
    """Vectorized spans of :func:`_naive_scores` randomizations."""
    fs1, fs2 = request.fs1, request.fs2
    size = fs1.shape[0] * fs1.shape[1]
    p1 = fs1.positive.ravel()
    n1 = fs1.negative.ravel()
    u1 = p1 | n1
    p2 = fs2.positive.ravel()
    n2 = fs2.negative.ravel()
    u2 = p2 | n2

    def span(lo: int, hi: int) -> np.ndarray:
        perms = np.stack([rng.permutation(size) for _ in range(hi - lo)])
        pp = np.count_nonzero(p1[None, :] & p2[perms], axis=1)
        nn = np.count_nonzero(n1[None, :] & n2[perms], axis=1)
        pn = np.count_nonzero(p1[None, :] & n2[perms], axis=1)
        np_ = np.count_nonzero(n1[None, :] & p2[perms], axis=1)
        sig = np.count_nonzero(u1[None, :] & u2[perms], axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(sig > 0, (pp + nn - pn - np_) / np.maximum(sig, 1), 0.0)

    return span
