"""Restricted Monte Carlo permutation tests (§4).

Urban data carries spatial and temporal autocorrelation; naive permutation
tests that scramble every point independently destroy that structure and
overstate significance.  The paper's randomizations preserve it:

* **Temporal correlation** (functions whose domain is purely temporal): time
  is wrapped onto a 1-D torus and rotated — every randomization is a circular
  shift, which preserves the series' autocorrelation exactly.
* **Spatial correlation** (functions with a spatial domain): the region graph
  is mapped onto itself by a breadth-first *toroidal shift* — a random
  bijection grown from a random seed pair so that adjacent regions map to
  adjacent regions wherever possible.

A *naive* full-shuffle test is also provided for the ablation benchmark that
reproduces the paper's §6.3 observation (the standard test rejects genuine
relationships such as snow-precipitation vs. bike-trip duration).

Implementation notes.  For rotations the per-shift intersection counts are
circular cross-correlations, computed for *all* shifts at once with FFTs in
``O(n_regions · n_steps log n_steps)``.  For toroidal shifts the counts
reduce to gathers over precomputed region-by-region co-occurrence matrices
(``C[r, s] = Σ_t mask1[t, r] · mask2[t, s]``), so each of the |m| = 1,000
shifts costs only O(n_regions).

The permutation statistic counts #p as ``|Σ⁺₁∩Σ⁺₂| + |Σ⁻₁∩Σ⁻₂|``; this equals
Definition 10's union count whenever a function's positive and negative
features are disjoint (always true when θ⁻ < θ⁺, i.e. for every non-degenerate
threshold pair), and only the null distribution — not the observed score —
uses it.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..graph.domain_graph import DomainGraph
from ..utils.errors import DataError
from ..utils.rng import RngLike, ensure_rng
from .features import FeatureSet
from .relationship import evaluate_features

#: Significance level used throughout the paper (§5.3).
DEFAULT_ALPHA = 0.05

#: Number of randomizations |m| used by the paper (§4).
DEFAULT_PERMUTATIONS = 1000

_ALTERNATIVES = ("two-sided", "greater", "less")


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a Monte Carlo significance test for one function pair."""

    p_value: float
    observed_score: float
    n_permutations: int
    method: str
    alternative: str

    def is_significant(self, alpha: float = DEFAULT_ALPHA) -> bool:
        """Definition 14: the relationship is significant iff p ≤ α."""
        return self.p_value <= alpha


def significance_test(
    fs1: FeatureSet,
    fs2: FeatureSet,
    graph: DomainGraph,
    n_permutations: int = DEFAULT_PERMUTATIONS,
    alternative: str = "two-sided",
    method: str | None = None,
    seed: RngLike = None,
) -> SignificanceResult:
    """Restricted Monte Carlo test for a pair of feature sets.

    Parameters
    ----------
    fs1, fs2:
        Aligned feature sets (same ``(n_steps, n_regions)`` shape).
    graph:
        Domain graph shared by the two functions (provides the region
        adjacency used to build toroidal shifts).
    n_permutations:
        Number of randomizations |m|.
    alternative:
        ``"two-sided"`` (default; tests |τ|), ``"greater"`` or ``"less"``.
        The paper's Eq. 4 is the left tail; two-sided matches its reported
        usage where both strong positive and strong negative relationships
        survive the filter.
    method:
        Force ``"temporal_rotation"``, ``"spatial_toroidal"`` or ``"naive"``.
        Default: rotation for purely temporal domains, toroidal shifts
        otherwise (§4).
    seed:
        RNG seed for reproducible tests.
    """
    if alternative not in _ALTERNATIVES:
        raise DataError(f"unknown alternative {alternative!r}")
    if fs1.shape != fs2.shape:
        raise DataError("feature sets must be aligned before testing")
    if method is None:
        method = "temporal_rotation" if graph.is_time_series else "spatial_toroidal"

    observed = evaluate_features(fs1, fs2).score
    rng = ensure_rng(seed)

    if method == "temporal_rotation":
        scores = _rotation_scores(fs1, fs2, n_permutations, rng)
    elif method == "spatial_toroidal":
        scores = _toroidal_scores(fs1, fs2, graph, n_permutations, rng)
    elif method == "spatiotemporal_torus":
        scores = _torus3_scores(fs1, fs2, graph, n_permutations, rng)
    elif method == "naive":
        scores = _naive_scores(fs1, fs2, n_permutations, rng)
    else:
        raise DataError(f"unknown significance method {method!r}")

    p = _p_value(observed, scores, alternative)
    return SignificanceResult(
        p_value=p,
        observed_score=observed,
        n_permutations=int(scores.size),
        method=method,
        alternative=alternative,
    )


def _p_value(observed: float, scores: np.ndarray, alternative: str) -> float:
    """Add-one permutation p-value (the observed statistic counts once)."""
    eps = 1e-12
    if alternative == "two-sided":
        hits = np.count_nonzero(np.abs(scores) >= abs(observed) - eps)
    elif alternative == "greater":
        hits = np.count_nonzero(scores >= observed - eps)
    else:
        hits = np.count_nonzero(scores <= observed + eps)
    return float((1 + hits) / (scores.size + 1))


# ---------------------------------------------------------------------------
# Temporal rotations (1-D torus)
# ---------------------------------------------------------------------------


def _cross_correlation_counts(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``counts[k] = Σ_t Σ_r a[t, r] * b[(t - k) % m, r]`` for all shifts k.

    Computed with FFTs along the time axis and summed over regions.  Inputs
    are boolean masks; the result is rounded back to exact integers.
    """
    m = a.shape[0]
    fa = np.fft.rfft(a.astype(np.float64), axis=0)
    fb = np.fft.rfft(b.astype(np.float64), axis=0)
    corr = np.fft.irfft(fa * np.conj(fb), n=m, axis=0).sum(axis=1)
    return np.rint(corr).astype(np.int64)


def rotation_scores_all(fs1: FeatureSet, fs2: FeatureSet) -> np.ndarray:
    """Relationship score of every non-trivial circular time shift.

    Index k of the result is the score after rotating ``fs2`` forward in time
    by k steps (k = 1 .. n_steps-1).
    """
    p1, n1 = fs1.positive, fs1.negative
    p2, n2 = fs2.positive, fs2.negative
    u1, u2 = fs1.union(), fs2.union()
    pp = _cross_correlation_counts(p1, p2)
    nn = _cross_correlation_counts(n1, n2)
    pn = _cross_correlation_counts(p1, n2)
    np_ = _cross_correlation_counts(n1, p2)
    sigma = _cross_correlation_counts(u1, u2)
    with np.errstate(divide="ignore", invalid="ignore"):
        tau = np.where(sigma > 0, (pp + nn - pn - np_) / np.maximum(sigma, 1), 0.0)
    return tau[1:]  # k = 0 is the observed configuration


def _rotation_scores(
    fs1: FeatureSet, fs2: FeatureSet, n_permutations: int, rng: np.random.Generator
) -> np.ndarray:
    n_steps = fs1.shape[0]
    if n_steps < 2:
        return np.zeros(0)
    all_scores = rotation_scores_all(fs1, fs2)
    if all_scores.size <= n_permutations:
        return all_scores
    chosen = rng.choice(all_scores.size, size=n_permutations, replace=False)
    return all_scores[chosen]


# ---------------------------------------------------------------------------
# Spatial toroidal shifts (graph self-maps, §4)
# ---------------------------------------------------------------------------


def toroidal_map(
    neighbors: list[np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """One adjacency-respecting random bijection of the region graph.

    Starts from a random seed assignment ``m(u0) = v0`` and grows breadth-
    first: each unassigned neighbour of ``u`` is mapped onto an unused
    neighbour of ``m(u)`` when one exists (preserving adjacency), otherwise
    onto a random unused region.  The result is always a permutation.
    """
    n = len(neighbors)
    image = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=bool)
    start = int(rng.integers(n))
    target = int(rng.integers(n))
    image[start] = target
    used[target] = True
    queue: deque[int] = deque([start])
    order = rng.permutation(n)
    while queue:
        u = queue.popleft()
        v = int(image[u])
        for un in neighbors[u]:
            un = int(un)
            if image[un] >= 0:
                continue
            candidates = [int(vn) for vn in neighbors[v] if not used[vn]]
            if candidates:
                choice = candidates[int(rng.integers(len(candidates)))]
            else:
                choice = _first_free(used, order)
            image[un] = choice
            used[choice] = True
            queue.append(un)
    for un in np.flatnonzero(image < 0):
        choice = _first_free(used, order)
        image[int(un)] = choice
        used[choice] = True
    return image


def _first_free(used: np.ndarray, order: np.ndarray) -> int:
    for v in order:
        if not used[v]:
            return int(v)
    raise DataError("toroidal map ran out of free vertices")  # pragma: no cover


def adjacency_preservation(neighbors: list[np.ndarray], image: np.ndarray) -> float:
    """Fraction of graph edges whose endpoints stay adjacent under ``image``.

    Diagnostic for the quality of a toroidal shift (§4 asks that distances be
    preserved 'in most cases').
    """
    neighbor_sets = [set(int(x) for x in ns) for ns in neighbors]
    total = 0
    kept = 0
    for u, ns in enumerate(neighbors):
        for w in ns:
            if u < int(w):
                total += 1
                if int(image[w]) in neighbor_sets[int(image[u])]:
                    kept += 1
    return kept / total if total else 1.0


#: Domain-level cache of toroidal-shift families.  §4 defines the |m| shifts
#: as randomizations of the *spatial domain*, so one family per region graph
#: is both faithful and fast: reusing the same permutations across function
#: pairs is the standard formulation of a permutation test.  The lock makes
#: the cache safe under the thread executor: parallel query map tasks over
#: the same region graph share one deterministically-seeded family instead
#: of racing to build (and evict) their own.
_TOROIDAL_CACHE: dict[tuple, np.ndarray] = {}
_TOROIDAL_CACHE_LIMIT = 32
_TOROIDAL_CACHE_LOCK = threading.Lock()


def domain_toroidal_maps(graph: DomainGraph, n_maps: int) -> np.ndarray:
    """The cached family of ``n_maps`` toroidal shifts of a region graph."""
    key = (
        graph.n_regions,
        graph.spatial_pairs.tobytes(),
        int(n_maps),
    )
    with _TOROIDAL_CACHE_LOCK:
        cached = _TOROIDAL_CACHE.get(key)
        if cached is None:
            neighbors = [graph.region_neighbors(r) for r in range(graph.n_regions)]
            rng = ensure_rng(zlib.crc32(key[1]) + graph.n_regions)
            cached = np.stack([toroidal_map(neighbors, rng) for _ in range(n_maps)])
            if len(_TOROIDAL_CACHE) >= _TOROIDAL_CACHE_LIMIT:
                _TOROIDAL_CACHE.pop(next(iter(_TOROIDAL_CACHE)))
            _TOROIDAL_CACHE[key] = cached
    return cached


def _toroidal_scores(
    fs1: FeatureSet,
    fs2: FeatureSet,
    graph: DomainGraph,
    n_permutations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    n_regions = fs1.shape[1]
    if n_regions < 2:
        # Degenerate spatial domain: fall back to temporal rotations.
        return _rotation_scores(fs1, fs2, n_permutations, rng)
    maps = domain_toroidal_maps(graph, n_permutations)

    p1, n1 = fs1.positive, fs1.negative
    p2, n2 = fs2.positive, fs2.negative
    u1, u2 = fs1.union(), fs2.union()
    # Co-occurrence matrices: C[r, s] = sum_t mask1[t, r] * mask2[t, s].
    c_pp = p1.T.astype(np.float64) @ p2.astype(np.float64)
    c_nn = n1.T.astype(np.float64) @ n2.astype(np.float64)
    c_pn = p1.T.astype(np.float64) @ n2.astype(np.float64)
    c_np = n1.T.astype(np.float64) @ p2.astype(np.float64)
    c_uu = u1.T.astype(np.float64) @ u2.astype(np.float64)

    scores = np.empty(n_permutations, dtype=np.float64)
    regions = np.arange(n_regions)
    for i in range(n_permutations):
        # mask2 region r is relocated to rows[r]; the intersection with
        # mask1 therefore pairs mask1 column rows[r] with mask2 column r.
        rows = maps[i]
        pp = c_pp[rows, regions].sum()
        nn = c_nn[rows, regions].sum()
        pn = c_pn[rows, regions].sum()
        np_ = c_np[rows, regions].sum()
        sig = c_uu[rows, regions].sum()
        scores[i] = (pp + nn - pn - np_) / sig if sig > 0 else 0.0
    return scores


# ---------------------------------------------------------------------------
# Combined spatio-temporal torus (§8 future work)
# ---------------------------------------------------------------------------


def _torus3_scores(
    fs1: FeatureSet,
    fs2: FeatureSet,
    graph: DomainGraph,
    n_permutations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Randomizations combining a toroidal spatial shift with a time rotation.

    The paper's §8 proposes extending the significance test to a 3-torus that
    wraps space and time together; each randomization here applies an
    adjacency-respecting spatial self-map *and* a circular time rotation to
    the second function's features, preserving both correlation structures
    simultaneously.
    """
    n_steps, n_regions = fs1.shape
    if n_regions < 2:
        return _rotation_scores(fs1, fs2, n_permutations, rng)
    maps = domain_toroidal_maps(graph, n_permutations)
    p1, n1, u1 = fs1.positive, fs1.negative, fs1.union()
    p2, n2, u2 = fs2.positive, fs2.negative, fs2.union()
    scores = np.empty(n_permutations, dtype=np.float64)
    for i in range(n_permutations):
        k = int(rng.integers(1, n_steps)) if n_steps > 1 else 0
        cols = maps[i]
        p2s = np.roll(p2, k, axis=0)
        n2s = np.roll(n2, k, axis=0)
        u2s = np.roll(u2, k, axis=0)
        # Column permutation: region r of fs2 relocated to cols[r].
        pp = int(np.count_nonzero(p1[:, cols] & p2s))
        nn = int(np.count_nonzero(n1[:, cols] & n2s))
        pn = int(np.count_nonzero(p1[:, cols] & n2s))
        np_ = int(np.count_nonzero(n1[:, cols] & p2s))
        sig = int(np.count_nonzero(u1[:, cols] & u2s))
        scores[i] = (pp + nn - pn - np_) / sig if sig > 0 else 0.0
    return scores


# ---------------------------------------------------------------------------
# Naive (unrestricted) permutation — ablation baseline
# ---------------------------------------------------------------------------


def _naive_scores(
    fs1: FeatureSet, fs2: FeatureSet, n_permutations: int, rng: np.random.Generator
) -> np.ndarray:
    """Scores under full independent shuffling of all spatio-temporal points.

    This is the 'standard Monte Carlo procedure' of §6.3: it ignores spatial
    and temporal dependence entirely.
    """
    shape = fs1.shape
    size = shape[0] * shape[1]
    p1 = fs1.positive.ravel()
    n1 = fs1.negative.ravel()
    p2 = fs2.positive.ravel()
    n2 = fs2.negative.ravel()
    scores = np.empty(n_permutations, dtype=np.float64)
    for i in range(n_permutations):
        perm = rng.permutation(size)
        pp = np.count_nonzero(p1 & p2[perm])
        nn = np.count_nonzero(n1 & n2[perm])
        pn = np.count_nonzero(p1 & n2[perm])
        np_ = np.count_nonzero(n1 & p2[perm])
        sig = np.count_nonzero((p1 | n1) & (p2 | n2)[perm])
        scores[i] = (pp + nn - pn - np_) / sig if sig > 0 else 0.0
    return scores
