"""Core of the Data Polygamy framework: topology-based relationship mining."""

from .clause import FEATURE_TYPES, Clause
from .corpus import (
    Corpus,
    CorpusIndex,
    IndexPartitionJob,
    IndexStats,
    QueryResult,
    RelationshipPairJob,
)
from .features import (
    FeatureExtractor,
    FeatureSet,
    FunctionFeatures,
    query_sublevel,
    query_superlevel,
    sublevel_mask,
    superlevel_mask,
)
from .gradients import GradientFeatureExtractor, gradient_magnitude
from .merge_tree import (
    MergeTree,
    PersistencePair,
    compute_join_tree,
    compute_split_tree,
)
from .operator import (
    DatasetIndex,
    IndexedFunction,
    PairOutcome,
    PairTask,
    RelationReport,
    RelationshipResult,
    enumerate_pair_tasks,
    evaluate_pair_task,
    relation,
)
from .relationship import RelationshipMeasures, evaluate_features, score_from_masks
from .scalar_function import ScalarFunction
from .significance import (
    DEFAULT_ALPHA,
    DEFAULT_PERMUTATIONS,
    SignificanceResult,
    adjacency_preservation,
    rotation_scores_all,
    significance_test,
    toroidal_map,
)
from .thresholds import (
    MIN_EXTREMA_FOR_EXTREME,
    SalientThresholds,
    extreme_thresholds,
    salient_cluster,
    salient_thresholds,
)

__all__ = [
    "Clause",
    "FEATURE_TYPES",
    "Corpus",
    "CorpusIndex",
    "IndexPartitionJob",
    "IndexStats",
    "QueryResult",
    "RelationshipPairJob",
    "FeatureExtractor",
    "FeatureSet",
    "FunctionFeatures",
    "query_sublevel",
    "query_superlevel",
    "sublevel_mask",
    "superlevel_mask",
    "GradientFeatureExtractor",
    "gradient_magnitude",
    "MergeTree",
    "PersistencePair",
    "compute_join_tree",
    "compute_split_tree",
    "DatasetIndex",
    "IndexedFunction",
    "PairOutcome",
    "PairTask",
    "RelationReport",
    "RelationshipResult",
    "enumerate_pair_tasks",
    "evaluate_pair_task",
    "relation",
    "RelationshipMeasures",
    "evaluate_features",
    "score_from_masks",
    "ScalarFunction",
    "DEFAULT_ALPHA",
    "DEFAULT_PERMUTATIONS",
    "SignificanceResult",
    "adjacency_preservation",
    "rotation_scores_all",
    "significance_test",
    "toroidal_map",
    "MIN_EXTREMA_FOR_EXTREME",
    "SalientThresholds",
    "extreme_thresholds",
    "salient_cluster",
    "salient_thresholds",
]
