"""Merge trees (join/split) with persistence pairing (§3.1, Appendix B.2).

The join tree tracks connected components of super-level sets under a
descending sweep of the function value; the split tree does the same for
sub-level sets under an ascending sweep.  Both are computed with a single
union-find sweep in ``O(N log N + N α(N))`` time.

Persistence pairing happens during the sweep (Procedure ComputeJoinTree,
line 16): when two components merge at a saddle, the *younger* component —
the one whose creating extremum is less extreme — dies, and its creator is
paired with the saddle.  This is the standard elder rule; the paper's
pseudo-code as printed orders the creators the other way around, but its own
running example (Fig. 4: the component created last, at the lower maximum
v6, dies at v5) follows the elder rule, which we therefore implement.

Simulated perturbation: all comparisons use the strict total order
``(value, vertex_id)`` so degenerate (equal-valued) inputs behave like Morse
functions.  Degenerate saddles where more than two components meet are merged
in one step, pairing every non-elder creator with the saddle — equivalent to
splitting the saddle into simple saddles (§B.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.domain_graph import DomainGraph
from ..utils.errors import TopologyError


@dataclass(frozen=True)
class PersistencePair:
    """A creator extremum paired with the saddle that destroys its component.

    ``destroyer`` is ``-1`` for the essential pair (the component that
    survives the whole sweep; its persistence spans the global range).
    """

    creator: int
    destroyer: int
    persistence: float


@dataclass
class MergeTree:
    """A join or split tree plus the persistence pairing of its extrema.

    Attributes
    ----------
    kind:
        ``"join"`` (tracks super-level sets; leaves are maxima) or
        ``"split"`` (tracks sub-level sets; leaves are minima).
    extrema:
        Vertex ids of the leaf extrema, in sweep order (most extreme first).
    pairs:
        One :class:`PersistencePair` per extremum, aligned with ``extrema``.
    edges:
        Tree edges ``(child_vertex, parent_vertex)`` discovered at merges;
        together with the leaf-to-saddle chains these form the merge tree of
        Fig. 4(a).
    root:
        The last vertex of the sweep (global minimum for join trees, global
        maximum for split trees).
    values:
        Reference to the vertex-indexed function values.
    """

    kind: str
    extrema: np.ndarray
    pairs: list[PersistencePair]
    edges: list[tuple[int, int]]
    root: int
    values: np.ndarray

    @property
    def n_extrema(self) -> int:
        """Number of leaf extrema (= number of persistence pairs)."""
        return int(self.extrema.size)

    def persistence_values(self) -> np.ndarray:
        """Persistence of each extremum, aligned with :attr:`extrema`."""
        return np.array([p.persistence for p in self.pairs], dtype=np.float64)

    def extremum_values(self) -> np.ndarray:
        """Function value at each extremum, aligned with :attr:`extrema`."""
        return self.values[self.extrema]

    def persistence_of(self, vertex: int) -> float:
        """Persistence of the extremum at ``vertex``."""
        for pair in self.pairs:
            if pair.creator == vertex:
                return pair.persistence
        raise TopologyError(f"vertex {vertex} is not a leaf extremum of this tree")


def compute_join_tree(
    graph: DomainGraph, flat_values: np.ndarray, order: np.ndarray | None = None
) -> MergeTree:
    """Join tree of a PL function on ``graph`` (descending sweep).

    Parameters
    ----------
    graph:
        The domain graph.
    flat_values:
        Vertex-indexed function values.
    order:
        Optional precomputed descending vertex order (perturbed); computed
        from ``flat_values`` when omitted.
    """
    if order is None:
        ids = np.arange(flat_values.size)
        order = np.lexsort((-ids, -flat_values))
    return _sweep(graph, flat_values, order, kind="join")


def compute_split_tree(
    graph: DomainGraph, flat_values: np.ndarray, order: np.ndarray | None = None
) -> MergeTree:
    """Split tree of a PL function on ``graph`` (ascending sweep)."""
    if order is None:
        ids = np.arange(flat_values.size)
        order = np.lexsort((ids, flat_values))
    return _sweep(graph, flat_values, order, kind="split")


def _earlier_neighbors(
    graph: DomainGraph, pos: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency restricted to already-processed neighbors.

    Returns ``(indptr, nbrs)`` such that ``nbrs[indptr[v]:indptr[v + 1]]``
    are exactly the neighbors of ``v`` with a smaller sweep rank.  Built
    entirely from vectorized NumPy over the graph's regular structure
    (spatial pairs replicated per step + temporal chains), so the Python
    sweep below never touches ``graph.neighbors`` — the per-vertex array
    concatenations that used to dominate the sweep's constant factor.
    """
    n = graph.n_vertices
    n_regions, n_steps = graph.n_regions, graph.n_steps
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    spatial = graph.spatial_pairs
    if spatial.size:
        base = np.arange(n_steps, dtype=np.int64) * n_regions
        a = (base[:, None] + spatial[:, 0]).ravel()
        b = (base[:, None] + spatial[:, 1]).ravel()
        src_parts += [a, b]
        dst_parts += [b, a]
    if n_steps > 1:
        u = np.arange(n - n_regions, dtype=np.int64)
        src_parts += [u, u + n_regions]
        dst_parts += [u + n_regions, u]
    if not src_parts:
        indptr = np.zeros(n + 1, dtype=np.int64)
        return indptr, np.zeros(0, dtype=np.int64)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    keep = pos[dst] < pos[src]
    src, dst = src[keep], dst[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    nbrs = dst[np.argsort(src, kind="stable")]
    return indptr, nbrs


def _sweep(
    graph: DomainGraph, flat_values: np.ndarray, order: np.ndarray, kind: str
) -> MergeTree:
    """Union-find sweep shared by join ("descending") and split ("ascending").

    ``order`` lists vertices from most to least extreme for the sweep
    direction.  ``pos[v]`` is the sweep rank of ``v``; a neighbour with a
    smaller rank has already been processed and belongs to some component.

    The sweep itself is inherently sequential, so the hot loop is built on
    flat arrays instead of per-vertex dict juggling: a list-backed
    union-find with path compression and union by rank, component metadata
    (creating extremum, current head) stored at the representative's slot,
    and the earlier-neighbor adjacency precomputed in one vectorized pass
    (:func:`_earlier_neighbors`).  Output — extrema order, pairs, edges,
    root — is bit-identical to the historical dict-based implementation.
    """
    n = flat_values.size
    if n == 0:
        raise TopologyError("cannot compute a merge tree of an empty function")
    if order.shape != (n,):
        raise TopologyError("vertex order length mismatch")
    values = np.asarray(flat_values, dtype=np.float64)

    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)

    indptr_arr, nbrs_arr = _earlier_neighbors(graph, pos)
    # Python lists: scalar indexing in the sequential sweep is several times
    # faster on lists than on NumPy arrays (no per-access boxing).
    indptr = indptr_arr.tolist()
    nbrs = nbrs_arr.tolist()
    pos_list = pos.tolist()
    values_list = values.ravel().tolist()

    parent = list(range(n))
    rank = [0] * n
    # Per-component metadata, stored at the union-find representative's slot.
    creator = [0] * n
    head = [0] * n

    extrema: list[int] = []
    pairs: list[PersistencePair] = []
    edges: list[tuple[int, int]] = []
    n_components = 0

    def union(a: int, b: int) -> int:
        """Merge the sets rooted at ``a`` and ``b``; returns the new root."""
        if rank[a] < rank[b]:
            a, b = b, a
        parent[b] = a
        if rank[a] == rank[b]:
            rank[a] += 1
        return a

    for v in order.tolist():
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            # v creates a new component: it is a leaf extremum.
            extrema.append(v)
            creator[v] = v
            head[v] = v
            n_components += 1
            continue
        # Distinct components among the earlier neighbors (2-3 neighbors for
        # typical domains: a linear membership scan beats set machinery).
        roots: list[int] = []
        for i in range(lo, hi):
            u = nbrs[i]
            r = u
            while parent[r] != r:
                r = parent[r]
            while parent[u] != r:  # path compression
                parent[u], u = r, parent[u]
            if r not in roots:
                roots.append(r)
        r = roots[0]
        if len(roots) == 1:
            # Regular vertex: extend the component; its head only moves at
            # saddles, so the metadata is re-homed to the new root's slot.
            c, h = creator[r], head[r]
            new_root = union(r, v)
            creator[new_root] = c
            head[new_root] = h
            continue
        # v is a destroyer: len(roots) components merge here (2 for Morse
        # inputs, possibly more for degenerate PL saddles).
        infos = [(creator[r], head[r], r) for r in roots]
        # The elder component is the one whose creator is most extreme,
        # i.e. has the smallest sweep rank.
        infos.sort(key=lambda info: pos_list[info[0]])
        elder_creator = infos[0][0]
        value_v = values_list[v]
        for _c, h, _r in infos:
            edges.append((h, v))
        for c, _h, _r in infos[1:]:
            pairs.append(
                PersistencePair(
                    creator=c,
                    destroyer=v,
                    persistence=abs(values_list[c] - value_v),
                )
            )
        new_root = r
        for other in roots[1:]:
            new_root = union(new_root, other)
        new_root = union(new_root, v)
        creator[new_root] = elder_creator
        head[new_root] = v
        n_components -= len(roots) - 1

    # Essential pairs: one per surviving component (one for connected
    # graphs).  Components are emitted in the order their *last* vertex was
    # swept (ascending), matching the insertion order the historical
    # dict-keyed implementation produced via its pop/re-insert cycle.
    last = int(order[-1])
    value_last = values_list[last]
    if n_components == 1:
        r = last
        while parent[r] != r:
            r = parent[r]
        survivor_roots = [r]
    else:
        last_touch: dict[int, int] = {}
        for rank_i, v in enumerate(order.tolist()):
            r = v
            while parent[r] != r:
                r = parent[r]
            last_touch[r] = rank_i
        survivor_roots = sorted(last_touch, key=last_touch.__getitem__)
    for root in survivor_roots:
        c = creator[root]
        span = abs(values_list[c] - value_last)
        pairs.append(PersistencePair(creator=c, destroyer=-1, persistence=span))
        if head[root] != last:
            edges.append((head[root], last))

    # Align pairs with the extrema order.
    by_creator = {p.creator: p for p in pairs}
    aligned = [by_creator[e] for e in extrema]
    return MergeTree(
        kind=kind,
        extrema=np.array(extrema, dtype=np.int64),
        pairs=aligned,
        edges=edges,
        root=last,
        values=values,
    )
