"""Merge trees (join/split) with persistence pairing (§3.1, Appendix B.2).

The join tree tracks connected components of super-level sets under a
descending sweep of the function value; the split tree does the same for
sub-level sets under an ascending sweep.  Both are computed with a single
union-find sweep in ``O(N log N + N α(N))`` time.

Persistence pairing happens during the sweep (Procedure ComputeJoinTree,
line 16): when two components merge at a saddle, the *younger* component —
the one whose creating extremum is less extreme — dies, and its creator is
paired with the saddle.  This is the standard elder rule; the paper's
pseudo-code as printed orders the creators the other way around, but its own
running example (Fig. 4: the component created last, at the lower maximum
v6, dies at v5) follows the elder rule, which we therefore implement.

Simulated perturbation: all comparisons use the strict total order
``(value, vertex_id)`` so degenerate (equal-valued) inputs behave like Morse
functions.  Degenerate saddles where more than two components meet are merged
in one step, pairing every non-elder creator with the saddle — equivalent to
splitting the saddle into simple saddles (§B.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.domain_graph import DomainGraph
from ..graph.union_find import UnionFind
from ..utils.errors import TopologyError


@dataclass(frozen=True)
class PersistencePair:
    """A creator extremum paired with the saddle that destroys its component.

    ``destroyer`` is ``-1`` for the essential pair (the component that
    survives the whole sweep; its persistence spans the global range).
    """

    creator: int
    destroyer: int
    persistence: float


@dataclass
class MergeTree:
    """A join or split tree plus the persistence pairing of its extrema.

    Attributes
    ----------
    kind:
        ``"join"`` (tracks super-level sets; leaves are maxima) or
        ``"split"`` (tracks sub-level sets; leaves are minima).
    extrema:
        Vertex ids of the leaf extrema, in sweep order (most extreme first).
    pairs:
        One :class:`PersistencePair` per extremum, aligned with ``extrema``.
    edges:
        Tree edges ``(child_vertex, parent_vertex)`` discovered at merges;
        together with the leaf-to-saddle chains these form the merge tree of
        Fig. 4(a).
    root:
        The last vertex of the sweep (global minimum for join trees, global
        maximum for split trees).
    values:
        Reference to the vertex-indexed function values.
    """

    kind: str
    extrema: np.ndarray
    pairs: list[PersistencePair]
    edges: list[tuple[int, int]]
    root: int
    values: np.ndarray

    @property
    def n_extrema(self) -> int:
        """Number of leaf extrema (= number of persistence pairs)."""
        return int(self.extrema.size)

    def persistence_values(self) -> np.ndarray:
        """Persistence of each extremum, aligned with :attr:`extrema`."""
        return np.array([p.persistence for p in self.pairs], dtype=np.float64)

    def extremum_values(self) -> np.ndarray:
        """Function value at each extremum, aligned with :attr:`extrema`."""
        return self.values[self.extrema]

    def persistence_of(self, vertex: int) -> float:
        """Persistence of the extremum at ``vertex``."""
        for pair in self.pairs:
            if pair.creator == vertex:
                return pair.persistence
        raise TopologyError(f"vertex {vertex} is not a leaf extremum of this tree")


def compute_join_tree(
    graph: DomainGraph, flat_values: np.ndarray, order: np.ndarray | None = None
) -> MergeTree:
    """Join tree of a PL function on ``graph`` (descending sweep).

    Parameters
    ----------
    graph:
        The domain graph.
    flat_values:
        Vertex-indexed function values.
    order:
        Optional precomputed descending vertex order (perturbed); computed
        from ``flat_values`` when omitted.
    """
    if order is None:
        ids = np.arange(flat_values.size)
        order = np.lexsort((-ids, -flat_values))
    return _sweep(graph, flat_values, order, kind="join")


def compute_split_tree(
    graph: DomainGraph, flat_values: np.ndarray, order: np.ndarray | None = None
) -> MergeTree:
    """Split tree of a PL function on ``graph`` (ascending sweep)."""
    if order is None:
        ids = np.arange(flat_values.size)
        order = np.lexsort((ids, flat_values))
    return _sweep(graph, flat_values, order, kind="split")


def _sweep(
    graph: DomainGraph, flat_values: np.ndarray, order: np.ndarray, kind: str
) -> MergeTree:
    """Union-find sweep shared by join ("descending") and split ("ascending").

    ``order`` lists vertices from most to least extreme for the sweep
    direction.  ``pos[v]`` is the sweep rank of ``v``; a neighbour with a
    smaller rank has already been processed and belongs to some component.
    """
    n = flat_values.size
    if n == 0:
        raise TopologyError("cannot compute a merge tree of an empty function")
    if order.shape != (n,):
        raise TopologyError("vertex order length mismatch")
    values = np.asarray(flat_values, dtype=np.float64)

    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)

    uf = UnionFind(n)
    # Per-component metadata keyed by the union-find representative.
    creator: dict[int, int] = {}
    head: dict[int, int] = {}

    extrema: list[int] = []
    pairs: list[PersistencePair] = []
    edges: list[tuple[int, int]] = []

    for v in order.tolist():
        rank_v = pos[v]
        roots: list[int] = []
        seen: set[int] = set()
        for u in graph.neighbors(v):
            if pos[u] < rank_v:
                r = uf.find(int(u))
                if r not in seen:
                    seen.add(r)
                    roots.append(r)
        if not roots:
            # v creates a new component: it is a leaf extremum.
            extrema.append(v)
            creator[v] = v
            head[v] = v
            continue
        if len(roots) == 1:
            # Regular vertex: extend the component; its head only moves at
            # saddles, so the metadata is just re-keyed to the new root.
            r = roots[0]
            c, h = creator.pop(r), head.pop(r)
            new_root = uf.union(r, v)
            creator[new_root] = c
            head[new_root] = h
            continue
        # v is a destroyer: len(roots) components merge here (2 for Morse
        # inputs, possibly more for degenerate PL saddles).
        infos = [(creator.pop(r), head.pop(r), r) for r in roots]
        # The elder component is the one whose creator is most extreme,
        # i.e. has the smallest sweep rank.
        infos.sort(key=lambda info: pos[info[0]])
        elder_creator = infos[0][0]
        for c, h, _ in infos:
            edges.append((h, v))
        for c, _, _ in infos[1:]:
            pairs.append(
                PersistencePair(
                    creator=c,
                    destroyer=v,
                    persistence=abs(float(values[c]) - float(values[v])),
                )
            )
        new_root = roots[0]
        for r in roots[1:]:
            new_root = uf.union(new_root, r)
        new_root = uf.union(new_root, v)
        creator[new_root] = elder_creator
        head[new_root] = v

    # Essential pairs: one per surviving component (one for connected graphs).
    last = int(order[-1])
    for root, c in creator.items():
        span = abs(float(values[c]) - float(values[last]))
        pairs.append(PersistencePair(creator=c, destroyer=-1, persistence=span))
        if head[root] != last:
            edges.append((head[root], last))

    # Align pairs with the extrema order.
    by_creator = {p.creator: p for p in pairs}
    aligned = [by_creator[e] for e in extrema]
    return MergeTree(
        kind=kind,
        extrema=np.array(extrema, dtype=np.int64),
        pairs=aligned,
        edges=edges,
        root=int(last),
        values=values,
    )
