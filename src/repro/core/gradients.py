"""Gradient-based features (paper §8, *Types of Features*).

The single-threshold level-set features of §3 can miss *relative* anomalies:
a sudden surge of taxi trips in a normally calm area never crosses the global
threshold.  The paper proposes using the gradient of the function over space
and time instead — high-gradient regions are sudden increases or decreases
regardless of absolute level.

:func:`gradient_magnitude` turns a scalar function into its PL gradient-
magnitude function on the same domain graph: the value at a vertex is the
maximum absolute difference to any neighbour (the discrete Lipschitz
constant at the vertex).  Because the result is just another scalar function,
the entire pipeline — merge trees, persistence thresholds, feature masks,
relationship scoring — applies unchanged; :class:`GradientFeatureExtractor`
packages that composition.
"""

from __future__ import annotations

import numpy as np

from .features import FeatureExtractor, FunctionFeatures
from .scalar_function import ScalarFunction


def gradient_magnitude(function: ScalarFunction) -> ScalarFunction:
    """The discrete gradient-magnitude function of ``function``.

    For vertex v with neighbours N(v):
    ``g(v) = max_{u in N(v)} |f(u) - f(v)|``.
    High values mark sudden spatio-temporal change — the §8 alternative
    feature definition.
    """
    values = function.values
    n_steps, n_regions = values.shape
    grad = np.zeros_like(values)

    # Temporal differences (both directions, vectorized).
    if n_steps > 1:
        diff = np.abs(np.diff(values, axis=0))
        grad[:-1] = np.maximum(grad[:-1], diff)
        grad[1:] = np.maximum(grad[1:], diff)

    # Spatial differences along every adjacency pair.
    for i, j in function.graph.spatial_pairs:
        diff = np.abs(values[:, i] - values[:, j])
        grad[:, i] = np.maximum(grad[:, i], diff)
        grad[:, j] = np.maximum(grad[:, j], diff)

    return ScalarFunction(
        function_id=f"{function.function_id}.gradient",
        values=grad,
        graph=function.graph,
        spatial=function.spatial,
        temporal=function.temporal,
        dataset=function.dataset,
    )


class GradientFeatureExtractor(FeatureExtractor):
    """Feature extraction on the gradient-magnitude function (§8).

    Produces :class:`FunctionFeatures` whose *positive* salient channel marks
    high-gradient spatio-temporal points (sudden changes).  The negative
    channel is dropped: a low gradient means the function is smooth there,
    which is normal behaviour, not a feature (§8 defines gradient features
    through *high* values only).
    """

    def extract(self, function: ScalarFunction) -> FunctionFeatures:
        features = super().extract(gradient_magnitude(function))
        features.function_id = f"{function.function_id}.gradient"
        features.salient.negative[:] = False
        features.extreme.negative[:] = False
        features.extreme_theta_neg = None
        return features
