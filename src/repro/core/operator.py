"""The relationship operator ``relation(D1, D2)`` (§4, §5.3).

Given two indexed data sets, the operator evaluates every pair of their
scalar functions at every common spatio-temporal resolution (finest first),
for both the salient and the extreme feature channels, and returns the
statistically significant relationships with their score and strength.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..graph.domain_graph import DomainGraph
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import DataError
from ..utils.rng import RngLike, ensure_rng
from .clause import Clause
from .features import FeatureExtractor, FeatureSet, FunctionFeatures
from .relationship import evaluate_features
from .scalar_function import ScalarFunction
from .significance import (
    SIGNIFICANCE_MODES,
    SignificanceRequest,
    significance_batch,
    significance_test,
)

#: Pair tasks batched per :func:`evaluate_pair_chunk` call.  Large enough to
#: amortize the stacked NumPy passes, small enough to keep map tasks granular.
SIGNIFICANCE_CHUNK_TASKS = 64


@dataclass
class IndexedFunction:
    """A scalar function with its precomputed features (one resolution)."""

    function: ScalarFunction
    features: FunctionFeatures

    @property
    def function_id(self) -> str:
        """The function's stable identifier."""
        return self.function.function_id

    def feature_set(self, feature_type: str) -> FeatureSet:
        """The salient or extreme channel."""
        if feature_type == "salient":
            return self.features.salient
        if feature_type == "extreme":
            return self.features.extreme
        raise DataError(f"unknown feature type {feature_type!r}")


@dataclass
class DatasetIndex:
    """All indexed functions of one data set, keyed by resolution pair."""

    dataset: str
    functions: dict[
        tuple[SpatialResolution, TemporalResolution], list[IndexedFunction]
    ] = field(default_factory=dict)

    def resolutions(
        self,
    ) -> list[tuple[SpatialResolution, TemporalResolution]]:
        """Materialized resolution pairs, finest first (spatial, temporal)."""
        return sorted(self.functions, key=lambda k: (k[0].rank, k[1].rank))

    @property
    def n_functions(self) -> int:
        """Scalar-function count at the native-most resolution."""
        if not self.functions:
            return 0
        return max(len(v) for v in self.functions.values())


@dataclass(frozen=True)
class RelationshipResult:
    """One statistically significant relationship (a row of the §6.3 tables)."""

    dataset1: str
    dataset2: str
    function1: str
    function2: str
    spatial: SpatialResolution
    temporal: TemporalResolution
    feature_type: str
    score: float
    strength: float
    p_value: float
    n_related: int
    precision: float
    recall: float

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"{self.function1} ~ {self.function2} "
            f"[{self.temporal.value}, {self.spatial.value}; {self.feature_type}] "
            f"tau={self.score:+.2f} rho={self.strength:.2f} p={self.p_value:.3f}"
        )


@dataclass
class RelationReport:
    """Outcome of one ``relation(D1, D2)`` evaluation.

    ``results`` holds the significant relationships.  The counters feed the
    pruning experiment (Fig. 11): ``n_evaluated`` counts every (function
    pair, resolution, feature type) combination considered, ``n_candidates``
    those that were feature-related and passed the clause, and
    ``n_significant`` those that survived the Monte Carlo test.
    """

    dataset1: str
    dataset2: str
    results: list[RelationshipResult] = field(default_factory=list)
    n_evaluated: int = 0
    n_candidates: int = 0
    n_significant: int = 0

    def extend(self, other: "RelationReport") -> None:
        """Merge counters/results of another report (used by queries)."""
        self.results.extend(other.results)
        self.n_evaluated += other.n_evaluated
        self.n_candidates += other.n_candidates
        self.n_significant += other.n_significant


def _pair_seed(base: int, *tokens: str) -> int:
    """Deterministic per-pair RNG seed, independent of iteration order."""
    digest = zlib.crc32("|".join(tokens).encode())
    return (base * 1_000_003 + digest) % (2**63 - 1)


def _pair_rng(base: int, *tokens: str) -> np.random.Generator:
    """A fresh per-function-pair generator spawned via ``SeedSequence``.

    Every (function pair, resolution, feature type) combination gets its own
    independent stream derived from the deterministic pair seed — never a
    generator shared across tasks — so evaluations can run on any worker in
    any order and still produce bit-identical p-values.
    """
    return np.random.default_rng(np.random.SeedSequence(_pair_seed(base, *tokens)))


def _overlap_slices(
    f1: ScalarFunction, f2: ScalarFunction
) -> tuple[slice, slice] | None:
    """Aligned time-slices of the two functions' overlapping step labels."""
    l1 = f1.graph.step_labels
    l2 = f2.graph.step_labels
    first = max(int(l1[0]), int(l2[0]))
    last = min(int(l1[-1]), int(l2[-1]))
    if last < first:
        return None
    s1 = slice(first - int(l1[0]), last - int(l1[0]) + 1)
    s2 = slice(first - int(l2[0]), last - int(l2[0]) + 1)
    return s1, s2


@dataclass(frozen=True)
class PairTask:
    """One schedulable unit of a relationship query: a function pair.

    ``seq`` is the position of the task in the canonical serial evaluation
    order (common resolutions finest-first, then ``index1``'s functions, then
    ``index2``'s); reducers sort outcomes by it so parallel execution
    reassembles reports in exactly the serial order.
    """

    seq: int
    fn1: IndexedFunction
    fn2: IndexedFunction
    spatial: SpatialResolution
    temporal: TemporalResolution


@dataclass
class PairOutcome:
    """What evaluating one :class:`PairTask` contributed to the report."""

    seq: int
    n_evaluated: int = 0
    n_candidates: int = 0
    results: list[RelationshipResult] = field(default_factory=list)


def enumerate_pair_tasks(
    index1: DatasetIndex, index2: DatasetIndex, clause: Clause
) -> list[PairTask]:
    """All function-pair tasks of ``relation(index1, index2)``, serial order."""
    tasks: list[PairTask] = []
    common = [key for key in index1.resolutions() if key in set(index2.resolutions())]
    for key in common:
        spatial, temporal = key
        if not clause.admits_resolution(spatial, temporal):
            continue
        for fn1 in index1.functions[key]:
            for fn2 in index2.functions[key]:
                tasks.append(PairTask(len(tasks), fn1, fn2, spatial, temporal))
    return tasks


def evaluate_pair_task(
    task: PairTask,
    dataset1: str,
    dataset2: str,
    clause: Clause,
    n_permutations: int,
    alternative: str,
    base_seed: int,
    extractor: FeatureExtractor | None,
) -> PairOutcome:
    """Evaluate one function pair: feature comparison + significance test.

    Self-contained and side-effect free so it can run as a map task on any
    worker: the RNG is spawned per pair from ``base_seed`` (see
    :func:`_pair_rng`), never shared.
    """
    fn1, fn2, spatial, temporal = task.fn1, task.fn2, task.spatial, task.temporal
    outcome = PairOutcome(seq=task.seq)
    slices = _overlap_slices(fn1.function, fn2.function)
    if slices is None:
        return outcome
    s1, s2 = slices
    graph = DomainGraph(
        n_regions=fn1.function.n_regions,
        n_steps=s1.stop - s1.start,
        spatial_pairs=fn1.function.graph.spatial_pairs,
        step_labels=fn1.function.graph.step_labels[s1],
    )
    for feature_type in clause.feature_types:
        outcome.n_evaluated += 1
        fs1 = _resolve_features(fn1, feature_type, clause, extractor)
        fs2 = _resolve_features(fn2, feature_type, clause, extractor)
        fs1 = fs1.slice_steps(s1.start, s1.stop)
        fs2 = fs2.slice_steps(s2.start, s2.stop)
        measures = evaluate_features(fs1, fs2)
        if not measures.is_related or not clause.admits_measures(measures):
            continue
        outcome.n_candidates += 1
        sig = significance_test(
            fs1,
            fs2,
            graph,
            n_permutations=n_permutations,
            alternative=alternative,
            seed=_pair_rng(
                base_seed,
                fn1.function_id,
                fn2.function_id,
                spatial.value,
                temporal.value,
                feature_type,
            ),
        )
        if not sig.is_significant(clause.alpha):
            continue
        outcome.results.append(
            RelationshipResult(
                dataset1=dataset1,
                dataset2=dataset2,
                function1=fn1.function_id,
                function2=fn2.function_id,
                spatial=spatial,
                temporal=temporal,
                feature_type=feature_type,
                score=measures.score,
                strength=measures.strength,
                p_value=sig.p_value,
                n_related=measures.n_related,
                precision=measures.precision,
                recall=measures.recall,
            )
        )
    return outcome


def evaluate_pair_chunk(
    tasks: list[PairTask],
    dataset1: str,
    dataset2: str,
    clause: Clause,
    n_permutations: int,
    alternative: str,
    base_seed: int,
    extractor: FeatureExtractor | None,
    significance_mode: str = "exact",
) -> list[PairOutcome]:
    """Evaluate a chunk of pair tasks with batched significance testing.

    The chunk is where the fast modes pay off: candidate pairs across all
    tasks are queued into one :func:`significance_batch` call (stacked FFT /
    co-occurrence passes instead of per-pair Python loops), and domain
    graphs are built once per (graph, overlap) instead of once per task.
    ``significance_mode="exact"`` simply delegates to
    :func:`evaluate_pair_task` per task, so the reference path stays
    untouched.  Outcomes are returned in task order, one per task, and are
    identical (batched) or decision-identical (adaptive) to exact mode's.
    """
    if significance_mode == "exact":
        return [
            evaluate_pair_task(
                task,
                dataset1,
                dataset2,
                clause,
                n_permutations,
                alternative,
                base_seed,
                extractor,
            )
            for task in tasks
        ]

    graphs: dict[tuple[int, int, int, int], DomainGraph] = {}
    outcomes: list[PairOutcome] = []
    requests: list[SignificanceRequest] = []
    holders: list[tuple[PairOutcome, PairTask, str, object]] = []
    for task in tasks:
        fn1, fn2 = task.fn1, task.fn2
        outcome = PairOutcome(seq=task.seq)
        outcomes.append(outcome)
        slices = _overlap_slices(fn1.function, fn2.function)
        if slices is None:
            continue
        s1, s2 = slices
        graph_key = (
            id(fn1.function.graph.spatial_pairs),
            id(fn1.function.graph.step_labels),
            s1.start,
            s1.stop,
        )
        graph = graphs.get(graph_key)
        if graph is None:
            graph = DomainGraph(
                n_regions=fn1.function.n_regions,
                n_steps=s1.stop - s1.start,
                spatial_pairs=fn1.function.graph.spatial_pairs,
                step_labels=fn1.function.graph.step_labels[s1],
            )
            graphs[graph_key] = graph
        for feature_type in clause.feature_types:
            outcome.n_evaluated += 1
            fs1 = _resolve_features(fn1, feature_type, clause, extractor)
            fs2 = _resolve_features(fn2, feature_type, clause, extractor)
            fs1 = fs1.slice_steps(s1.start, s1.stop)
            fs2 = fs2.slice_steps(s2.start, s2.stop)
            measures = evaluate_features(fs1, fs2)
            if not measures.is_related or not clause.admits_measures(measures):
                continue
            outcome.n_candidates += 1
            requests.append(
                SignificanceRequest(
                    fs1,
                    fs2,
                    graph,
                    seed=_pair_rng(
                        base_seed,
                        fn1.function_id,
                        fn2.function_id,
                        task.spatial.value,
                        task.temporal.value,
                        feature_type,
                    ),
                    observed=measures.score,
                )
            )
            holders.append((outcome, task, feature_type, measures))

    sigs = significance_batch(
        requests,
        n_permutations=n_permutations,
        alternative=alternative,
        mode=significance_mode,
        alpha=clause.alpha,
    )
    for (outcome, task, feature_type, measures), sig in zip(holders, sigs):
        if not sig.is_significant(clause.alpha):
            continue
        outcome.results.append(
            RelationshipResult(
                dataset1=dataset1,
                dataset2=dataset2,
                function1=task.fn1.function_id,
                function2=task.fn2.function_id,
                spatial=task.spatial,
                temporal=task.temporal,
                feature_type=feature_type,
                score=measures.score,
                strength=measures.strength,
                p_value=sig.p_value,
                n_related=measures.n_related,
                precision=measures.precision,
                recall=measures.recall,
            )
        )
    return outcomes


def relation(
    index1: DatasetIndex,
    index2: DatasetIndex,
    clause: Clause | None = None,
    n_permutations: int = 1000,
    alternative: str = "two-sided",
    seed: RngLike = 0,
    extractor: FeatureExtractor | None = None,
    significance_mode: str = "exact",
) -> RelationReport:
    """Evaluate all relationships between two indexed data sets.

    Parameters
    ----------
    index1, index2:
        Dataset indexes produced by :class:`~repro.core.corpus.Corpus`.
    clause:
        Optional filters (defaults to no filtering, α = 5%).
    n_permutations:
        Monte Carlo randomizations per significance test.
    alternative:
        Tail of the test (see :func:`significance_test`).
    seed:
        Base seed; per-pair seeds are derived deterministically from it.
    extractor:
        Only needed when the clause pins custom thresholds (to recompute
        features for those functions).
    significance_mode:
        ``"exact"`` (default), ``"batched"`` or ``"adaptive"`` — see
        :mod:`repro.core.significance`.  Batched and adaptive evaluate
        tasks in chunks of :data:`SIGNIFICANCE_CHUNK_TASKS` through
        :func:`significance_batch`.

    ``relation`` runs the tasks serially; ``CorpusIndex.query`` routes the
    same :func:`evaluate_pair_task` units through the map-reduce engine, so
    the two paths produce bit-identical reports.
    """
    if clause is None:
        clause = Clause()
    if index1.dataset == index2.dataset:
        raise DataError("relation() requires two distinct data sets")
    if significance_mode not in SIGNIFICANCE_MODES:
        raise DataError(f"unknown significance mode {significance_mode!r}")
    rng = ensure_rng(seed)
    base_seed = int(rng.integers(2**62))

    report = RelationReport(dataset1=index1.dataset, dataset2=index2.dataset)
    tasks = enumerate_pair_tasks(index1, index2, clause)
    for lo in range(0, len(tasks), SIGNIFICANCE_CHUNK_TASKS):
        for outcome in evaluate_pair_chunk(
            tasks[lo : lo + SIGNIFICANCE_CHUNK_TASKS],
            report.dataset1,
            report.dataset2,
            clause,
            n_permutations,
            alternative,
            base_seed,
            extractor,
            significance_mode,
        ):
            report.n_evaluated += outcome.n_evaluated
            report.n_candidates += outcome.n_candidates
            report.results.extend(outcome.results)
    report.n_significant = len(report.results)
    return report


def _resolve_features(
    fn: IndexedFunction,
    feature_type: str,
    clause: Clause,
    extractor: FeatureExtractor | None,
) -> FeatureSet:
    """Precomputed features, or clause-supplied-threshold features (§5.3)."""
    custom = clause.thresholds.get(fn.function_id)
    if custom is None:
        return fn.feature_set(feature_type)
    if extractor is None:
        extractor = FeatureExtractor()
    theta_pos, theta_neg = custom
    return extractor.extract_with_thresholds(fn.function, theta_pos, theta_neg)
