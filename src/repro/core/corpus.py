"""Corpus indexing and relationship queries (§5.2, §5.3).

A :class:`Corpus` holds a collection of data sets over one city.  Indexing
materializes every viable scalar function of every data set at every
evaluation resolution (Fig. 6), builds the merge-tree-driven features
(salient + extreme), and records the phase timings the performance
experiments report.  A :class:`CorpusIndex` then answers relationship
queries: *find relationships between D1 and D2 satisfying clause*.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from ..data.aggregation import FunctionSpec, aggregate, default_specs
from ..data.dataset import Dataset
from ..spatial.city import CityModel
from ..spatial.resolution import SpatialResolution, viable_spatial_resolutions
from ..temporal.resolution import TemporalResolution, viable_temporal_resolutions
from ..utils.errors import DataError, QueryError
from ..utils.rng import RngLike
from .clause import Clause
from .features import FeatureExtractor
from .operator import (
    DatasetIndex,
    IndexedFunction,
    RelationReport,
    RelationshipResult,
    relation,
)
from .scalar_function import ScalarFunction


@dataclass
class IndexStats:
    """Bookkeeping of one indexing run (feeds Figs. 8 and §5.4).

    ``n_scalar_functions`` counts function-resolution materializations (the
    paper's 'computations'); byte counters account for the §5.4 space
    overhead comparison.
    """

    scalar_seconds: float = 0.0
    feature_seconds: float = 0.0
    n_scalar_functions: int = 0
    n_feature_sets: int = 0
    raw_bytes: int = 0
    function_bytes: int = 0
    feature_bytes: int = 0


@dataclass
class QueryResult:
    """Outcome of a relationship query over a corpus.

    ``results`` contains the statistically significant relationships of all
    evaluated data set pairs; the counters aggregate the per-pair reports.
    """

    results: list[RelationshipResult] = field(default_factory=list)
    reports: list[RelationReport] = field(default_factory=list)
    n_evaluated: int = 0
    n_candidates: int = 0
    n_significant: int = 0
    elapsed_seconds: float = 0.0

    @property
    def evaluations_per_minute(self) -> float:
        """Relationship-evaluation throughput (Fig. 9's metric)."""
        if self.elapsed_seconds == 0.0:
            return 0.0
        return self.n_evaluated / self.elapsed_seconds * 60.0

    def top(self, n: int = 10, by: str = "score") -> list[RelationshipResult]:
        """The ``n`` strongest relationships by |score| or strength."""
        if by == "score":
            key = lambda r: abs(r.score)  # noqa: E731 - tiny sort key
        elif by == "strength":
            key = lambda r: r.strength  # noqa: E731
        else:
            raise QueryError(f"unknown sort key {by!r}")
        return sorted(self.results, key=key, reverse=True)[:n]

    def between(self, dataset1: str, dataset2: str) -> list[RelationshipResult]:
        """Relationships of one unordered data set pair."""
        names = {dataset1, dataset2}
        return [r for r in self.results if {r.dataset1, r.dataset2} == names]


class Corpus:
    """A collection of data sets over one city, ready for indexing."""

    def __init__(
        self,
        datasets: list[Dataset],
        city: CityModel,
        extractor: FeatureExtractor | None = None,
        fill: str = "global_mean",
    ) -> None:
        names = [d.name for d in datasets]
        if len(set(names)) != len(names):
            raise DataError("data set names within a corpus must be unique")
        if not datasets:
            raise DataError("a corpus needs at least one data set")
        self.datasets = {d.name: d for d in datasets}
        self.city = city
        self.extractor = extractor or FeatureExtractor()
        self.fill = fill

    def build_index(
        self,
        spatial: tuple[SpatialResolution, ...] | None = None,
        temporal: tuple[TemporalResolution, ...] | None = None,
        specs: dict[str, list[FunctionSpec]] | None = None,
    ) -> "CorpusIndex":
        """Materialize scalar functions and features for every data set.

        Parameters
        ----------
        spatial, temporal:
            Optional whitelists restricting the evaluation resolutions (used
            by benchmarks to bound cost).  Defaults to every viable
            resolution of each data set.
        specs:
            Optional per-data-set function specs (defaults to all of §5.1's
            count + attribute functions).
        """
        index = CorpusIndex(city=self.city, corpus=self)
        for dataset in self.datasets.values():
            ds_index = DatasetIndex(dataset=dataset.name)
            index.stats.raw_bytes += dataset.nbytes()
            ds_specs = (specs or {}).get(dataset.name) or default_specs(dataset)
            for s_res in self._spatial_for(dataset, spatial):
                for t_res in self._temporal_for(dataset, temporal):
                    self._index_one(index, ds_index, dataset, ds_specs, s_res, t_res)
            index.datasets[dataset.name] = ds_index
        return index

    # -- internals -----------------------------------------------------------

    def _spatial_for(
        self, dataset: Dataset, whitelist: tuple[SpatialResolution, ...] | None
    ) -> list[SpatialResolution]:
        viable = viable_spatial_resolutions(dataset.schema.spatial_resolution)
        available = set(self.city.available_resolutions())
        out = [r for r in viable if r in available]
        if whitelist is not None:
            out = [r for r in out if r in whitelist]
        return out

    def _temporal_for(
        self, dataset: Dataset, whitelist: tuple[TemporalResolution, ...] | None
    ) -> list[TemporalResolution]:
        viable = viable_temporal_resolutions(dataset.schema.temporal_resolution)
        if whitelist is not None:
            viable = tuple(r for r in viable if r in whitelist)
        return list(viable)

    def _index_one(
        self,
        index: "CorpusIndex",
        ds_index: DatasetIndex,
        dataset: Dataset,
        specs: list[FunctionSpec],
        s_res: SpatialResolution,
        t_res: TemporalResolution,
    ) -> None:
        regions = (
            None
            if s_res is SpatialResolution.CITY
            else self.city.region_set(s_res)
        )
        start = time.perf_counter()
        aggregated = aggregate(
            dataset, s_res, t_res, regions=regions, specs=specs, fill=self.fill
        )
        index.stats.scalar_seconds += time.perf_counter() - start
        index.stats.n_scalar_functions += len(aggregated)

        pairs = self.city.spatial_pairs(s_res)
        indexed: list[IndexedFunction] = []
        start = time.perf_counter()
        for agg in aggregated:
            function = ScalarFunction.from_aggregated(agg, spatial_pairs=pairs)
            features = self.extractor.extract(function)
            index.stats.function_bytes += function.nbytes()
            index.stats.feature_bytes += features.nbytes()
            indexed.append(IndexedFunction(function=function, features=features))
        index.stats.feature_seconds += time.perf_counter() - start
        index.stats.n_feature_sets += len(indexed)
        ds_index.functions[(s_res, t_res)] = indexed


@dataclass
class CorpusIndex:
    """The indexed corpus: per-data-set function/feature stores + stats."""

    city: CityModel
    corpus: Corpus
    datasets: dict[str, DatasetIndex] = field(default_factory=dict)
    stats: IndexStats = field(default_factory=IndexStats)

    def dataset_index(self, name: str) -> DatasetIndex:
        """The index of one data set (QueryError if unknown)."""
        try:
            return self.datasets[name]
        except KeyError:
            raise QueryError(f"data set {name!r} is not indexed") from None

    def query(
        self,
        datasets1: list[str] | None = None,
        datasets2: list[str] | None = None,
        clause: Clause | None = None,
        n_permutations: int = 1000,
        alternative: str = "two-sided",
        seed: RngLike = 0,
    ) -> QueryResult:
        """Find relationships between D1 and D2 satisfying ``clause`` (§5.3).

        ``datasets1`` defaults to every indexed data set; ``datasets2``
        defaults to the full corpus (the paper's ``D2 = ∅`` convention).
        Every unordered pair (Di, Dj) with Di ≠ Dj is evaluated once.
        """
        if clause is None:
            clause = Clause()
        d1 = datasets1 or list(self.datasets)
        d2 = datasets2 or list(self.datasets)
        for name in itertools.chain(d1, d2):
            if name not in self.datasets:
                raise QueryError(f"data set {name!r} is not indexed")

        # Pairs are canonicalized alphabetically so per-pair RNG seeds (and
        # hence p-values) do not depend on the order data sets were listed.
        pairs: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        for a in d1:
            for b in d2:
                if a == b:
                    continue
                key = (a, b) if a <= b else (b, a)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append(key)

        result = QueryResult()
        start = time.perf_counter()
        for a, b in pairs:
            report = relation(
                self.datasets[a],
                self.datasets[b],
                clause=clause,
                n_permutations=n_permutations,
                alternative=alternative,
                seed=seed,
                extractor=self.corpus.extractor,
            )
            result.reports.append(report)
            result.results.extend(report.results)
            result.n_evaluated += report.n_evaluated
            result.n_candidates += report.n_candidates
            result.n_significant += report.n_significant
        result.elapsed_seconds = time.perf_counter() - start
        return result
