"""Corpus indexing and relationship queries (§5.2, §5.3).

A :class:`Corpus` holds a collection of data sets over one city.  Indexing
materializes every viable scalar function of every data set at every
evaluation resolution (Fig. 6), builds the merge-tree-driven features
(salient + extreme), and records the phase timings the performance
experiments report.  A :class:`CorpusIndex` then answers relationship
queries: *find relationships between D1 and D2 satisfying clause*.

Parallel execution (§5.4).  Both phases are expressed as map-reduce jobs on
:class:`repro.mapreduce.LocalEngine` — the paper's Hadoop deployment in
miniature:

* :class:`IndexPartitionJob` maps over (data set, resolution) partitions and
  reduces the materialized functions into one :class:`DatasetIndex` per data
  set.
* :class:`RelationshipPairJob` maps over individual function pairs
  (:class:`~repro.core.operator.PairTask`) and reduces their outcomes into
  one :class:`~repro.core.operator.RelationReport` per data set pair.

``build_index(..., n_workers=4, executor="thread")`` and
``query(..., n_workers=4, executor="thread")`` therefore fan work out across
cores while producing **bit-identical** results to the serial path: map
outputs are reassembled in canonical order and every significance test
spawns its own per-pair RNG (see ``operator._pair_rng``).
``executor="process"`` extends the same guarantee to worker *processes*
(jobs and payloads are pickle-clean; large matrices travel through the
shared-memory plane), which also parallelizes the pure-Python merge-tree
sweeps that dominate indexing.  Knobs left unset fall back to
``$REPRO_EXECUTOR`` / ``$REPRO_WORKERS``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .. import obs
from ..data.aggregation import FunctionSpec, aggregate, default_specs
from ..data.dataset import Dataset
from ..spatial.city import CityModel
from ..spatial.resolution import SpatialResolution, viable_spatial_resolutions
from ..temporal.resolution import TemporalResolution, viable_temporal_resolutions
from ..utils.errors import DataError, QueryError
from ..utils.rng import RngLike, ensure_rng
from .clause import Clause
from .features import FeatureExtractor
from .operator import (
    SIGNIFICANCE_CHUNK_TASKS,
    DatasetIndex,
    IndexedFunction,
    PairTask,
    RelationReport,
    RelationshipResult,
    enumerate_pair_tasks,
    evaluate_pair_chunk,
)
from .scalar_function import ScalarFunction
from .significance import SIGNIFICANCE_MODES

# Imported after the core modules above: repro.mapreduce.__init__ pulls in
# pipeline.py, which imports repro.core.operator — already materialized at
# this point, so the import is cycle-free.
from ..mapreduce.engine import default_engine
from ..mapreduce.job import Engine, JobStats, MapReduceJob


@dataclass
class IndexStats:
    """Bookkeeping of one indexing run (feeds Figs. 8 and §5.4).

    ``n_scalar_functions`` counts function-resolution materializations (the
    paper's 'computations'); byte counters account for the §5.4 space
    overhead comparison.
    """

    scalar_seconds: float = 0.0
    feature_seconds: float = 0.0
    n_scalar_functions: int = 0
    n_feature_sets: int = 0
    raw_bytes: int = 0
    function_bytes: int = 0
    feature_bytes: int = 0

    def merge(self, other: "IndexStats") -> None:
        """Accumulate another run's counters (used by the reduce phase)."""
        self.scalar_seconds += other.scalar_seconds
        self.feature_seconds += other.feature_seconds
        self.n_scalar_functions += other.n_scalar_functions
        self.n_feature_sets += other.n_feature_sets
        self.raw_bytes += other.raw_bytes
        self.function_bytes += other.function_bytes
        self.feature_bytes += other.feature_bytes


@dataclass
class QueryResult:
    """Outcome of a relationship query over a corpus.

    ``results`` contains the statistically significant relationships of all
    evaluated data set pairs; the counters aggregate the per-pair reports.
    ``job_stats`` carries the per-task timings of the map-reduce execution
    (one map task per function pair) for the scalability experiments.
    """

    results: list[RelationshipResult] = field(default_factory=list)
    reports: list[RelationReport] = field(default_factory=list)
    n_evaluated: int = 0
    n_candidates: int = 0
    n_significant: int = 0
    elapsed_seconds: float = 0.0
    job_stats: JobStats | None = None
    significance_mode: str = "exact"

    @property
    def evaluations_per_minute(self) -> float:
        """Relationship-evaluation throughput (Fig. 9's metric)."""
        if self.elapsed_seconds == 0.0:
            return 0.0
        return self.n_evaluated / self.elapsed_seconds * 60.0

    def top(self, n: int = 10, by: str = "score") -> list[RelationshipResult]:
        """The ``n`` strongest relationships by |score| or strength."""
        if by == "score":
            key = lambda r: abs(r.score)  # noqa: E731 - tiny sort key
        elif by == "strength":
            key = lambda r: r.strength  # noqa: E731
        else:
            raise QueryError(f"unknown sort key {by!r}")
        return sorted(self.results, key=key, reverse=True)[:n]

    def between(self, dataset1: str, dataset2: str) -> list[RelationshipResult]:
        """Relationships of one unordered data set pair."""
        names = {dataset1, dataset2}
        return [r for r in self.results if {r.dataset1, r.dataset2} == names]


@dataclass
class IndexPartition:
    """Map output of :class:`IndexPartitionJob`: one (data set, resolution).

    ``seq`` is the partition's position in the canonical serial indexing
    order; the reducer sorts by it so the assembled ``DatasetIndex`` lists
    resolutions in exactly the order the serial loop would have produced.
    """

    seq: int
    resolution: tuple[SpatialResolution, TemporalResolution]
    functions: list[IndexedFunction]
    stats: IndexStats


class IndexPartitionJob(MapReduceJob):
    """Job 1+2 fused: materialize scalar functions + features per partition.

    Map input: ``((dataset_name, s_res, t_res), (seq, dataset, specs,
    regions, spatial_pairs))``.  The mapper aggregates the data set at one
    resolution and extracts merge-tree features for every resulting function;
    the reducer assembles one :class:`DatasetIndex` per data set.
    """

    def __init__(self, extractor: FeatureExtractor, fill: str) -> None:
        self.extractor = extractor
        self.fill = fill

    def map(self, key: Any, value: Any):
        dataset_name, s_res, t_res = key
        seq, dataset, specs, regions, pairs = value
        stats = IndexStats()
        start = time.perf_counter()
        aggregated = aggregate(
            dataset, s_res, t_res, regions=regions, specs=specs, fill=self.fill
        )
        stats.scalar_seconds = time.perf_counter() - start
        stats.n_scalar_functions = len(aggregated)

        indexed: list[IndexedFunction] = []
        start = time.perf_counter()
        for agg in aggregated:
            function = ScalarFunction.from_aggregated(agg, spatial_pairs=pairs)
            features = self.extractor.extract(function)
            stats.function_bytes += function.nbytes()
            stats.feature_bytes += features.nbytes()
            indexed.append(IndexedFunction(function=function, features=features))
        stats.feature_seconds = time.perf_counter() - start
        stats.n_feature_sets = len(indexed)
        yield dataset_name, IndexPartition(seq, (s_res, t_res), indexed, stats)

    def reduce(self, key: Any, values: list[Any]):
        # Per-partition stats are kept apart (not merged here): incremental
        # updates splice single partitions, so their IndexStats contribution
        # must stay attributable to one (data set, resolution).
        ds_index = DatasetIndex(dataset=key)
        stats_by_resolution: dict[Any, IndexStats] = {}
        for part in sorted(values, key=lambda p: p.seq):
            ds_index.functions[part.resolution] = part.functions
            stats_by_resolution[part.resolution] = part.stats
        yield key, (ds_index, stats_by_resolution)


class RelationshipPairJob(MapReduceJob):
    """One map task per function pair; one reducer per data set pair.

    Map input: ``((pair_seq, name1, name2), (payload, base_seed))`` where
    ``payload`` is one :class:`~repro.core.operator.PairTask` (exact mode)
    or a list of them (batched/adaptive modes, which amortize the stacked
    significance passes across the chunk).  The mapper runs the feature
    comparison and (when the clause admits it) the restricted Monte Carlo
    significance test; the reducer sorts outcomes back into serial order
    and assembles the pair's :class:`RelationReport`.
    """

    def __init__(
        self,
        clause: Clause,
        n_permutations: int,
        alternative: str,
        extractor: FeatureExtractor | None,
        significance_mode: str = "exact",
    ) -> None:
        self.clause = clause
        self.n_permutations = n_permutations
        self.alternative = alternative
        self.extractor = extractor
        self.significance_mode = significance_mode

    def map(self, key: Any, value: Any):
        _pair_seq, name1, name2 = key
        payload, base_seed = value
        tasks = [payload] if isinstance(payload, PairTask) else list(payload)
        for outcome in evaluate_pair_chunk(
            tasks,
            name1,
            name2,
            self.clause,
            self.n_permutations,
            self.alternative,
            base_seed,
            self.extractor,
            self.significance_mode,
        ):
            yield key, outcome

    def reduce(self, key: Any, values: list[Any]):
        _pair_seq, name1, name2 = key
        report = RelationReport(dataset1=name1, dataset2=name2)
        for outcome in sorted(values, key=lambda o: o.seq):
            report.n_evaluated += outcome.n_evaluated
            report.n_candidates += outcome.n_candidates
            report.results.extend(outcome.results)
        report.n_significant = len(report.results)
        yield key, report


def _resolve_engine(
    engine: Engine | None, n_workers: int | None, executor: str | None
) -> Engine:
    """An explicit engine wins; otherwise build one from the simple knobs.

    Knobs left at ``None`` fall back to the ``REPRO_EXECUTOR`` /
    ``REPRO_WORKERS`` environment variables (see
    :func:`repro.mapreduce.engine.default_engine`), which is how CI replays
    entire test suites under the process and cluster executors.  Any backend
    satisfying the :class:`~repro.mapreduce.job.Engine` contract works —
    ``executor="cluster"`` resolves to the distributed one.
    """
    if engine is not None:
        return engine
    return default_engine(n_workers=n_workers, executor=executor, map_chunk_size="auto")


def resolution_scope(
    spatial: tuple[SpatialResolution, ...] | None,
    temporal: tuple[TemporalResolution, ...] | None,
) -> dict:
    """JSON-serializable form of a pair of resolution whitelists.

    ``None`` per axis means "every viable resolution" — a meaningful scope
    of its own (new resolutions join on update), distinct from *unknown*
    (a v1 index, whose whole scope is ``None``).
    """
    return {
        "spatial": None if spatial is None else [s.value for s in spatial],
        "temporal": None if temporal is None else [t.value for t in temporal],
    }


def scope_whitelists(
    scope: dict | None,
) -> tuple[
    tuple[SpatialResolution, ...] | None,
    tuple[TemporalResolution, ...] | None,
]:
    """Inverse of :func:`resolution_scope`; ``None`` scope -> (None, None)."""
    if not scope:
        return None, None
    spatial = scope.get("spatial")
    temporal = scope.get("temporal")
    return (
        None if spatial is None else tuple(SpatialResolution(s) for s in spatial),
        None if temporal is None else tuple(TemporalResolution(t) for t in temporal),
    )


class Corpus:
    """A collection of data sets over one city, ready for indexing."""

    def __init__(
        self,
        datasets: list[Dataset],
        city: CityModel,
        extractor: FeatureExtractor | None = None,
        fill: str = "global_mean",
    ) -> None:
        names = [d.name for d in datasets]
        if len(set(names)) != len(names):
            raise DataError("data set names within a corpus must be unique")
        if not datasets:
            raise DataError("a corpus needs at least one data set")
        self.datasets = {d.name: d for d in datasets}
        self.city = city
        self.extractor = extractor or FeatureExtractor()
        self.fill = fill

    def build_index(
        self,
        spatial: tuple[SpatialResolution, ...] | None = None,
        temporal: tuple[TemporalResolution, ...] | None = None,
        specs: dict[str, list[FunctionSpec]] | None = None,
        n_workers: int | None = None,
        executor: str | None = None,
        engine: Engine | None = None,
    ) -> "CorpusIndex":
        """Materialize scalar functions and features for every data set.

        Parameters
        ----------
        spatial, temporal:
            Optional whitelists restricting the evaluation resolutions (used
            by benchmarks to bound cost).  Defaults to every viable
            resolution of each data set.
        specs:
            Optional per-data-set function specs (defaults to all of §5.1's
            count + attribute functions).
        n_workers, executor:
            Parallel-execution knobs forwarded to the map-reduce engine:
            ``executor="thread"`` or ``"process"`` with ``n_workers > 1``
            fans the (data set, resolution) partitions out across a worker
            pool ("process" also parallelizes the pure-Python merge-tree
            sweeps; its payloads travel through the shared-memory plane).
            Results are bit-identical to the serial default.  ``None`` falls
            back to ``$REPRO_EXECUTOR`` / ``$REPRO_WORKERS``, then serial.
        engine:
            Optional pre-configured engine (a
            :class:`~repro.mapreduce.engine.LocalEngine` or a
            :class:`~repro.distributed.ClusterEngine`); overrides
            ``n_workers``/``executor``.
        """
        run_engine = _resolve_engine(engine, n_workers, executor)
        index = CorpusIndex(
            city=self.city, corpus=self, extractor=self.extractor, fill=self.fill
        )
        for dataset in self.datasets.values():
            index.stats.raw_bytes += dataset.nbytes()

        with obs.span("index.build", n_datasets=len(self.datasets)) as build_span:
            inputs = self.partition_inputs(
                spatial=spatial, temporal=temporal, specs=specs
            )
            job = IndexPartitionJob(self.extractor, self.fill)
            outputs, job_stats = run_engine.run(job, inputs)
            index.job_stats = job_stats

            reduced = dict(outputs)
            for name in self.datasets:
                if name in reduced:
                    ds_index, stats_by_resolution = reduced[name]
                    for (s_res, t_res), stats in stats_by_resolution.items():
                        index.stats.merge(stats)
                        index.partition_stats[(name, s_res, t_res)] = stats
                else:  # data set with no viable resolution under the whitelists
                    ds_index = DatasetIndex(dataset=name)
                index.datasets[name] = ds_index

            # Content fingerprints per (data set, resolution) partition:
            # persisted with the index (format v2) so `repro update` can later
            # prove which partitions are reusable.  Lazy import:
            # repro.incremental imports this module at its own top level.
            from ..incremental.fingerprint import fingerprints_for_inputs

            index.partition_fingerprints = fingerprints_for_inputs(
                inputs, self.city, self.extractor, self.fill
            )
            index.scope = resolution_scope(spatial, temporal)
            build_span.set(n_partitions=len(inputs))
        return index

    def partition_inputs(
        self,
        spatial: tuple[SpatialResolution, ...] | None = None,
        temporal: tuple[TemporalResolution, ...] | None = None,
        specs: dict[str, list[FunctionSpec]] | None = None,
    ) -> list[tuple[Any, Any]]:
        """The canonical :class:`IndexPartitionJob` input list.

        One entry per viable (data set, resolution) partition, in the serial
        indexing order; ``seq`` numbers are assigned in that order.  Shared
        by :meth:`build_index` and the incremental update planner
        (:func:`repro.incremental.plan.plan_update`), so both enumerate —
        and fingerprint — exactly the same partitions.
        """
        inputs: list[tuple[Any, Any]] = []
        seq = 0
        for dataset in self.datasets.values():
            ds_specs = (specs or {}).get(dataset.name) or default_specs(dataset)
            for s_res in self._spatial_for(dataset, spatial):
                regions = (
                    None
                    if s_res is SpatialResolution.CITY
                    else self.city.region_set(s_res)
                )
                pairs = self.city.spatial_pairs(s_res)
                for t_res in self._temporal_for(dataset, temporal):
                    inputs.append(
                        (
                            (dataset.name, s_res, t_res),
                            (seq, dataset, ds_specs, regions, pairs),
                        )
                    )
                    seq += 1
        return inputs

    # -- internals -----------------------------------------------------------

    def _spatial_for(
        self, dataset: Dataset, whitelist: tuple[SpatialResolution, ...] | None
    ) -> list[SpatialResolution]:
        viable = viable_spatial_resolutions(dataset.schema.spatial_resolution)
        available = set(self.city.available_resolutions())
        out = [r for r in viable if r in available]
        if whitelist is not None:
            out = [r for r in out if r in whitelist]
        return out

    def _temporal_for(
        self, dataset: Dataset, whitelist: tuple[TemporalResolution, ...] | None
    ) -> list[TemporalResolution]:
        viable = viable_temporal_resolutions(dataset.schema.temporal_resolution)
        if whitelist is not None:
            viable = tuple(r for r in viable if r in whitelist)
        return list(viable)


@dataclass
class CorpusIndex:
    """The indexed corpus: per-data-set function/feature stores + stats.

    ``corpus`` is the collection the index was built from; it is ``None``
    for indexes restored from disk (:meth:`load`), which carry everything a
    query needs — functions, features, ``extractor`` configuration and the
    city model — without the raw data.
    """

    city: CityModel
    corpus: Corpus | None = None
    datasets: dict[str, DatasetIndex] = field(default_factory=dict)
    stats: IndexStats = field(default_factory=IndexStats)
    job_stats: JobStats | None = None
    extractor: FeatureExtractor | None = None
    fill: str = "global_mean"
    #: Per-partition §5.4 bookkeeping, keyed ``(dataset, spatial, temporal)``:
    #: each partition's own IndexStats contribution (``raw_bytes`` excluded —
    #: that is per data set) and its content fingerprint.  Persisted with the
    #: index (format v2) and restored by :meth:`load`; empty for indexes
    #: loaded from v1 directories.
    partition_stats: dict[Any, IndexStats] = field(default_factory=dict)
    partition_fingerprints: dict[Any, str] = field(default_factory=dict)
    #: The resolution whitelists the index was built with, as
    #: ``{"spatial": [values]|None, "temporal": [values]|None}`` (None =
    #: every viable resolution).  Persisted (format v2) so ``repro update``
    #: maintains exactly the scope that was asked for — including "all
    #: viable", under which newly viable resolutions are *added* on update
    #: just as a fresh build would include them.  None for v1 indexes.
    scope: dict | None = None

    def dataset_index(self, name: str) -> DatasetIndex:
        """The index of one data set (QueryError if unknown)."""
        try:
            return self.datasets[name]
        except KeyError:
            raise QueryError(f"data set {name!r} is not indexed") from None

    def query(
        self,
        datasets1: list[str] | None = None,
        datasets2: list[str] | None = None,
        clause: Clause | None = None,
        n_permutations: int = 1000,
        alternative: str = "two-sided",
        seed: RngLike = 0,
        n_workers: int | None = None,
        executor: str | None = None,
        engine: Engine | None = None,
        significance_mode: str = "exact",
    ) -> QueryResult:
        """Find relationships between D1 and D2 satisfying ``clause`` (§5.3).

        ``datasets1`` defaults to every indexed data set; ``datasets2``
        defaults to the full corpus (the paper's ``D2 = ∅`` convention).
        Every unordered pair (Di, Dj) with Di ≠ Dj is evaluated once.

        ``n_workers``/``executor`` (or an explicit ``engine``) fan the
        function-pair evaluations out through the map-reduce engine; per-pair
        RNGs are spawned via ``SeedSequence`` from deterministic pair seeds,
        so ``executor="thread"`` or ``"process"`` with ``n_workers=4``
        returns results bit-identical to the serial default under the same
        ``seed``.

        ``significance_mode`` selects the permutation-test evaluation mode
        (see :mod:`repro.core.significance`): ``"exact"`` keeps one map task
        per function pair; ``"batched"`` and ``"adaptive"`` group tasks into
        chunks of :data:`~repro.core.operator.SIGNIFICANCE_CHUNK_TASKS` so
        whole chunks share stacked NumPy significance passes.  Batched
        results are bit-identical to exact's, adaptive ones are
        decision-identical at the clause's α — under every executor.
        """
        if clause is None:
            clause = Clause()
        if significance_mode not in SIGNIFICANCE_MODES:
            raise QueryError(f"unknown significance mode {significance_mode!r}")
        d1 = list(datasets1) if datasets1 else list(self.datasets)
        d2 = list(datasets2) if datasets2 else list(self.datasets)
        for name in d1 + d2:
            if name not in self.datasets:
                raise QueryError(f"data set {name!r} is not indexed")

        # Pairs are canonicalized alphabetically so per-pair RNG seeds (and
        # hence p-values) do not depend on the order data sets were listed.
        pairs: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        for a in d1:
            for b in d2:
                if a == b:
                    continue
                key = (a, b) if a <= b else (b, a)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append(key)

        run_engine = _resolve_engine(engine, n_workers, executor)
        result = QueryResult(significance_mode=significance_mode)
        start = time.perf_counter()

        with obs.span(
            "index.query", n_pairs=len(pairs), mode=significance_mode
        ) as query_span:
            inputs: list[tuple[Any, Any]] = []
            for pair_seq, (a, b) in enumerate(pairs):
                # Mirrors relation(): a fresh draw per pair, so an int seed
                # gives every pair the same base and a Generator advances in
                # pair order.
                base_seed = int(ensure_rng(seed).integers(2**62))
                tasks = enumerate_pair_tasks(
                    self.datasets[a], self.datasets[b], clause
                )
                if significance_mode == "exact":
                    for task in tasks:
                        inputs.append(((pair_seq, a, b), (task, base_seed)))
                else:
                    # Chunked map tasks: the batched/adaptive modes win by
                    # amortizing stacked NumPy passes across a whole chunk.
                    for lo in range(0, len(tasks), SIGNIFICANCE_CHUNK_TASKS):
                        chunk = tasks[lo : lo + SIGNIFICANCE_CHUNK_TASKS]
                        inputs.append(((pair_seq, a, b), (chunk, base_seed)))

            extractor = self.extractor
            if extractor is None and self.corpus is not None:
                extractor = self.corpus.extractor
            job = RelationshipPairJob(
                clause, n_permutations, alternative, extractor, significance_mode
            )
            outputs, job_stats = run_engine.run(job, inputs)
            result.job_stats = job_stats

            by_pair = {key[0]: report for key, report in outputs}
            for pair_seq, (a, b) in enumerate(pairs):
                report = by_pair.get(pair_seq)
                if report is None:  # no common resolutions -> empty report
                    report = RelationReport(dataset1=a, dataset2=b)
                result.reports.append(report)
                result.results.extend(report.results)
                result.n_evaluated += report.n_evaluated
                result.n_candidates += report.n_candidates
                result.n_significant += report.n_significant
            result.elapsed_seconds = time.perf_counter() - start
            query_span.set(
                n_evaluated=result.n_evaluated,
                n_significant=result.n_significant,
            )
        obs.histogram("repro.query.seconds").observe(result.elapsed_seconds)
        obs.counter("repro.query.count").inc()
        return result

    def save(
        self,
        path: str,
        n_workers: int | None = None,
        executor: str | None = None,
        engine: Engine | None = None,
    ):
        """Serialize this index to directory ``path`` (see :mod:`repro.persist`).

        Partition files are written through the map-reduce engine, so
        ``n_workers``/``executor`` (or an explicit ``engine``) parallelize
        the I/O exactly like :meth:`Corpus.build_index` parallelizes the
        computation.  Returns the manifest path.
        """
        from ..persist.index_io import save_index

        run_engine = _resolve_engine(engine, n_workers, executor)
        return save_index(self, path, engine=run_engine)

    @classmethod
    def load(
        cls,
        path: str,
        n_workers: int | None = None,
        executor: str | None = None,
        engine: Engine | None = None,
    ) -> "CorpusIndex":
        """Restore an index saved by :meth:`save`, skipping re-indexing.

        The loaded index answers :meth:`query` bit-identically to the index
        it was saved from (same seed, serial or parallel).  Corrupt or
        version-mismatched files raise
        :class:`repro.utils.errors.PersistError`.
        """
        from ..persist.index_io import load_index

        return load_index(path, engine=_resolve_engine(engine, n_workers, executor))

    @classmethod
    def update(
        cls,
        path: str,
        corpus: Corpus,
        spatial: tuple[SpatialResolution, ...] | None = None,
        temporal: tuple[TemporalResolution, ...] | None = None,
        specs: dict[str, list[FunctionSpec]] | None = None,
        dry_run: bool = False,
        n_workers: int | None = None,
        executor: str | None = None,
        engine: Engine | None = None,
    ):
        """Incrementally reconcile the index at ``path`` with ``corpus``.

        Compares the saved index's content fingerprints against the live
        corpus, rebuilds only the (data set, resolution) partitions whose
        inputs changed, splices them with the untouched partition files on
        disk, and atomically rewrites the manifest.  The result is
        bit-identical to ``corpus.build_index(...).save(path)`` at a
        fraction of the cost when most partitions are unchanged.  Returns an
        :class:`~repro.incremental.update.UpdateReport`; with
        ``dry_run=True`` nothing is written and the report just carries the
        plan.  See :mod:`repro.incremental`.
        """
        from ..incremental.update import update_index

        # A dry run never executes jobs — don't build an engine for it
        # (under $REPRO_EXECUTOR=cluster that would dial the coordinator).
        run_engine = None if dry_run else _resolve_engine(engine, n_workers, executor)
        return update_index(
            path,
            corpus,
            spatial=spatial,
            temporal=temporal,
            specs=specs,
            dry_run=dry_run,
            engine=run_engine,
        )
