"""Data-driven feature thresholds (§3.3).

Salient thresholds: the persistence values of the extrema of a function split
into a high- and a low-persistence group (k-means, k=2, computed exactly for
1-D by :func:`repro.stats.two_means`).  The salient threshold is chosen so
that every high-persistence extremum becomes a feature:

* θ⁻ = the *highest* function value over minima in the high-persistence
  cluster (all of them satisfy ``f ≤ θ⁻``),
* θ⁺ = the *lowest* function value over maxima in the high-persistence
  cluster (all of them satisfy ``f ≥ θ⁺``).

Extreme thresholds: among the function values of all *salient* extrema pooled
across the full time range, outliers are detected by the standard box-plot
rule — ``Q1 - 1.5 IQR`` for minima, ``Q3 + 1.5 IQR`` for maxima.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.boxplot import boxplot_stats
from ..stats.kmeans import two_means
from .merge_tree import MergeTree

#: Minimum number of pooled salient extrema required before the box-plot
#: outlier rule is considered meaningful; below this no extreme threshold is
#: produced (quartiles of 2-3 points are arbitrary).
MIN_EXTREMA_FOR_EXTREME = 4


@dataclass(frozen=True)
class SalientThresholds:
    """Per-interval salient thresholds and the extrema that induced them.

    ``theta_pos``/``theta_neg`` are ``None`` when the interval has no maxima /
    minima at all (cannot happen for non-empty functions, but kept for
    safety).  ``salient_max_values``/``salient_min_values`` are the function
    values of the high-persistence extrema; the extreme-threshold computation
    pools them across intervals.
    """

    theta_pos: float | None
    theta_neg: float | None
    salient_max_values: np.ndarray
    salient_min_values: np.ndarray


def salient_cluster(persistence: np.ndarray) -> np.ndarray:
    """Boolean mask of the high-persistence cluster of ``persistence``.

    Rules (in order):

    * 0 values  -> empty mask,
    * 1 value   -> that extremum is salient,
    * all equal -> every extremum is salient (no meaningful split),
    * otherwise -> exact 1-D 2-means; the higher-center cluster is salient.
    """
    pers = np.asarray(persistence, dtype=np.float64)
    if pers.size == 0:
        return np.zeros(0, dtype=bool)
    if pers.size == 1:
        return np.ones(1, dtype=bool)
    if np.allclose(pers, pers[0]):
        return np.ones(pers.size, dtype=bool)
    result = two_means(pers)
    return result.labels == 1


def salient_thresholds(
    join_tree: MergeTree, split_tree: MergeTree
) -> SalientThresholds:
    """Salient θ⁺/θ⁻ for one seasonal interval from its merge trees."""
    max_mask = salient_cluster(join_tree.persistence_values())
    min_mask = salient_cluster(split_tree.persistence_values())

    max_values = join_tree.extremum_values()[max_mask]
    min_values = split_tree.extremum_values()[min_mask]

    theta_pos = float(max_values.min()) if max_values.size else None
    theta_neg = float(min_values.max()) if min_values.size else None
    return SalientThresholds(
        theta_pos=theta_pos,
        theta_neg=theta_neg,
        salient_max_values=max_values,
        salient_min_values=min_values,
    )


def extreme_thresholds(
    salient_max_values: np.ndarray,
    salient_min_values: np.ndarray,
    k: float = 1.5,
) -> tuple[float | None, float | None]:
    """Box-plot outlier fences over pooled salient extremum values.

    Returns ``(theta_extreme_pos, theta_extreme_neg)``; either side is
    ``None`` when fewer than :data:`MIN_EXTREMA_FOR_EXTREME` salient extrema
    were pooled for it.
    """
    theta_pos: float | None = None
    theta_neg: float | None = None
    max_vals = np.asarray(salient_max_values, dtype=np.float64).ravel()
    min_vals = np.asarray(salient_min_values, dtype=np.float64).ravel()
    if max_vals.size >= MIN_EXTREMA_FOR_EXTREME:
        theta_pos = boxplot_stats(max_vals).upper_fence(k)
    if min_vals.size >= MIN_EXTREMA_FOR_EXTREME:
        theta_neg = boxplot_stats(min_vals).lower_fence(k)
    return theta_pos, theta_neg
