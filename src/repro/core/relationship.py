"""Relationship score τ and strength ρ between two feature sets (§2.2, §2.3).

Two functions are *feature-related* at a spatio-temporal point x iff x is a
feature of both (x ∈ Σ = Σ₁ ∩ Σ₂).  A related point is *positively* related
when the feature signs agree (both positive or both negative) and
*negatively* related when they disagree.  The score is

    τ = (#p − #n) / |Σ|  ∈ [−1, 1],

and the strength ρ is the F1 score of treating Σ₁ as a predictor of Σ₂
(precision = |Σ|/|Σ₁|, recall = |Σ|/|Σ₂|).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.fscore import f1_from_counts
from ..utils.errors import DataError
from .features import FeatureSet


@dataclass(frozen=True)
class RelationshipMeasures:
    """All quantities derived from one pair of feature sets.

    ``score`` is 0 when the functions share no feature point (|Σ| = 0); such
    pairs are reported as unrelated by the operator rather than undefined.
    """

    score: float
    strength: float
    n_related: int
    n_positive: int
    n_negative: int
    n_features_1: int
    n_features_2: int
    precision: float
    recall: float

    @property
    def is_related(self) -> bool:
        """True iff the functions share at least one feature point."""
        return self.n_related > 0


def score_from_masks(
    pos1: np.ndarray,
    neg1: np.ndarray,
    pos2: np.ndarray,
    neg2: np.ndarray,
) -> RelationshipMeasures:
    """Compute (τ, ρ, counts) from four aligned boolean feature masks.

    Each point contributes at most once to #p (Definition 10 is a
    disjunction) and at most once to #n (Definition 11), so τ is always in
    [−1, 1] even in the degenerate case where a point is simultaneously a
    positive and a negative feature of the same function.
    """
    if pos1.shape != pos2.shape:
        raise DataError(f"feature masks must align, got {pos1.shape} vs {pos2.shape}")
    union1 = pos1 | neg1
    union2 = pos2 | neg2
    n1 = int(np.count_nonzero(union1))
    n2 = int(np.count_nonzero(union2))
    n_related = int(np.count_nonzero(union1 & union2))
    n_pos = int(np.count_nonzero((pos1 & pos2) | (neg1 & neg2)))
    n_neg = int(np.count_nonzero((pos1 & neg2) | (neg1 & pos2)))
    score = (n_pos - n_neg) / n_related if n_related else 0.0
    f1 = f1_from_counts(n_related, n1, n2)
    return RelationshipMeasures(
        score=score,
        strength=f1.f1,
        n_related=n_related,
        n_positive=n_pos,
        n_negative=n_neg,
        n_features_1=n1,
        n_features_2=n2,
        precision=f1.precision,
        recall=f1.recall,
    )


def evaluate_features(fs1: FeatureSet, fs2: FeatureSet) -> RelationshipMeasures:
    """Relationship measures between two functions' feature sets."""
    return score_from_masks(fs1.positive, fs1.negative, fs2.positive, fs2.negative)
