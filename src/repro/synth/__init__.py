"""Synthetic urban data: the NYC Urban / NYC Open replicas with ground truth."""

from .bikes import bike_dataset, bike_hourly_rate
from .collection import (
    URBAN_DATASETS,
    UrbanCollection,
    nyc_open_collection,
    nyc_urban_collection,
)
from .collisions import collision_hourly_rate, collisions_dataset
from .config import DEFAULT_START, SimulationConfig, default_city
from .events import (
    Incident,
    WeatherTimeline,
    holiday_factor,
    incident_boost_matrix,
    simulate_incidents,
    simulate_weather,
)
from .gas import gas_price_hourly, gas_price_weekly, gas_prices_dataset
from .services import calls_911_dataset, complaints_311_dataset
from .sim import CitySimulation
from .taxi import HURRICANE_WIND, taxi_dataset, taxi_hourly_rate
from .traffic import traffic_dataset, traffic_speed_hourly
from .twitter import twitter_dataset
from .weather import CORE_ATTRIBUTES, weather_dataset

__all__ = [
    "SimulationConfig",
    "DEFAULT_START",
    "default_city",
    "CitySimulation",
    "WeatherTimeline",
    "Incident",
    "simulate_weather",
    "simulate_incidents",
    "incident_boost_matrix",
    "holiday_factor",
    "URBAN_DATASETS",
    "UrbanCollection",
    "nyc_urban_collection",
    "nyc_open_collection",
    "weather_dataset",
    "CORE_ATTRIBUTES",
    "taxi_dataset",
    "taxi_hourly_rate",
    "HURRICANE_WIND",
    "bike_dataset",
    "bike_hourly_rate",
    "collisions_dataset",
    "collision_hourly_rate",
    "complaints_311_dataset",
    "calls_911_dataset",
    "traffic_dataset",
    "traffic_speed_hourly",
    "twitter_dataset",
    "gas_prices_dataset",
    "gas_price_weekly",
    "gas_price_hourly",
]
