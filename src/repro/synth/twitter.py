"""Synthetic Twitter data set (Table 1: GPS / second).

Tweet volume follows its own late-evening activity pattern, independent of
weather; its apparent correlations with other data sets are the paper's
example of spurious relationships that significance testing should prune
(§6.3: bike trips vs. tweets, |τ| = 0.87, not significant).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .sim import CitySimulation

#: City-wide expected tweets per hour at scale=1.0.
BASE_RATE = 45.0


def twitter_dataset(sim: CitySimulation) -> Dataset:
    """Geo-tagged tweets with engagement attributes."""
    cfg = sim.config
    rng = sim.rng_for("twitter")
    hod = cfg.hour_of_day()
    evening = 0.4 + 1.1 * np.exp(-((hod - 21.0) ** 2) / 18.0) + 0.3 * np.exp(
        -((hod - 12.0) ** 2) / 30.0
    )
    rate = BASE_RATE * cfg.scale * evening
    timestamps, x, y, _ = sim.sample_records(rate, rng)
    n = timestamps.size

    retweets = rng.poisson(0.8, n).astype(np.float64)
    followers = np.clip(rng.lognormal(5.0, 1.4, n), 1.0, 2e6)

    schema = DatasetSchema(
        name="twitter",
        spatial_resolution=SpatialResolution.GPS,
        temporal_resolution=TemporalResolution.SECOND,
        key_attributes=("user_id",),
        numeric_attributes=("retweets", "followers"),
        description="Geo-tagged public tweets (synthetic)",
    )
    user_ids = np.char.add("U", rng.integers(0, max(10, n // 3), n).astype(str))
    return Dataset(
        schema,
        timestamps=timestamps,
        x=x,
        y=y,
        keys={"user_id": user_ids},
        numerics={"retweets": retweets, "followers": followers},
    )
