"""Simulation configuration shared by all synthetic data generators.

The synthetic collections replace the paper's real NYC data (Table 1); see
DESIGN.md §1.3 for the substitution rationale.  A single
:class:`SimulationConfig` fixes the simulated period, the city layout and the
global record-volume scale so that every data set of a collection describes
the *same* simulated city.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spatial.city import CityModel
from ..utils.errors import DataError

#: Epoch seconds of 2011-01-03 00:00:00 UTC (a Monday) — the default
#: simulation start; starting on a Monday keeps week buckets aligned with
#: the weekly activity profile.
DEFAULT_START = 1294012800


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulated city-year.

    Attributes
    ----------
    start:
        Simulation start, epoch seconds (hour-aligned).
    n_days:
        Length of the simulated period.
    seed:
        Master seed; generators derive independent substreams from it.
    scale:
        Global record-volume multiplier (1.0 ≈ tens of thousands of taxi
        records per simulated month; tests use much smaller values).
    """

    start: int = DEFAULT_START
    n_days: int = 120
    seed: int = 7
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise DataError("simulation needs at least one day")
        if self.start % 3600 != 0:
            raise DataError("simulation start must be hour-aligned")
        if self.scale <= 0:
            raise DataError("scale must be positive")

    @property
    def n_hours(self) -> int:
        """Number of simulated hours."""
        return self.n_days * 24

    def hour_timestamps(self) -> np.ndarray:
        """Epoch seconds of each simulated hour's start."""
        return self.start + 3600 * np.arange(self.n_hours, dtype=np.int64)

    def day_of_week(self) -> np.ndarray:
        """Day-of-week (0=Monday) per simulated hour."""
        days = (self.hour_timestamps() // 86400 + 3) % 7  # epoch day 0 = Thu
        return days.astype(np.int64)

    def hour_of_day(self) -> np.ndarray:
        """Hour-of-day (0-23) per simulated hour."""
        return ((self.hour_timestamps() // 3600) % 24).astype(np.int64)

    def day_index(self) -> np.ndarray:
        """Simulated-day index (0-based) per simulated hour."""
        return np.arange(self.n_hours, dtype=np.int64) // 24


def default_city() -> CityModel:
    """The synthetic city used by the NYC Urban replica collection."""
    return CityModel.synthetic()
