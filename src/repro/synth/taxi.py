"""Synthetic taxi data set (Table 1: GPS / second) with planted relationships.

The trip rate follows the city's activity profile and is suppressed by

* precipitation (the §6.3 "fewer taxis when it rains", τ < 0),
* hurricanes (the Fig. 1 drops; extreme-channel wind↔trips, τ = −1),
* holidays (weather-independent drops keeping the extreme ρ low),
* snow depth (drivers avoid accumulated snow, §E.2).

Average fare *rises* with precipitation (the target-earner hypothesis test,
τ > 0) and follows the latent gas-price walk at coarse resolutions (§E.2).
A ``tax`` attribute is constant up to noise — the paper's example of a
spurious attribute whose apparent relationships must be pruned.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .gas import gas_price_hourly
from .sim import CitySimulation

#: City-wide expected trips per hour at scale=1.0 and activity=1.0.
BASE_RATE = 60.0

#: Wind speed (latent units) above which the hurricane suppression applies.
HURRICANE_WIND = 30.0


def taxi_hourly_rate(sim: CitySimulation) -> np.ndarray:
    """Expected city-wide trips per hour (the latent taxi-demand signal)."""
    cfg = sim.config
    w = sim.weather
    rate = BASE_RATE * cfg.scale * sim.activity
    rate = rate / (1.0 + 0.18 * w.precipitation)
    rate = rate / (1.0 + 0.25 * w.snow_depth)
    rate = np.where(w.wind_speed > HURRICANE_WIND, rate * 0.08, rate)
    return rate


def taxi_dataset(sim: CitySimulation, n_medallions: int = 120) -> Dataset:
    """The taxi data set: trip records with fares, mileage and medallions."""
    cfg = sim.config
    w = sim.weather
    rng = sim.rng_for("taxi")
    rate = taxi_hourly_rate(sim)
    timestamps, x, y, hour_idx = sim.sample_records(rate, rng)
    n = timestamps.size

    # Fewer distinct medallions work during bad weather: the active pool
    # shrinks with precipitation and snow depth (plants the unique-medallion
    # relationships of §6.3/E.2).
    pool_fraction = 1.0 / (1.0 + 0.15 * w.precipitation + 0.2 * w.snow_depth)
    pool_size = np.maximum(5, (n_medallions * pool_fraction).astype(np.int64))
    medallions = rng.integers(0, pool_size[hour_idx], n)

    miles = np.clip(rng.lognormal(0.8, 0.55, n), 0.3, 30.0)
    duration = miles * rng.uniform(3.5, 7.5, n) + rng.uniform(1.0, 6.0, n)
    gas = gas_price_hourly(cfg)
    precip = w.precipitation[hour_idx]
    fare = (
        4.0
        + 2.2 * miles
        + 0.55 * precip
        + 2.5 * (gas[hour_idx] - gas.mean())
        + rng.normal(0.0, 0.8, n)
    )
    tip = np.clip(fare * rng.beta(2.0, 10.0, n), 0.0, None)
    tax = 0.5 + rng.normal(0.0, 0.01, n)  # flat fee: deliberately unrelated

    schema = DatasetSchema(
        name="taxi",
        spatial_resolution=SpatialResolution.GPS,
        temporal_resolution=TemporalResolution.SECOND,
        key_attributes=("medallion",),
        numeric_attributes=("fare", "miles", "duration", "tip", "tax"),
        description="Trip data from taxicabs (synthetic TLC analogue)",
    )
    return Dataset(
        schema,
        timestamps=timestamps,
        x=x,
        y=y,
        keys={"medallion": np.char.add("M", medallions.astype(str))},
        numerics={
            "fare": np.clip(fare, 2.5, None),
            "miles": miles,
            "duration": duration,
            "tip": tip,
            "tax": tax,
        },
    )
