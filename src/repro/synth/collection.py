"""Collection builders: the NYC Urban replica and the NYC Open-like corpus.

``nyc_urban_collection`` assembles the nine data sets of Table 1 from one
shared :class:`CitySimulation`, so every planted relationship is coherent
across data sets.  ``nyc_open_collection`` generates many small data sets of
mixed native resolutions — a few pairs share latent signals, the rest are
independent noise — reproducing the statistical profile the paper reports
for NYC Open (over 2.4 million possible relationships, ~99% pruned).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.city import CityModel
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.rng import ensure_rng
from .bikes import bike_dataset
from .collisions import collisions_dataset
from .config import SimulationConfig
from .gas import gas_prices_dataset
from .services import calls_911_dataset, complaints_311_dataset
from .sim import CitySimulation
from .taxi import taxi_dataset
from .traffic import traffic_dataset
from .twitter import twitter_dataset
from .weather import weather_dataset

URBAN_DATASETS = (
    "gas_prices",
    "collisions",
    "complaints_311",
    "calls_911",
    "citibike",
    "weather",
    "traffic_speed",
    "taxi",
    "twitter",
)


@dataclass
class UrbanCollection:
    """The synthetic NYC Urban replica: simulation + data sets."""

    sim: CitySimulation
    datasets: list[Dataset]

    @property
    def city(self) -> CityModel:
        """The shared city model."""
        return self.sim.city

    def dataset(self, name: str) -> Dataset:
        """Look up one data set by name."""
        for ds in self.datasets:
            if ds.name == name:
                return ds
        raise KeyError(name)


def nyc_urban_collection(
    seed: int = 7,
    n_days: int = 120,
    scale: float = 1.0,
    subset: tuple[str, ...] | None = None,
    weather_extra_attributes: int = 0,
) -> UrbanCollection:
    """Build the nine-data-set NYC Urban replica (Table 1).

    Parameters
    ----------
    seed, n_days, scale:
        Simulation parameters (see :class:`SimulationConfig`).
    subset:
        Optional subset of :data:`URBAN_DATASETS` names to generate (in
        Table 1's order).  The paper's Fig. 8/9 experiments add data sets
        incrementally; pass growing prefixes for that.
    weather_extra_attributes:
        Extra noise attributes for the weather data set (the real one has
        228 attributes; padding reproduces its indexing cost profile).
    """
    cfg = SimulationConfig(n_days=n_days, seed=seed, scale=scale)
    sim = CitySimulation.generate(cfg)
    builders = {
        "gas_prices": lambda: gas_prices_dataset(sim),
        "collisions": lambda: collisions_dataset(sim),
        "complaints_311": lambda: complaints_311_dataset(sim),
        "calls_911": lambda: calls_911_dataset(sim),
        "citibike": lambda: bike_dataset(sim),
        "weather": lambda: weather_dataset(sim, weather_extra_attributes),
        "traffic_speed": lambda: traffic_dataset(sim),
        "taxi": lambda: taxi_dataset(sim),
        "twitter": lambda: twitter_dataset(sim),
    }
    names = subset if subset is not None else URBAN_DATASETS
    datasets = [builders[name]() for name in names]
    return UrbanCollection(sim=sim, datasets=datasets)


def nyc_open_collection(
    n_datasets: int = 30,
    seed: int = 11,
    n_days: int = 120,
    sim: CitySimulation | None = None,
    related_fraction: float = 0.2,
    max_attributes: int = 3,
) -> UrbanCollection:
    """Build an NYC-Open-like corpus of many small data sets.

    Each data set has a random native resolution (zip-code or city spatial;
    day or week temporal) and 1..``max_attributes`` numeric attributes.  A
    ``related_fraction`` of the attributes load on shared latent daily
    signals (weather fields or the activity profile); the rest are
    independent autocorrelated noise.  Most possible relationships are
    therefore spurious, matching the paper's pruning profile (Fig. 11b).
    """
    if sim is None:
        cfg = SimulationConfig(n_days=n_days, seed=seed, scale=1.0)
        sim = CitySimulation.generate(cfg)
    cfg = sim.config
    rng = ensure_rng(seed + 1000)
    n_days_eff = cfg.n_days

    # Latent daily signals shared by "related" attributes.
    day_idx = cfg.day_index()
    daily = lambda hourly: np.bincount(  # noqa: E731 - tiny aggregation helper
        day_idx, weights=hourly, minlength=n_days_eff
    ) / 24.0
    latents = [
        daily(sim.weather.temperature),
        daily(sim.weather.precipitation),
        daily(sim.weather.wind_speed),
        daily(sim.activity),
    ]

    zips = sim.city.region_set(SpatialResolution.ZIP)
    datasets: list[Dataset] = []
    for i in range(n_datasets):
        name = f"open_{i:03d}"
        spatial = (
            SpatialResolution.ZIP if rng.uniform() < 0.5 else SpatialResolution.CITY
        )
        temporal = (
            TemporalResolution.DAY if rng.uniform() < 0.7 else TemporalResolution.WEEK
        )
        n_attrs = int(rng.integers(1, max_attributes + 1))

        if temporal is TemporalResolution.DAY:
            n_slots = n_days_eff
            slot_ts = cfg.start + np.arange(n_slots, dtype=np.int64) * 86400
        else:
            n_slots = max(1, n_days_eff // 7)
            slot_ts = cfg.start + np.arange(n_slots, dtype=np.int64) * 7 * 86400

        if spatial is SpatialResolution.ZIP:
            n_regions = len(zips)
            region_ids = np.tile(np.array(zips.region_ids), n_slots)
            timestamps = np.repeat(slot_ts, n_regions)
        else:
            n_regions = 1
            region_ids = None
            timestamps = slot_ts

        n_records = timestamps.size
        numerics: dict[str, np.ndarray] = {}
        for a in range(n_attrs):
            if rng.uniform() < related_fraction:
                latent = latents[int(rng.integers(len(latents)))]
                slot_signal = (
                    latent[:n_slots]
                    if temporal is TemporalResolution.DAY
                    else latent[: n_slots * 7].reshape(n_slots, 7).mean(axis=1)
                )
                values = np.repeat(slot_signal, n_regions)
                values = values * rng.uniform(0.5, 2.0) + rng.normal(
                    0.0, 0.15 * max(values.std(), 1e-9), n_records
                )
            else:
                raw = rng.normal(0.0, 1.0, n_slots)
                width = min(4, n_slots)
                kernel = np.ones(width) / width
                smooth = np.convolve(raw, kernel, mode="same")[:n_slots]
                values = np.repeat(smooth, n_regions) + rng.normal(0.0, 0.1, n_records)
            numerics[f"attr_{a}"] = values

        schema = DatasetSchema(
            name=name,
            spatial_resolution=spatial,
            temporal_resolution=temporal,
            numeric_attributes=tuple(numerics),
            description="Small open-data set (synthetic NYC Open analogue)",
        )
        datasets.append(
            Dataset(
                schema,
                timestamps=timestamps,
                regions=region_ids,
                numerics=numerics,
            )
        )
    return UrbanCollection(sim=sim, datasets=datasets)
