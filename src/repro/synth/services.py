"""Synthetic 311 and 911 service-call data sets (Table 1: GPS / second).

Both follow the city's activity profile and share the localized-incident
boosts with the collision generator, planting the §6.3/§E.2 relationships
between collisions, 311 complaints and 911 calls at neighborhood
resolutions.  Like the paper's data sets they expose only their density
function (no numeric attributes).
"""

from __future__ import annotations

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .sim import CitySimulation

#: City-wide expected calls per hour at scale=1.0 and activity=1.0.
RATE_311 = 30.0
RATE_911 = 16.0


def complaints_311_dataset(sim: CitySimulation) -> Dataset:
    """Non-emergency service requests (311)."""
    return _calls_dataset(sim, "complaints_311", RATE_311, baseline=0.5)


def calls_911_dataset(sim: CitySimulation) -> Dataset:
    """Emergency calls (911)."""
    return _calls_dataset(sim, "calls_911", RATE_911, baseline=0.6)


def _calls_dataset(
    sim: CitySimulation, name: str, base_rate: float, baseline: float
) -> Dataset:
    cfg = sim.config
    rng = sim.rng_for(name)
    # Calls keep a floor of round-the-clock volume plus an activity-driven
    # component; incidents boost the affected neighborhood sharply.
    rate = base_rate * cfg.scale * (baseline + (1.0 - baseline) * sim.activity)
    timestamps, x, y, _hour_idx = sim.sample_records(
        rate, rng, regional_boost=sim.incident_boost
    )
    schema = DatasetSchema(
        name=name,
        spatial_resolution=SpatialResolution.GPS,
        temporal_resolution=TemporalResolution.SECOND,
        description=f"Records from {name.split('_')[-1]} (synthetic)",
    )
    return Dataset(schema, timestamps=timestamps, x=x, y=y)
