"""Synthetic NCEI-style weather data set (Table 1: city / hour).

One record per simulated hour with the weather fields of the latent
timeline.  The real data set has 228 numeric attributes; pass
``extra_attributes`` to pad with autocorrelated noise channels when the
benchmark needs attribute volume (the extra channels are *not* related to
anything, exercising the pruning path).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .sim import CitySimulation

CORE_ATTRIBUTES = (
    "temperature",
    "precipitation",
    "wind_speed",
    "snow",
    "snow_depth",
    "visibility",
    "humidity",
    "pressure",
)


def weather_dataset(sim: CitySimulation, extra_attributes: int = 0) -> Dataset:
    """The weather data set of the collection."""
    cfg = sim.config
    w = sim.weather
    rng = sim.rng_for("weather")

    numerics: dict[str, np.ndarray] = {
        name: getattr(w, name).astype(np.float64) for name in CORE_ATTRIBUTES
    }
    for i in range(extra_attributes):
        noise = rng.normal(0.0, 1.0, cfg.n_hours)
        # Smooth into an autocorrelated channel so it looks like a sensor.
        kernel = np.ones(6) / 6.0
        numerics[f"sensor_{i:03d}"] = np.convolve(noise, kernel, mode="same")

    schema = DatasetSchema(
        name="weather",
        spatial_resolution=SpatialResolution.CITY,
        temporal_resolution=TemporalResolution.HOUR,
        numeric_attributes=tuple(numerics),
        description="Comprehensive weather data (synthetic NCEI analogue)",
    )
    return Dataset(schema, timestamps=cfg.hour_timestamps(), numerics=numerics)
