"""The city simulation: shared latent state behind all synthetic data sets.

A :class:`CitySimulation` owns the weather timeline, the holiday calendar,
the localized incidents, the diurnal/weekly activity profile and the
neighborhood popularity weights.  Every data set generator reads from the
same simulation, which is what makes the generated collection *coherent*:
the hurricane that spikes the weather data is the same hurricane that empties
the streets of taxis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spatial.city import CityModel
from ..spatial.resolution import SpatialResolution
from ..utils.rng import ensure_rng
from .config import SimulationConfig, default_city
from .events import (
    Incident,
    WeatherTimeline,
    holiday_factor,
    incident_boost_matrix,
    simulate_incidents,
    simulate_weather,
)


@dataclass
class CitySimulation:
    """Latent state of one simulated city-period."""

    config: SimulationConfig
    city: CityModel
    weather: WeatherTimeline
    holidays: np.ndarray
    incidents: list[Incident]
    activity: np.ndarray
    nbhd_weights: np.ndarray
    incident_boost: np.ndarray

    @classmethod
    def generate(
        cls, config: SimulationConfig | None = None, city: CityModel | None = None
    ) -> "CitySimulation":
        """Build the full latent state from a configuration."""
        cfg = config or SimulationConfig()
        city = city or default_city()
        weather = simulate_weather(cfg)
        holidays = holiday_factor(cfg)
        nbhd = city.region_set(SpatialResolution.NEIGHBORHOOD)
        n_regions = len(nbhd)
        incidents = simulate_incidents(cfg, n_regions)

        rng = ensure_rng(cfg.seed)
        hod = cfg.hour_of_day()
        dow = cfg.day_of_week()
        diurnal = 0.45 + 0.9 * np.exp(-((hod - 13.0) ** 2) / 40.0) + 0.55 * np.exp(
            -((hod - 19.0) ** 2) / 8.0
        )
        weekly = np.where(dow < 5, 1.0, 0.7)
        activity = diurnal * weekly * holidays

        centers = np.array([p.centroid() for p in nbhd.polygons])
        extent = nbhd.extent()
        cx = (extent[0] + extent[2]) / 2.0
        cy = (extent[1] + extent[3]) / 2.0
        span = max(extent[2] - extent[0], extent[3] - extent[1])
        dist2 = ((centers[:, 0] - cx) ** 2 + (centers[:, 1] - cy) ** 2) / span**2
        weights = np.exp(-3.0 * dist2) + 0.15
        weights *= rng.uniform(0.7, 1.3, len(nbhd))
        weights /= weights.sum()

        return cls(
            config=cfg,
            city=city,
            weather=weather,
            holidays=holidays,
            incidents=incidents,
            activity=activity,
            nbhd_weights=weights,
            incident_boost=incident_boost_matrix(cfg, n_regions, incidents),
        )

    # -- record sampling helpers ------------------------------------------------

    def sample_records(
        self,
        hourly_rate: np.ndarray,
        rng: np.random.Generator,
        spatial_weights: np.ndarray | None = None,
        regional_boost: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample GPS records from an inhomogeneous Poisson process.

        Parameters
        ----------
        hourly_rate:
            ``(n_hours,)`` expected city-wide record count per hour.
        rng:
            Generator for this data set's substream.
        spatial_weights:
            ``(n_regions,)`` neighborhood distribution (defaults to the
            simulation's popularity weights).
        regional_boost:
            Optional ``(n_hours, n_regions)`` multiplier (e.g. incidents).

        Returns
        -------
        (timestamps, x, y, hour_idx)
            Per-record epoch seconds (uniform within the hour), GPS
            coordinates (uniform within the neighborhood rectangle) and the
            hour index each record belongs to.
        """
        cfg = self.config
        weights = self.nbhd_weights if spatial_weights is None else spatial_weights
        lam = hourly_rate[:, None] * weights[None, :]
        if regional_boost is not None:
            lam = lam * regional_boost
            # Boosting a region must not boost the city-wide total beyond the
            # intended rate profile shape; renormalize only mildly so local
            # structure stays local.
        counts = rng.poisson(lam)
        total = int(counts.sum())
        nbhd = self.city.region_set(SpatialResolution.NEIGHBORHOOD)
        n_regions = len(nbhd)

        flat = counts.ravel()
        cell_ids = np.repeat(np.arange(flat.size), flat)
        hour_idx = cell_ids // n_regions
        region_idx = cell_ids % n_regions

        timestamps = (
            cfg.start
            + hour_idx.astype(np.int64) * 3600
            + rng.integers(0, 3600, total)
        )
        xmins = np.array([p.bbox.xmin for p in nbhd.polygons])
        xmaxs = np.array([p.bbox.xmax for p in nbhd.polygons])
        ymins = np.array([p.bbox.ymin for p in nbhd.polygons])
        ymaxs = np.array([p.bbox.ymax for p in nbhd.polygons])
        u = rng.uniform(0.0, 1.0, total)
        v = rng.uniform(0.0, 1.0, total)
        x = xmins[region_idx] + u * (xmaxs[region_idx] - xmins[region_idx])
        y = ymins[region_idx] + v * (ymaxs[region_idx] - ymins[region_idx])
        return timestamps, x, y, hour_idx

    def rng_for(self, name: str) -> np.random.Generator:
        """Deterministic per-data-set random substream."""
        digest = sum(ord(c) * (31**i) for i, c in enumerate(name)) % (2**31)
        return ensure_rng(self.config.seed * 10_007 + digest)
