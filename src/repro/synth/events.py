"""Event timelines: weather, holidays, and localized incidents.

These latent processes drive every synthetic data set, which is what plants
the paper's §6.3 relationships as ground truth:

* **hurricanes** — rare extreme-wind episodes (the Irene/Sandy analogues of
  Fig. 1) that suppress street activity drastically;
* **rain events** — frequent, hours-long precipitation bursts;
* **snow events** — winter-season snowfall with accumulating snow depth that
  melts over days;
* **holidays** — a few fixed days with strongly reduced activity (the taxi
  drops unrelated to weather, giving the paper's low-ρ extreme channel);
* **incidents** — localized disruptions boosting collisions/311/911 in one
  neighborhood for a few hours (the spatial relationships of §6.3 that 1-D
  baselines cannot see).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.rng import ensure_rng
from .config import SimulationConfig


@dataclass
class WeatherTimeline:
    """Hourly weather fields of one simulated period (city-wide)."""

    temperature: np.ndarray
    precipitation: np.ndarray
    wind_speed: np.ndarray
    snow: np.ndarray
    snow_depth: np.ndarray
    visibility: np.ndarray
    humidity: np.ndarray
    pressure: np.ndarray
    hurricane_hours: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    rain_hours: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    snow_hours: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))


def simulate_weather(cfg: SimulationConfig, seed_offset: int = 1) -> WeatherTimeline:
    """Generate a coherent hourly weather timeline.

    Temperature follows annual + diurnal cycles; rain arrives as random
    multi-hour events; two hurricanes (when the period is long enough) bring
    extreme wind and rain; snow falls only in the cold season and accumulates
    into a slowly melting snow depth; visibility drops with precipitation.
    """
    rng = ensure_rng(cfg.seed + seed_offset)
    h = cfg.n_hours
    t = np.arange(h)

    day_frac = (t % 24) / 24.0
    year_frac = (t / 24.0 % 365.25) / 365.25
    temperature = (
        12.0
        - 10.0 * np.cos(2 * np.pi * (year_frac - 0.05))
        + 4.0 * np.sin(2 * np.pi * (day_frac - 0.3))
        + rng.normal(0.0, 1.2, h)
    )

    # Rain is a drizzle/storm mixture: frequent light events plus a distinct
    # population of heavy storms.  The bimodality matters downstream — the
    # storm peaks form the high-persistence cluster that the k-means
    # threshold rule separates from drizzle (the Fig. 5(b) structure).
    precipitation = np.zeros(h)
    rain_hours: list[int] = []
    n_rain_events = max(1, int(cfg.n_days * 0.25))
    for start in rng.integers(0, max(1, h - 12), n_rain_events):
        duration = int(rng.integers(3, 12))
        if rng.uniform() < 0.35:
            intensity = float(rng.gamma(3.0, 4.0)) + 6.0  # storm
        else:
            intensity = float(rng.gamma(1.5, 1.0))  # drizzle
        stop = min(h, start + duration)
        shape = np.sin(np.linspace(0.15, np.pi - 0.15, stop - start))
        precipitation[start:stop] += intensity * shape
        rain_hours.extend(range(int(start), int(stop)))

    # Ordinary wind is drawn from a *bounded* distribution so that, whatever
    # fence the adaptive box-plot rule lands on, only hurricanes exceed it —
    # the clear outlier separation of Fig. 5(c).  (An unbounded gust tail
    # always leaks scattered single-hour "extremes" past a data-driven
    # fence, drowning the hurricane signal.)
    wind_speed = 5.0 + 8.0 * rng.beta(2.0, 3.0, h) + rng.normal(0, 0.4, h)
    wind_speed = np.clip(wind_speed, 0.5, None)
    hurricane_hours: list[int] = []
    n_hurricanes = 2 if cfg.n_days >= 60 else (1 if cfg.n_days >= 20 else 0)
    if n_hurricanes:
        starts = np.sort(
            rng.choice(np.arange(h // 8, h - 48), size=n_hurricanes, replace=False)
        )
        for start in starts:
            duration = int(rng.integers(18, 36))
            stop = min(h, int(start) + duration)
            profile = np.sin(np.linspace(0.1, np.pi - 0.1, stop - start))
            wind_speed[start:stop] += 45.0 * profile
            precipitation[start:stop] += 12.0 * profile
            hurricane_hours.extend(range(int(start), int(stop)))

    cold = temperature < 1.5
    snow = np.zeros(h)
    snow_hours: list[int] = []
    snow_candidates = np.flatnonzero(cold & (precipitation > 0.4))
    for idx in snow_candidates:
        snow[idx] = precipitation[idx] * 0.8
        precipitation[idx] *= 0.2
        snow_hours.append(int(idx))

    snow_depth = np.zeros(h)
    depth = 0.0
    for i in range(h):
        depth += snow[i]
        melt = 0.04 + max(0.0, temperature[i]) * 0.05
        depth = max(0.0, depth - melt)
        snow_depth[i] = depth

    visibility = 10.0 - 0.45 * precipitation - 0.9 * snow + rng.normal(0, 0.4, h)
    visibility = np.clip(visibility, 0.2, 10.0)

    humidity = np.clip(55.0 + 3.0 * precipitation + rng.normal(0, 6.0, h), 10.0, 100.0)
    pressure = 1013.0 + rng.normal(0, 4.0, h) - 0.3 * precipitation

    return WeatherTimeline(
        temperature=temperature,
        precipitation=np.clip(precipitation, 0.0, None),
        wind_speed=wind_speed,
        snow=np.clip(snow, 0.0, None),
        snow_depth=snow_depth,
        visibility=visibility,
        humidity=humidity,
        pressure=pressure,
        hurricane_hours=np.array(sorted(set(hurricane_hours)), dtype=np.int64),
        rain_hours=np.array(sorted(set(rain_hours)), dtype=np.int64),
        snow_hours=np.array(sorted(set(snow_hours)), dtype=np.int64),
    )


def holiday_factor(cfg: SimulationConfig, seed_offset: int = 2) -> np.ndarray:
    """Per-hour activity multiplier encoding a few holidays (≈0.4 on them).

    Holidays are weather-independent activity drops; they are what keeps the
    strength ρ of the wind↔taxi extreme relationship low in the paper (§6.3).
    """
    rng = ensure_rng(cfg.seed + seed_offset)
    factor = np.ones(cfg.n_hours)
    n_holidays = max(1, cfg.n_days // 45)
    days = rng.choice(np.arange(cfg.n_days), size=n_holidays, replace=False)
    day_idx = cfg.day_index()
    for day in days:
        factor[day_idx == day] = 0.35
    return factor


@dataclass(frozen=True)
class Incident:
    """A localized disruption: one neighborhood, a few hours, higher rates."""

    region: int
    start_hour: int
    duration: int
    boost: float


def simulate_incidents(
    cfg: SimulationConfig,
    n_regions: int,
    rate_per_week: float = 3.0,
    seed_offset: int = 3,
) -> list[Incident]:
    """Random localized incidents over the simulated period."""
    rng = ensure_rng(cfg.seed + seed_offset)
    n = max(1, int(cfg.n_days / 7.0 * rate_per_week))
    incidents = []
    for _ in range(n):
        incidents.append(
            Incident(
                region=int(rng.integers(n_regions)),
                start_hour=int(rng.integers(0, max(1, cfg.n_hours - 6))),
                duration=int(rng.integers(2, 7)),
                boost=float(rng.uniform(4.0, 9.0)),
            )
        )
    return incidents


def incident_boost_matrix(
    cfg: SimulationConfig, n_regions: int, incidents: list[Incident]
) -> np.ndarray:
    """Dense ``(n_hours, n_regions)`` multiplier matrix from incidents."""
    boost = np.ones((cfg.n_hours, n_regions))
    for inc in incidents:
        stop = min(cfg.n_hours, inc.start_hour + inc.duration)
        boost[inc.start_hour : stop, inc.region] *= inc.boost
    return boost
