"""Synthetic vehicle-collision data set (Table 1: GPS / second).

Plants the §6.3 collision relationships:

* the *number* of collisions is NOT rain-dependent (the paper's negative
  result), but their *severity* is: motorists killed and pedestrians injured
  rise with precipitation;
* motorists injured rise with traffic speed (§E.2);
* collision counts share the localized-incident boosts with 311/911 and the
  activity profile with taxi trips, planting the spatial relationships that
  1-D baselines miss (§6.4).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .sim import CitySimulation
from .traffic import traffic_speed_hourly

#: City-wide expected collisions per hour at scale=1.0 and activity=1.0.
BASE_RATE = 10.0


def collision_hourly_rate(sim: CitySimulation) -> np.ndarray:
    """Expected city-wide collisions per hour (activity-driven, rain-free)."""
    return BASE_RATE * sim.config.scale * sim.activity


def collisions_dataset(sim: CitySimulation) -> Dataset:
    """The vehicle-collision data set."""
    w = sim.weather
    rng = sim.rng_for("collisions")
    rate = collision_hourly_rate(sim)
    timestamps, x, y, hour_idx = sim.sample_records(
        rate, rng, regional_boost=sim.incident_boost
    )
    n = timestamps.size

    precip = w.precipitation[hour_idx]
    speed = traffic_speed_hourly(sim)[hour_idx]
    speed_norm = (speed - speed.min()) / max(speed.max() - speed.min(), 1e-9)

    killed = rng.poisson(0.02 * (1.0 + 1.2 * precip), n).astype(np.float64)
    pedestrians = rng.poisson(0.10 * (1.0 + 0.8 * precip), n).astype(np.float64)
    motorists = rng.poisson(0.12 * (1.0 + 1.5 * speed_norm), n).astype(np.float64)
    vehicles = 1.0 + rng.poisson(0.9, n).astype(np.float64)

    schema = DatasetSchema(
        name="collisions",
        spatial_resolution=SpatialResolution.GPS,
        temporal_resolution=TemporalResolution.SECOND,
        numeric_attributes=(
            "motorists_killed",
            "pedestrians_injured",
            "motorists_injured",
            "vehicles_involved",
        ),
        description="Traffic collision records (synthetic NYPD analogue)",
    )
    return Dataset(
        schema,
        timestamps=timestamps,
        x=x,
        y=y,
        numerics={
            "motorists_killed": killed,
            "pedestrians_injured": pedestrians,
            "motorists_injured": motorists,
            "vehicles_involved": vehicles,
        },
    )
