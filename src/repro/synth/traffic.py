"""Synthetic traffic-speed data set (Table 1: GPS / hour) and its latent speed.

Average street speed is driven down by taxi demand (the §6.3 trips↔speed
negative relationship) and up by visibility (the §E.2 visibility↔speed
positive relationship).  The latent hourly speed is shared with the
collision generator (motorists injured relate to speed).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .sim import CitySimulation
from .taxi import taxi_hourly_rate


def traffic_speed_hourly(sim: CitySimulation) -> np.ndarray:
    """Latent city-wide average speed (mph) per hour."""
    w = sim.weather
    demand = taxi_hourly_rate(sim)
    demand_norm = demand / max(demand.max(), 1e-9)
    speed = 30.0 - 14.0 * demand_norm + 0.7 * (w.visibility - 10.0)
    return np.clip(speed, 4.0, 45.0)


def traffic_dataset(sim: CitySimulation, n_sensors: int = 40) -> Dataset:
    """Hourly speed readings from fixed roadside sensors.

    Each sensor sits at a fixed GPS location (popular neighborhoods get more
    sensors) and reports once per hour: density is nearly constant while the
    speed attribute carries the signal — matching the real data set's two
    scalar functions.
    """
    cfg = sim.config
    rng = sim.rng_for("traffic")
    speed = traffic_speed_hourly(sim)

    nbhd = sim.city.region_set(SpatialResolution.NEIGHBORHOOD)
    sensor_region = rng.choice(
        len(nbhd), size=n_sensors, p=sim.nbhd_weights / sim.nbhd_weights.sum()
    )
    sx = np.empty(n_sensors)
    sy = np.empty(n_sensors)
    for i, r in enumerate(sensor_region):
        bbox = nbhd.polygons[r].bbox
        sx[i] = rng.uniform(bbox.xmin, bbox.xmax)
        sy[i] = rng.uniform(bbox.ymin, bbox.ymax)

    hours = np.arange(cfg.n_hours, dtype=np.int64)
    hour_idx = np.repeat(hours, n_sensors)
    sensor_idx = np.tile(np.arange(n_sensors), cfg.n_hours)
    # Sensors occasionally drop readings (2%), exercising missing data.
    keep = rng.uniform(0.0, 1.0, hour_idx.size) > 0.02
    hour_idx = hour_idx[keep]
    sensor_idx = sensor_idx[keep]

    timestamps = cfg.start + hour_idx * 3600
    readings = speed[hour_idx] * rng.uniform(0.85, 1.15, hour_idx.size)

    schema = DatasetSchema(
        name="traffic_speed",
        spatial_resolution=SpatialResolution.GPS,
        temporal_resolution=TemporalResolution.HOUR,
        numeric_attributes=("speed",),
        description="Average street speed from roadside sensors (synthetic)",
    )
    return Dataset(
        schema,
        timestamps=timestamps,
        x=sx[sensor_idx],
        y=sy[sensor_idx],
        numerics={"speed": readings},
    )
