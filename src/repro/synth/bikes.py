"""Synthetic Citi Bike data set (Table 1: GPS / second).

Plants the §6.3 weather↔bike relationships:

* trip duration rises with snowfall (positive at (hour, city)),
* active stations (unique ``station_id``) fall as snow *accumulates* —
  closures track snow depth, which lags hourly snowfall, so the relationship
  only materializes at the (day, city) resolution, reproducing the paper's
  multi-resolution argument,
* ridership falls with rain, snow and cold (unique-bike relationships of
  §E.2).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from .sim import CitySimulation

#: City-wide expected trips per hour at scale=1.0 and activity=1.0.
BASE_RATE = 24.0


def bike_hourly_rate(sim: CitySimulation) -> np.ndarray:
    """Expected city-wide bike trips per hour."""
    cfg = sim.config
    w = sim.weather
    rate = BASE_RATE * cfg.scale * sim.activity
    rate = rate / (1.0 + 0.12 * w.precipitation)
    rate = rate / (1.0 + 0.5 * w.snow)
    rate = np.where(w.temperature < 0.0, rate * 0.55, rate)
    return rate


def bike_dataset(
    sim: CitySimulation, n_stations: int = 80, n_bikes: int = 400
) -> Dataset:
    """The Citi Bike data set: trips with station and bike identifiers."""
    cfg = sim.config
    w = sim.weather
    rng = sim.rng_for("bikes")
    rate = bike_hourly_rate(sim)
    timestamps, x, y, hour_idx = sim.sample_records(rate, rng)
    n = timestamps.size

    # Stations close as snow accumulates; each station has its own clearing
    # threshold (the city clears snow at different speeds per location).
    # Thresholds are sorted descending so that at depth d exactly the first
    # open_count(d) station ids are open.
    clear_threshold = np.sort(rng.uniform(0.5, 6.0, n_stations))[::-1]
    depth = w.snow_depth[hour_idx]
    station = rng.integers(0, n_stations, n)
    closed = depth > clear_threshold[station]
    open_count = np.maximum(1, np.searchsorted(-clear_threshold, -depth, side="right"))
    # Closed stations push the trip to a random open station instead.
    station[closed] = rng.integers(0, open_count[closed])

    bike = rng.integers(0, n_bikes, n)
    duration = (
        14.0
        * (1.0 + 0.09 * w.snow[hour_idx])
        * np.clip(rng.lognormal(0.0, 0.35, n), 0.3, 4.0)
    )

    schema = DatasetSchema(
        name="citibike",
        spatial_resolution=SpatialResolution.GPS,
        temporal_resolution=TemporalResolution.SECOND,
        key_attributes=("bike_id", "station_id"),
        numeric_attributes=("trip_duration",),
        description="Trip data from the bike-sharing system (synthetic)",
    )
    return Dataset(
        schema,
        timestamps=timestamps,
        x=x,
        y=y,
        keys={
            "bike_id": np.char.add("B", bike.astype(str)),
            "station_id": np.char.add("S", station.astype(str)),
        },
        numerics={"trip_duration": duration},
    )
