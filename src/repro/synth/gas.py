"""Synthetic gas-price data set (Table 1: city / week) and its latent walk.

Gas prices follow a slow weekly random walk.  The same latent series feeds
the taxi fare model (per-mile rates follow fuel costs at monthly lag-free
aggregation), planting the §E.2 fare↔gas-price relationship.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..data.schema import DatasetSchema
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.rng import ensure_rng
from .config import SimulationConfig
from .sim import CitySimulation


def gas_price_weekly(cfg: SimulationConfig) -> np.ndarray:
    """Latent weekly gas price (random walk around $3.2/gal), deterministic
    in the simulation seed so the taxi generator sees the same series."""
    rng = ensure_rng(cfg.seed + 41)
    n_weeks = cfg.n_days // 7 + 2
    steps = rng.normal(0.0, 0.06, n_weeks)
    price = 3.2 + np.cumsum(steps)
    return np.clip(price, 2.2, 4.8)


def gas_price_hourly(cfg: SimulationConfig) -> np.ndarray:
    """The weekly gas price expanded to the hourly grid."""
    weekly = gas_price_weekly(cfg)
    week_idx = np.arange(cfg.n_hours) // (24 * 7)
    return weekly[np.clip(week_idx, 0, weekly.size - 1)]


def gas_prices_dataset(sim: CitySimulation) -> Dataset:
    """The gas-price data set: one record per simulated week."""
    cfg = sim.config
    weekly = gas_price_weekly(cfg)
    n_weeks = max(1, cfg.n_days // 7)
    timestamps = cfg.start + np.arange(n_weeks, dtype=np.int64) * 7 * 86400
    schema = DatasetSchema(
        name="gas_prices",
        spatial_resolution=SpatialResolution.CITY,
        temporal_resolution=TemporalResolution.WEEK,
        numeric_attributes=("price",),
        description="Average gasoline price in dollars per gallon",
    )
    return Dataset(schema, timestamps=timestamps, numerics={"price": weekly[:n_weeks]})
