"""Scalar-function computation: from raw tuples to value matrices (§5.1).

For a data set ``D`` and a target (spatial, temporal) resolution this module
computes the paper's three function types over the spatio-temporal grid:

* **density** — number of tuples per spatio-temporal point,
* **unique** — number of distinct identifiers per point (one per key column),
* **attribute** — aggregate (mean by default) of a numerical column per point.

The output is a dense ``(n_steps, n_regions)`` matrix per function plus the
tuple-count matrix used both for coarsening (count-weighted means) and for
missing-data handling.  This module corresponds to the *Scalar Function
Computation* map-reduce job of §5.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spatial.regions import RegionSet
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import DataError, ResolutionError
from .dataset import Dataset

#: Supported attribute-function aggregators (§8 lists mean/sum/median/min/max).
AGGREGATORS = ("mean", "sum", "min", "max", "median")

#: Supported missing-cell fill policies for attribute functions.
FILL_POLICIES = ("global_mean", "zero", "interpolate", "none")


@dataclass(frozen=True)
class FunctionSpec:
    """Identity of one scalar function: (data set, attribute) pair + type.

    ``kind`` is one of:

    * ``"density"`` — tuple count per spatio-temporal point;
    * ``"unique"`` — distinct identifiers of key column ``attribute``;
    * ``"attribute"`` — ``aggregator`` of numeric column ``attribute``;
    * ``"category"`` — count of tuples whose key column ``attribute`` equals
      ``category`` (the §8 treatment of non-numerical attributes: one count
      function per categorical value).
    """

    dataset: str
    kind: str
    attribute: str | None = None
    aggregator: str = "mean"
    category: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("density", "unique", "attribute", "category"):
            raise DataError(f"unknown function kind {self.kind!r}")
        if self.kind != "density" and not self.attribute:
            raise DataError(f"{self.kind} functions need an attribute name")
        if self.kind == "attribute" and self.aggregator not in AGGREGATORS:
            raise DataError(f"unknown aggregator {self.aggregator!r}")
        if self.kind == "category" and self.category is None:
            raise DataError("category functions need a category value")

    @property
    def function_id(self) -> str:
        """Stable human-readable identifier, e.g. ``taxi.avg.fare``."""
        if self.kind == "density":
            return f"{self.dataset}.density"
        if self.kind == "unique":
            return f"{self.dataset}.unique.{self.attribute}"
        if self.kind == "category":
            return f"{self.dataset}.count.{self.attribute}={self.category}"
        prefix = "avg" if self.aggregator == "mean" else self.aggregator
        return f"{self.dataset}.{prefix}.{self.attribute}"


@dataclass
class AggregatedFunction:
    """A scalar function materialized at one spatio-temporal resolution.

    Attributes
    ----------
    spec:
        Which (data set, attribute, type) this function represents.
    spatial, temporal:
        The resolution of the matrix.
    values:
        ``(n_steps, n_regions)`` float64 function values.
    counts:
        ``(n_steps, n_regions)`` int64 number of tuples behind each cell.
    step_labels:
        ``(n_steps,)`` temporal bucket indices (consecutive).
    observed:
        ``(n_steps, n_regions)`` bool; False where the value was filled in
        because no tuple (or no non-NaN tuple) covered the cell.
    """

    spec: FunctionSpec
    spatial: SpatialResolution
    temporal: TemporalResolution
    values: np.ndarray
    counts: np.ndarray
    step_labels: np.ndarray
    observed: np.ndarray

    @property
    def n_steps(self) -> int:
        """Number of time steps."""
        return int(self.values.shape[0])

    @property
    def n_regions(self) -> int:
        """Number of spatial regions."""
        return int(self.values.shape[1])


def default_specs(dataset: Dataset, aggregator: str = "mean") -> list[FunctionSpec]:
    """All scalar functions the paper derives from a data set (§5.1)."""
    specs = [FunctionSpec(dataset.name, "density")]
    specs.extend(
        FunctionSpec(dataset.name, "unique", key)
        for key in dataset.schema.key_attributes
    )
    specs.extend(
        FunctionSpec(dataset.name, "attribute", attr, aggregator)
        for attr in dataset.schema.numeric_attributes
    )
    return specs


def aggregate(
    dataset: Dataset,
    spatial: SpatialResolution,
    temporal: TemporalResolution,
    regions: RegionSet | None = None,
    step_range: tuple[int, int] | None = None,
    specs: list[FunctionSpec] | None = None,
    fill: str = "global_mean",
) -> list[AggregatedFunction]:
    """Compute scalar functions of ``dataset`` at a target resolution.

    Parameters
    ----------
    dataset:
        Source tuples.
    spatial, temporal:
        Target resolution; must be reachable from the data set's native
        resolution in the Fig. 6 DAG.
    regions:
        The region partition for the target spatial resolution.  Not needed
        for CITY (a single implicit region).
    step_range:
        Inclusive ``(first_bucket, last_bucket)`` range of temporal bucket
        indices.  Defaults to the data's own extent; pass a shared range when
        aligning several data sets of one corpus.
    specs:
        Which functions to compute; defaults to :func:`default_specs`.
    fill:
        Missing-cell policy for attribute functions: ``"global_mean"``
        (default — neutral value that creates no artificial features),
        ``"zero"``, ``"interpolate"`` (time-linear per region) or ``"none"``
        (leave NaN; the caller must handle it).

    Returns
    -------
    list[AggregatedFunction]
        One matrix per requested spec, all sharing the same grid.
    """
    if fill not in FILL_POLICIES:
        raise DataError(f"unknown fill policy {fill!r}")
    native_s = dataset.schema.spatial_resolution
    native_t = dataset.schema.temporal_resolution
    if not native_s.convertible_to(spatial):
        raise ResolutionError(
            f"{dataset.name}: cannot convert {native_s.name} -> {spatial.name}"
        )
    if not native_t.convertible_to(temporal):
        raise ResolutionError(
            f"{dataset.name}: cannot convert {native_t.name} -> {temporal.name}"
        )
    if dataset.n_records == 0:
        raise DataError(f"{dataset.name}: cannot aggregate an empty data set")

    region_idx, n_regions = _assign_regions(dataset, spatial, regions)
    buckets = temporal.bucket(dataset.timestamps)
    if step_range is None:
        step_range = (int(buckets.min()), int(buckets.max()))
    first, last = step_range
    if last < first:
        raise DataError("step_range must satisfy first <= last")
    n_steps = last - first + 1

    keep = (region_idx >= 0) & (buckets >= first) & (buckets <= last)
    region_idx = region_idx[keep]
    steps = (buckets[keep] - first).astype(np.int64)
    cells = steps * n_regions + region_idx
    n_cells = n_steps * n_regions

    counts = np.bincount(cells, minlength=n_cells).astype(np.int64)
    counts_matrix = counts.reshape(n_steps, n_regions)
    step_labels = np.arange(first, last + 1, dtype=np.int64)

    if specs is None:
        specs = default_specs(dataset)
    results: list[AggregatedFunction] = []
    for spec in specs:
        if spec.dataset != dataset.name:
            raise DataError(
                f"spec {spec.function_id} does not belong to data set {dataset.name}"
            )
        if spec.kind == "density":
            values = counts_matrix.astype(np.float64)
            observed = np.ones_like(values, dtype=bool)
        elif spec.kind == "unique":
            values = _unique_matrix(dataset, spec, keep, cells, n_cells)
            values = values.reshape(n_steps, n_regions)
            observed = np.ones_like(values, dtype=bool)
        elif spec.kind == "category":
            values = _category_matrix(dataset, spec, keep, cells, n_cells)
            values = values.reshape(n_steps, n_regions)
            observed = np.ones_like(values, dtype=bool)
        else:
            flat_fill = "none" if fill == "interpolate" else fill
            values, observed = _attribute_matrix(
                dataset, spec, keep, cells, n_cells, flat_fill
            )
            values = values.reshape(n_steps, n_regions)
            observed = observed.reshape(n_steps, n_regions)
            if fill == "interpolate" and spec.aggregator != "sum":
                values = fill_interpolate(values, observed)
        results.append(
            AggregatedFunction(
                spec=spec,
                spatial=spatial,
                temporal=temporal,
                values=values,
                counts=counts_matrix,
                step_labels=step_labels,
                observed=observed,
            )
        )
    return results


def _assign_regions(
    dataset: Dataset, spatial: SpatialResolution, regions: RegionSet | None
) -> tuple[np.ndarray, int]:
    """Region index per record at the target resolution (-1 = drop)."""
    n = dataset.n_records
    if spatial is SpatialResolution.CITY:
        return np.zeros(n, dtype=np.int64), 1
    if regions is None:
        raise DataError(
            f"{dataset.name}: a RegionSet is required for {spatial.name} aggregation"
        )
    native = dataset.schema.spatial_resolution
    if native is SpatialResolution.GPS:
        return regions.locate(dataset.x, dataset.y), len(regions)
    if native is spatial:
        return regions.indices_of(dataset.regions), len(regions)
    raise ResolutionError(
        f"{dataset.name}: cannot place {native.name} records into {spatial.name} regions"
    )


def _unique_matrix(
    dataset: Dataset,
    spec: FunctionSpec,
    keep: np.ndarray,
    cells: np.ndarray,
    n_cells: int,
) -> np.ndarray:
    """Distinct-identifier counts per cell for one key column."""
    column = dataset.keys[spec.attribute][keep]
    _, codes = np.unique(column, return_inverse=True)
    n_codes = max(int(codes.max()) + 1, 1) if codes.size else 1
    pair = cells * n_codes + codes
    unique_pairs = np.unique(pair)
    owning_cell = unique_pairs // n_codes
    return np.bincount(owning_cell, minlength=n_cells).astype(np.float64)


def _category_matrix(
    dataset: Dataset,
    spec: FunctionSpec,
    keep: np.ndarray,
    cells: np.ndarray,
    n_cells: int,
) -> np.ndarray:
    """Count of tuples matching one categorical value per cell (§8)."""
    if spec.attribute not in dataset.keys:
        raise DataError(
            f"{dataset.name}: category functions need a key column, "
            f"got {spec.attribute!r}"
        )
    column = dataset.keys[spec.attribute][keep]
    match = column.astype(str) == str(spec.category)
    return np.bincount(cells[match], minlength=n_cells).astype(np.float64)


def _attribute_matrix(
    dataset: Dataset,
    spec: FunctionSpec,
    keep: np.ndarray,
    cells: np.ndarray,
    n_cells: int,
    fill: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregated attribute values per cell, plus the observed mask."""
    column = dataset.numerics[spec.attribute][keep]
    valid = ~np.isnan(column)
    vcells = cells[valid]
    vvals = column[valid]
    valid_counts = np.bincount(vcells, minlength=n_cells).astype(np.int64)
    observed = valid_counts > 0

    agg = spec.aggregator
    if agg in ("mean", "sum"):
        sums = np.zeros(n_cells, dtype=np.float64)
        np.add.at(sums, vcells, vvals)
        if agg == "sum":
            values = sums
        else:
            with np.errstate(invalid="ignore", divide="ignore"):
                values = np.where(observed, sums / valid_counts, np.nan)
    elif agg == "min":
        values = np.full(n_cells, np.inf)
        np.minimum.at(values, vcells, vvals)
        values = np.where(observed, values, np.nan)
    elif agg == "max":
        values = np.full(n_cells, -np.inf)
        np.maximum.at(values, vcells, vvals)
        values = np.where(observed, values, np.nan)
    else:  # median
        values = np.full(n_cells, np.nan)
        order = np.argsort(vcells, kind="stable")
        sorted_cells = vcells[order]
        sorted_vals = vvals[order]
        boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [sorted_cells.size]))
        for s, e in zip(starts, ends):
            if e > s:
                values[sorted_cells[s]] = np.median(sorted_vals[s:e])

    if agg == "sum":
        # A cell with no tuples contributes zero activity, like density.
        values = np.where(observed, values, 0.0)
        return values, np.ones_like(observed)

    values = _fill_missing(values, observed, fill)
    return values, observed


def _fill_missing(values: np.ndarray, observed: np.ndarray, fill: str) -> np.ndarray:
    """Replace NaN cells of an attribute function according to ``fill``."""
    if fill == "none" or observed.all():
        return values
    if not observed.any():
        raise DataError("attribute function has no observed values at all")
    if fill == "zero":
        return np.where(observed, values, 0.0)
    mean = values[observed].mean()
    return np.where(observed, values, mean)


def fill_interpolate(values: np.ndarray, observed: np.ndarray) -> np.ndarray:
    """Time-linear interpolation of missing cells, independently per region.

    ``values``/``observed`` are ``(n_steps, n_regions)`` matrices.  Leading and
    trailing gaps take the nearest observed value; regions with no observed
    value at all take the global mean of observed cells.
    """
    if observed.all():
        return values
    if not observed.any():
        raise DataError("attribute function has no observed values at all")
    out = values.copy()
    n_steps, n_regions = values.shape
    t = np.arange(n_steps, dtype=np.float64)
    global_mean = values[observed].mean()
    for r in range(n_regions):
        obs = observed[:, r]
        if not obs.any():
            out[:, r] = global_mean
            continue
        if obs.all():
            continue
        out[:, r] = np.interp(t, t[obs], values[obs, r])
    return out
