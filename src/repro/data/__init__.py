"""Data substrate: schemas, columnar data sets, CSV I/O, aggregation."""

from .aggregation import (
    AGGREGATORS,
    AggregatedFunction,
    FunctionSpec,
    aggregate,
    default_specs,
    fill_interpolate,
)
from .catalog import (
    city_from_dict,
    city_to_dict,
    load_catalog,
    save_catalog,
    schema_from_dict,
    schema_to_dict,
)
from .csv_io import read_csv, write_csv
from .dataset import Dataset
from .schema import DatasetSchema

__all__ = [
    "Dataset",
    "DatasetSchema",
    "read_csv",
    "write_csv",
    "save_catalog",
    "load_catalog",
    "schema_to_dict",
    "schema_from_dict",
    "city_to_dict",
    "city_from_dict",
    "AGGREGATORS",
    "AggregatedFunction",
    "FunctionSpec",
    "aggregate",
    "default_specs",
    "fill_interpolate",
]
