"""Columnar in-memory data sets.

A :class:`Dataset` stores records column-wise in NumPy arrays: one timestamp
column (epoch seconds), an optional spatial column (GPS coordinate pair or
region-id strings, depending on the schema's native spatial resolution), zero
or more identifier columns and zero or more numerical columns.  All columns
are aligned by record index.
"""

from __future__ import annotations

import numpy as np

from ..spatial.resolution import SpatialResolution
from ..utils.errors import DataError, SchemaError
from .schema import DatasetSchema


class Dataset:
    """A spatio-temporal data set: a schema plus aligned column arrays.

    Parameters
    ----------
    schema:
        The data set's schema (roles + native resolutions).
    timestamps:
        ``(n,)`` epoch seconds, int64.
    x, y:
        GPS coordinates, required iff the native spatial resolution is GPS.
    regions:
        Region-id strings, required iff the native spatial resolution is
        ZIP or NEIGHBORHOOD.
    keys:
        Mapping of key-attribute name to an ``(n,)`` identifier column.
    numerics:
        Mapping of numeric-attribute name to an ``(n,)`` float column
        (NaN = missing).
    """

    def __init__(
        self,
        schema: DatasetSchema,
        timestamps: np.ndarray,
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
        regions: np.ndarray | None = None,
        keys: dict[str, np.ndarray] | None = None,
        numerics: dict[str, np.ndarray] | None = None,
    ) -> None:
        self.schema = schema
        self.timestamps = np.asarray(timestamps, dtype=np.int64)
        if self.timestamps.ndim != 1:
            raise DataError("timestamps must be a 1-D array")
        n = self.timestamps.size

        native = schema.spatial_resolution
        if native is SpatialResolution.GPS:
            if x is None or y is None:
                raise DataError(f"{schema.name}: GPS data sets need x and y columns")
            self.x = np.asarray(x, dtype=np.float64)
            self.y = np.asarray(y, dtype=np.float64)
            if self.x.shape != (n,) or self.y.shape != (n,):
                raise DataError(f"{schema.name}: coordinate columns misaligned")
            self.regions = None
        elif native in (SpatialResolution.ZIP, SpatialResolution.NEIGHBORHOOD):
            if regions is None:
                raise DataError(
                    f"{schema.name}: region-level data sets need a regions column"
                )
            self.regions = np.asarray(regions)
            if self.regions.shape != (n,):
                raise DataError(f"{schema.name}: regions column misaligned")
            self.x = self.y = None
        else:  # CITY: no spatial column
            if x is not None or y is not None or regions is not None:
                raise DataError(
                    f"{schema.name}: city-resolution data sets take no spatial column"
                )
            self.x = self.y = None
            self.regions = None

        self.keys = {}
        for name in schema.key_attributes:
            if keys is None or name not in keys:
                raise SchemaError(f"{schema.name}: missing key column {name!r}")
            col = np.asarray(keys[name])
            if col.shape != (n,):
                raise DataError(f"{schema.name}: key column {name!r} misaligned")
            self.keys[name] = col

        self.numerics = {}
        for name in schema.numeric_attributes:
            if numerics is None or name not in numerics:
                raise SchemaError(f"{schema.name}: missing numeric column {name!r}")
            col = np.asarray(numerics[name], dtype=np.float64)
            if col.shape != (n,):
                raise DataError(f"{schema.name}: numeric column {name!r} misaligned")
            self.numerics[name] = col

        extra_keys = set(keys or ()) - set(schema.key_attributes)
        extra_numerics = set(numerics or ()) - set(schema.numeric_attributes)
        if extra_keys or extra_numerics:
            raise SchemaError(
                f"{schema.name}: columns not declared in schema: "
                f"{sorted(extra_keys | extra_numerics)}"
            )

    # -- basic properties ----------------------------------------------------

    @property
    def name(self) -> str:
        """Data set name (from the schema)."""
        return self.schema.name

    @property
    def n_records(self) -> int:
        """Number of records."""
        return int(self.timestamps.size)

    def __len__(self) -> int:
        return self.n_records

    def time_range(self) -> tuple[int, int]:
        """``(min, max)`` timestamp in epoch seconds."""
        if self.n_records == 0:
            raise DataError(f"{self.name}: empty data set has no time range")
        return int(self.timestamps.min()), int(self.timestamps.max())

    def nbytes(self) -> int:
        """Approximate in-memory size of all columns, in bytes."""
        total = self.timestamps.nbytes
        for col in (self.x, self.y):
            if col is not None:
                total += col.nbytes
        if self.regions is not None:
            total += self.regions.nbytes
        for col in self.keys.values():
            total += col.nbytes
        for col in self.numerics.values():
            total += col.nbytes
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name!r}, records={self.n_records}, "
            f"spatial={self.schema.spatial_resolution.name}, "
            f"temporal={self.schema.temporal_resolution.name})"
        )
