"""Data-set catalogs: persist whole collections as CSV + JSON metadata.

The paper's pipeline reads raw CSV dumps plus a metadata record per data set
(which columns are spatial/temporal/key/numeric and the native resolutions).
A *catalog directory* is this repository's realization of that contract::

    my_city/
      catalog.json        # schemas + city model
      taxi.csv            # one CSV per data set
      weather.csv
      ...

:func:`save_catalog` writes a collection; :func:`load_catalog` reads it back
ready for :class:`repro.core.Corpus`.  The city model (region polygons and
adjacency per resolution) is embedded in the JSON so the catalog is fully
self-contained.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..spatial.city import CityModel
from ..spatial.geometry import Polygon
from ..spatial.regions import RegionSet
from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import DataError
from .csv_io import read_csv, write_csv
from .dataset import Dataset
from .schema import DatasetSchema

CATALOG_FILE = "catalog.json"
CATALOG_VERSION = 1


def schema_to_dict(schema: DatasetSchema) -> dict:
    """JSON-serializable form of a schema."""
    return {
        "name": schema.name,
        "spatial_resolution": schema.spatial_resolution.value,
        "temporal_resolution": schema.temporal_resolution.value,
        "key_attributes": list(schema.key_attributes),
        "numeric_attributes": list(schema.numeric_attributes),
        "description": schema.description,
    }


def schema_from_dict(data: dict) -> DatasetSchema:
    """Inverse of :func:`schema_to_dict`."""
    try:
        return DatasetSchema(
            name=data["name"],
            spatial_resolution=SpatialResolution(data["spatial_resolution"]),
            temporal_resolution=TemporalResolution(data["temporal_resolution"]),
            key_attributes=tuple(data.get("key_attributes", ())),
            numeric_attributes=tuple(data.get("numeric_attributes", ())),
            description=data.get("description", ""),
        )
    except (KeyError, ValueError) as exc:
        raise DataError(f"malformed schema record: {exc}") from exc


def city_to_dict(city: CityModel) -> dict:
    """JSON-serializable form of a city model (polygons + adjacency)."""
    layers = {}
    for resolution, regions in city.regions.items():
        layers[resolution.value] = {
            "region_ids": regions.region_ids,
            "polygons": [
                np.column_stack((p.xs, p.ys)).tolist() for p in regions.polygons
            ],
            "adjacency": city.adjacency.get(
                resolution, np.zeros((0, 2), np.int64)
            ).tolist(),
        }
    return {"name": city.name, "layers": layers}


def city_from_dict(data: dict) -> CityModel:
    """Inverse of :func:`city_to_dict`."""
    regions: dict[SpatialResolution, RegionSet] = {}
    adjacency: dict[SpatialResolution, np.ndarray] = {}
    try:
        for res_name, layer in data["layers"].items():
            resolution = SpatialResolution(res_name)
            polygons = [Polygon(vertices) for vertices in layer["polygons"]]
            regions[resolution] = RegionSet(
                resolution.value, list(layer["region_ids"]), polygons
            )
            adjacency[resolution] = np.asarray(
                layer.get("adjacency", []), dtype=np.int64
            ).reshape(-1, 2)
        return CityModel(name=data["name"], regions=regions, adjacency=adjacency)
    except (KeyError, ValueError) as exc:
        raise DataError(f"malformed city record: {exc}") from exc


def save_catalog(
    directory: str | Path, datasets: list[Dataset], city: CityModel
) -> Path:
    """Write a collection to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "version": CATALOG_VERSION,
        "city": city_to_dict(city),
        "datasets": [],
    }
    for dataset in datasets:
        filename = f"{dataset.name}.csv"
        write_csv(dataset, directory / filename)
        record = schema_to_dict(dataset.schema)
        record["file"] = filename
        manifest["datasets"].append(record)
    with open(directory / CATALOG_FILE, "w") as handle:
        json.dump(manifest, handle, indent=2)
    return directory / CATALOG_FILE


def load_catalog(directory: str | Path) -> tuple[list[Dataset], CityModel]:
    """Read a collection written by :func:`save_catalog`."""
    directory = Path(directory)
    path = directory / CATALOG_FILE
    if not path.exists():
        raise DataError(f"{directory}: no {CATALOG_FILE} found")
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != CATALOG_VERSION:
        raise DataError(f"unsupported catalog version {manifest.get('version')!r}")
    city = city_from_dict(manifest["city"])
    datasets = []
    for record in manifest["datasets"]:
        schema = schema_from_dict(record)
        datasets.append(read_csv(directory / record["file"], schema))
    return datasets, city
