"""CSV round-trip for data sets.

The paper's pipeline ingests raw CSV dumps plus a metadata record describing
which columns are spatial, temporal, key and numeric.  This module provides
the same contract: :func:`write_csv` emits a plain CSV with deterministic
column order, and :func:`read_csv` reconstructs a :class:`Dataset` given its
:class:`DatasetSchema` (the metadata).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..spatial.resolution import SpatialResolution
from ..utils.errors import DataError
from .dataset import Dataset
from .schema import DatasetSchema


def _columns(dataset: Dataset) -> list[tuple[str, np.ndarray]]:
    cols: list[tuple[str, np.ndarray]] = [("timestamp", dataset.timestamps)]
    if dataset.x is not None:
        cols.append(("x", dataset.x))
        cols.append(("y", dataset.y))
    if dataset.regions is not None:
        cols.append(("region", dataset.regions))
    for name in dataset.schema.key_attributes:
        cols.append((name, dataset.keys[name]))
    for name in dataset.schema.numeric_attributes:
        cols.append((name, dataset.numerics[name]))
    return cols


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` as a header-first CSV file."""
    cols = _columns(dataset)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([name for name, _ in cols])
        arrays = [col for _, col in cols]
        for row in zip(*arrays):
            writer.writerow(
                ["" if isinstance(v, float) and np.isnan(v) else v for v in row]
            )


def read_csv(path: str | Path, schema: DatasetSchema) -> Dataset:
    """Read a CSV written by :func:`write_csv` back into a :class:`Dataset`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty CSV file") from None
        rows = list(reader)

    index = {name: i for i, name in enumerate(header)}
    if "timestamp" not in index:
        raise DataError(f"{path}: missing 'timestamp' column")

    def column(name: str) -> list[str]:
        pos = index[name]
        return [row[pos] for row in rows]

    timestamps = np.array([int(v) for v in column("timestamp")], dtype=np.int64)
    x = y = regions = None
    native = schema.spatial_resolution
    if native is SpatialResolution.GPS:
        for coord in ("x", "y"):
            if coord not in index:
                raise DataError(f"{path}: GPS schema needs column {coord!r}")
        x = np.array([float(v) for v in column("x")], dtype=np.float64)
        y = np.array([float(v) for v in column("y")], dtype=np.float64)
    elif native in (SpatialResolution.ZIP, SpatialResolution.NEIGHBORHOOD):
        if "region" not in index:
            raise DataError(f"{path}: region-level schema needs column 'region'")
        regions = np.array(column("region"))

    keys: dict[str, np.ndarray] = {}
    for name in schema.key_attributes:
        if name not in index:
            raise DataError(f"{path}: missing key column {name!r}")
        keys[name] = np.array(column(name))

    numerics: dict[str, np.ndarray] = {}
    for name in schema.numeric_attributes:
        if name not in index:
            raise DataError(f"{path}: missing numeric column {name!r}")
        numerics[name] = np.array(
            [float(v) if v != "" else np.nan for v in column(name)],
            dtype=np.float64,
        )

    return Dataset(
        schema,
        timestamps=timestamps,
        x=x,
        y=y,
        regions=regions,
        keys=keys,
        numerics=numerics,
    )
