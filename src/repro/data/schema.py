"""Data set schemas: attribute roles and native resolutions (§5.1).

A data set ``D`` has attributes ``{K, S, T, A1 ... Ak}``: an optional unique
identifier ``K`` (possibly several), spatial and temporal attributes ``S`` and
``T``, and numerical attributes ``Ai``.  The schema records which column plays
which role plus the *native* spatio-temporal resolution the data arrives at;
the framework aggregates from there to every viable evaluation resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spatial.resolution import SpatialResolution
from ..temporal.resolution import TemporalResolution
from ..utils.errors import SchemaError


@dataclass(frozen=True)
class DatasetSchema:
    """Schema of a spatio-temporal data set.

    Attributes
    ----------
    name:
        Data set name, unique within a corpus.
    spatial_resolution:
        Native spatial resolution.  ``GPS`` means records carry (x, y)
        coordinates; ``ZIP``/``NEIGHBORHOOD`` mean records carry region ids;
        ``CITY`` means records are city-wide (no spatial column).
    temporal_resolution:
        Native temporal resolution of the timestamp column.
    key_attributes:
        Identifier columns (each yields one *unique* count function).
    numeric_attributes:
        Numerical columns (each yields one *attribute* function).
    description:
        Free-text description (Table 1's last column).
    """

    name: str
    spatial_resolution: SpatialResolution
    temporal_resolution: TemporalResolution
    key_attributes: tuple[str, ...] = ()
    numeric_attributes: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("data set name must be non-empty")
        names = list(self.key_attributes) + list(self.numeric_attributes)
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}")
        reserved = {"timestamp", "x", "y", "region"}
        clash = reserved.intersection(names)
        if clash:
            raise SchemaError(
                f"attribute names {sorted(clash)} clash with reserved columns"
            )

    @property
    def n_scalar_functions(self) -> int:
        """Scalar functions derived from this data set (§5.1).

        One density function, one unique function per key attribute, and one
        attribute function per numerical attribute.
        """
        return 1 + len(self.key_attributes) + len(self.numeric_attributes)
