"""Region adjacency graphs.

The spatial edges ``E_S`` of the domain graph (§3.1) connect *adjacent*
regions of a partition.  Two strategies are provided:

* :func:`adjacency_from_shared_edges` — exact: two polygons are adjacent iff
  they share a full boundary segment (vertex-identical).  Correct for
  partitions whose polygons share complete edges (our grid layers).
* :func:`adjacency_from_rectangles` — for axis-aligned rectangular partitions:
  adjacency iff the rectangles touch along a boundary interval of positive
  length.  Handles T-junctions where polygons share only part of an edge.

Both return a sorted ``(m, 2)`` int64 array of region-index pairs ``i < j``.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import DataError
from .regions import RegionSet

_ROUND_DECIMALS = 9


def _edge_key(a: tuple[float, float], b: tuple[float, float]) -> tuple:
    pa = (round(a[0], _ROUND_DECIMALS), round(a[1], _ROUND_DECIMALS))
    pb = (round(b[0], _ROUND_DECIMALS), round(b[1], _ROUND_DECIMALS))
    return (pa, pb) if pa <= pb else (pb, pa)


def adjacency_from_shared_edges(regions: RegionSet) -> np.ndarray:
    """Adjacency pairs of regions that share an identical boundary segment."""
    owners: dict[tuple, list[int]] = {}
    for idx, poly in enumerate(regions.polygons):
        for a, b in poly.edges():
            owners.setdefault(_edge_key(a, b), []).append(idx)
    pairs: set[tuple[int, int]] = set()
    for members in owners.values():
        uniq = sorted(set(members))
        for i in range(len(uniq)):
            for j in range(i + 1, len(uniq)):
                pairs.add((uniq[i], uniq[j]))
    return _as_pair_array(pairs)


def adjacency_from_rectangles(regions: RegionSet, eps: float = 1e-9) -> np.ndarray:
    """Adjacency for axis-aligned rectangular regions via boundary contact.

    Two rectangles are adjacent iff they touch along a shared vertical or
    horizontal boundary whose overlap interval has positive length (corner
    contact does not count, matching the 4-connectivity the paper's planar
    domain graphs use).
    """
    xmin = np.array([p.bbox.xmin for p in regions.polygons])
    xmax = np.array([p.bbox.xmax for p in regions.polygons])
    ymin = np.array([p.bbox.ymin for p in regions.polygons])
    ymax = np.array([p.bbox.ymax for p in regions.polygons])
    n = len(regions)
    pairs: set[tuple[int, int]] = set()
    for i in range(n):
        touch_x = (np.abs(xmax[i] - xmin) < eps) | (np.abs(xmin[i] - xmax) < eps)
        overlap_y = np.minimum(ymax[i], ymax) - np.maximum(ymin[i], ymin)
        touch_y = (np.abs(ymax[i] - ymin) < eps) | (np.abs(ymin[i] - ymax) < eps)
        overlap_x = np.minimum(xmax[i], xmax) - np.maximum(xmin[i], xmin)
        adjacent = (touch_x & (overlap_y > eps)) | (touch_y & (overlap_x > eps))
        for j in np.flatnonzero(adjacent):
            if j != i:
                pairs.add((min(i, int(j)), max(i, int(j))))
    return _as_pair_array(pairs)


def grid_adjacency(nx: int, ny: int) -> np.ndarray:
    """4-neighbour adjacency of an ``nx x ny`` grid in row-major cell order.

    Cell ``(i, j)`` has index ``j * nx + i``, matching
    :func:`repro.spatial.regions.grid_partition`.
    """
    if nx < 1 or ny < 1:
        raise DataError("grid dimensions must be positive")
    pairs: list[tuple[int, int]] = []
    for j in range(ny):
        for i in range(nx):
            v = j * nx + i
            if i + 1 < nx:
                pairs.append((v, v + 1))
            if j + 1 < ny:
                pairs.append((v, v + nx))
    return _as_pair_array(set(pairs))


def neighbors_from_pairs(n_regions: int, pairs: np.ndarray) -> list[np.ndarray]:
    """Adjacency list (one sorted neighbour array per region) from pairs."""
    lists: list[list[int]] = [[] for _ in range(n_regions)]
    for i, j in np.asarray(pairs, dtype=np.int64).reshape(-1, 2):
        lists[int(i)].append(int(j))
        lists[int(j)].append(int(i))
    return [np.array(sorted(ns), dtype=np.int64) for ns in lists]


def _as_pair_array(pairs: set[tuple[int, int]]) -> np.ndarray:
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    arr = np.array(sorted(pairs), dtype=np.int64)
    return arr
