"""Spatial resolutions and the compatibility DAG of Figure 6 (left).

The paper's spatial DAG::

    GPS -> zip code ------.
    GPS -> neighborhood ---+--> city
    GPS -> city -----------'

Zip code and neighborhood are *incompatible* (neither nests in the other), so
a pair of functions at those two resolutions is evaluated at the city scale.
GPS is a native input resolution only; evaluation happens at zip code,
neighborhood and city (the solid lines of Fig. 6).
"""

from __future__ import annotations

from enum import Enum
from functools import total_ordering


@total_ordering
class SpatialResolution(Enum):
    """Granularity of the spatial axis, orderable from finest to coarsest."""

    GPS = "gps"
    ZIP = "zip"
    NEIGHBORHOOD = "neighborhood"
    CITY = "city"

    @property
    def rank(self) -> int:
        """Position in a finest-to-coarsest order (GPS=0 ... city=3).

        ZIP and NEIGHBORHOOD share the middle of the hierarchy; their mutual
        order (zip before neighborhood) is arbitrary and only used for
        deterministic iteration, never for convertibility.
        """
        return _RANK[self]

    def __lt__(self, other: "SpatialResolution") -> bool:
        if not isinstance(other, SpatialResolution):
            return NotImplemented
        return self.rank < other.rank

    def convertible_to(self, other: "SpatialResolution") -> bool:
        """True iff data at this resolution can be aggregated to ``other``."""
        return other in _EDGES[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpatialResolution.{self.name}"


_RANK = {
    SpatialResolution.GPS: 0,
    SpatialResolution.ZIP: 1,
    SpatialResolution.NEIGHBORHOOD: 2,
    SpatialResolution.CITY: 3,
}

_EDGES: dict[SpatialResolution, frozenset[SpatialResolution]] = {
    SpatialResolution.GPS: frozenset(
        {
            SpatialResolution.GPS,
            SpatialResolution.ZIP,
            SpatialResolution.NEIGHBORHOOD,
            SpatialResolution.CITY,
        }
    ),
    SpatialResolution.ZIP: frozenset({SpatialResolution.ZIP, SpatialResolution.CITY}),
    SpatialResolution.NEIGHBORHOOD: frozenset(
        {SpatialResolution.NEIGHBORHOOD, SpatialResolution.CITY}
    ),
    SpatialResolution.CITY: frozenset({SpatialResolution.CITY}),
}

#: Resolutions at which relationships are evaluated (Fig. 6 solid lines).
EVALUATION_SPATIAL = (
    SpatialResolution.ZIP,
    SpatialResolution.NEIGHBORHOOD,
    SpatialResolution.CITY,
)


def viable_spatial_resolutions(
    native: SpatialResolution,
) -> tuple[SpatialResolution, ...]:
    """Evaluation resolutions reachable from a data set's native resolution."""
    return tuple(r for r in EVALUATION_SPATIAL if native.convertible_to(r))


def common_spatial_resolutions(
    a: SpatialResolution, b: SpatialResolution
) -> tuple[SpatialResolution, ...]:
    """Evaluation resolutions both ``a`` and ``b`` convert to, finest first.

    E.g. neighborhood vs. zip code -> (city,) because the two middle layers
    are incompatible (§5.1 and Fig. 6).
    """
    return tuple(
        r
        for r in EVALUATION_SPATIAL
        if a.convertible_to(r) and b.convertible_to(r)
    )
