"""Minimal computational-geometry primitives.

The framework needs just enough geometry to (a) assign GPS points to the
polygonal regions of a spatial partition and (b) derive region adjacency from
shared polygon boundaries.  We implement simple polygons with ray-casting
point-in-polygon tests and axis-aligned bounding boxes; city-scale partitions
have at most a few hundred polygons, so bbox pre-filtering is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.errors import DataError


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def contains(self, x: float, y: float) -> bool:
        """True iff ``(x, y)`` lies inside or on the boundary."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains`."""
        return (
            (self.xmin <= xs)
            & (xs <= self.xmax)
            & (self.ymin <= ys)
            & (ys <= self.ymax)
        )


class Polygon:
    """A simple (non-self-intersecting) polygon given by its vertex ring.

    The ring is stored open (last vertex != first); closure is implicit.
    Vertex order may be clockwise or counter-clockwise.
    """

    __slots__ = ("xs", "ys", "bbox")

    def __init__(self, vertices: np.ndarray | list[tuple[float, float]]) -> None:
        arr = np.asarray(vertices, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] < 3:
            raise DataError("a polygon needs an (n>=3, 2) vertex array")
        if np.allclose(arr[0], arr[-1]) and arr.shape[0] > 3:
            arr = arr[:-1]
        self.xs = arr[:, 0].copy()
        self.ys = arr[:, 1].copy()
        self.bbox = BoundingBox(
            float(self.xs.min()),
            float(self.ys.min()),
            float(self.xs.max()),
            float(self.ys.max()),
        )

    def __len__(self) -> int:
        return int(self.xs.size)

    def contains(self, x: float, y: float) -> bool:
        """Ray-casting point-in-polygon test (boundary points count inside)."""
        if not self.bbox.contains(x, y):
            return False
        return bool(self.contains_many(np.array([x]), np.array([y]))[0])

    def contains_many(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Vectorized ray casting for arrays of query points.

        A horizontal ray is cast to the right of each point; an odd crossing
        count means inside.  Points exactly on a horizontal edge are resolved
        by the half-open vertex rule (consistent, no double counting).
        """
        px = np.asarray(px, dtype=np.float64)
        py = np.asarray(py, dtype=np.float64)
        inside = np.zeros(px.shape, dtype=bool)
        candidates = self.bbox.contains_many(px, py)
        if not candidates.any():
            return inside
        cx = px[candidates]
        cy = py[candidates]
        n = self.xs.size
        hit = np.zeros(cx.shape, dtype=bool)
        x0, y0 = self.xs, self.ys
        x1 = np.roll(self.xs, -1)
        y1 = np.roll(self.ys, -1)
        for i in range(n):
            ax, ay, bx, by = x0[i], y0[i], x1[i], y1[i]
            crosses = (ay > cy) != (by > cy)
            if not crosses.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                t = (cy - ay) / (by - ay)
                x_at = ax + t * (bx - ax)
            hit ^= crosses & (cx < x_at)
        inside[candidates] = hit
        return inside

    def centroid(self) -> tuple[float, float]:
        """Area-weighted centroid of the polygon."""
        x0, y0 = self.xs, self.ys
        x1 = np.roll(x0, -1)
        y1 = np.roll(y0, -1)
        cross = x0 * y1 - x1 * y0
        area6 = cross.sum() * 3.0
        if abs(area6) < 1e-12:
            return float(x0.mean()), float(y0.mean())
        cx = ((x0 + x1) * cross).sum() / area6
        cy = ((y0 + y1) * cross).sum() / area6
        return float(cx), float(cy)

    def area(self) -> float:
        """Unsigned polygon area (shoelace formula)."""
        x0, y0 = self.xs, self.ys
        x1 = np.roll(x0, -1)
        y1 = np.roll(y0, -1)
        return float(abs((x0 * y1 - x1 * y0).sum()) / 2.0)

    def edges(self) -> list[tuple[tuple[float, float], tuple[float, float]]]:
        """Boundary segments as ((x0, y0), (x1, y1)) tuples (ring order)."""
        x1 = np.roll(self.xs, -1)
        y1 = np.roll(self.ys, -1)
        return [
            ((float(self.xs[i]), float(self.ys[i])), (float(x1[i]), float(y1[i])))
            for i in range(self.xs.size)
        ]

    @classmethod
    def rectangle(cls, xmin: float, ymin: float, xmax: float, ymax: float) -> "Polygon":
        """Axis-aligned rectangle polygon."""
        if xmax <= xmin or ymax <= ymin:
            raise DataError("rectangle must have positive width and height")
        return cls([(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polygon(n={len(self)}, bbox={self.bbox})"
