"""City model: the region partitions and adjacency of one urban area.

A :class:`CityModel` bundles, for each evaluation spatial resolution, the
region partition (:class:`RegionSet`) and its adjacency pairs.  The corpus
uses it to aggregate GPS records into regions and to build domain graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.errors import DataError
from .adjacency import adjacency_from_rectangles
from .regions import RegionSet, city_partition, grid_partition
from .resolution import SpatialResolution


@dataclass
class CityModel:
    """Region layers of a city, keyed by spatial resolution.

    ``regions`` must contain CITY; ZIP and NEIGHBORHOOD layers are optional
    (a purely city-level corpus needs neither).  ``adjacency`` holds the
    region adjacency pairs per resolution; CITY has none.
    """

    name: str
    regions: dict[SpatialResolution, RegionSet]
    adjacency: dict[SpatialResolution, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if SpatialResolution.CITY not in self.regions:
            raise DataError("a CityModel needs at least the CITY layer")
        self.adjacency.setdefault(SpatialResolution.CITY, np.zeros((0, 2), np.int64))

    def region_set(self, resolution: SpatialResolution) -> RegionSet:
        """The partition at ``resolution`` (KeyError -> DataError)."""
        try:
            return self.regions[resolution]
        except KeyError:
            raise DataError(
                f"{self.name}: no region layer for {resolution.name}"
            ) from None

    def spatial_pairs(self, resolution: SpatialResolution) -> np.ndarray:
        """Region adjacency pairs at ``resolution`` (empty for CITY)."""
        if resolution not in self.adjacency:
            raise DataError(f"{self.name}: no adjacency for {resolution.name}")
        return self.adjacency[resolution]

    def available_resolutions(self) -> tuple[SpatialResolution, ...]:
        """Evaluation resolutions this city has layers for."""
        order = (
            SpatialResolution.ZIP,
            SpatialResolution.NEIGHBORHOOD,
            SpatialResolution.CITY,
        )
        return tuple(r for r in order if r in self.regions)

    @classmethod
    def synthetic(
        cls,
        name: str = "synthville",
        nbhd_grid: tuple[int, int] = (8, 8),
        zip_grid: tuple[int, int] = (5, 5),
        extent: tuple[float, float, float, float] = (0.0, 0.0, 16.0, 16.0),
    ) -> "CityModel":
        """A synthetic city with deliberately non-nested region layers.

        Neighborhoods form an ``nbhd_grid`` partition and zip codes a
        ``zip_grid`` partition of the same extent; since the grids do not
        align, the two layers are incompatible exactly like the paper's
        neighborhood and zip-code resolutions (Fig. 6).
        """
        xmin, ymin, xmax, ymax = extent
        nbhd = grid_partition(
            nbhd_grid[0],
            nbhd_grid[1],
            xmin,
            ymin,
            xmax,
            ymax,
            name="neighborhood",
            prefix="nbhd",
        )
        zips = grid_partition(
            zip_grid[0],
            zip_grid[1],
            xmin,
            ymin,
            xmax,
            ymax,
            name="zip",
            prefix="zip",
        )
        city = city_partition(xmin, ymin, xmax, ymax)
        return cls(
            name=name,
            regions={
                SpatialResolution.NEIGHBORHOOD: nbhd,
                SpatialResolution.ZIP: zips,
                SpatialResolution.CITY: city,
            },
            adjacency={
                SpatialResolution.NEIGHBORHOOD: adjacency_from_rectangles(nbhd),
                SpatialResolution.ZIP: adjacency_from_rectangles(zips),
                SpatialResolution.CITY: np.zeros((0, 2), np.int64),
            },
        )
