"""Region partitions of a city (the spatial domain ``S`` of §2.1).

A :class:`RegionSet` is a named partition of the spatial extent into polygons
``{s1, ..., sn}``.  It supports assigning GPS points to regions (the
aggregation step of scalar-function computation) and mapping its regions into
a coarser, compatible partition (the resolution-conversion step of Fig. 6).
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import DataError
from .geometry import Polygon


class RegionSet:
    """A partition of space into named polygonal regions.

    Parameters
    ----------
    name:
        Human-readable partition name (e.g. ``"neighborhood"``).
    region_ids:
        One identifier string per region.
    polygons:
        One :class:`Polygon` per region, in the same order.
    """

    def __init__(
        self,
        name: str,
        region_ids: list[str],
        polygons: list[Polygon],
    ) -> None:
        if len(region_ids) != len(polygons):
            raise DataError("region_ids and polygons must align")
        if len(region_ids) == 0:
            raise DataError("a RegionSet needs at least one region")
        if len(set(region_ids)) != len(region_ids):
            raise DataError("region ids must be unique")
        self.name = name
        self.region_ids = list(region_ids)
        self.polygons = list(polygons)
        self._id_to_index = {rid: i for i, rid in enumerate(region_ids)}
        self._bbox_xmin = np.array([p.bbox.xmin for p in polygons])
        self._bbox_xmax = np.array([p.bbox.xmax for p in polygons])
        self._bbox_ymin = np.array([p.bbox.ymin for p in polygons])
        self._bbox_ymax = np.array([p.bbox.ymax for p in polygons])

    def __len__(self) -> int:
        return len(self.region_ids)

    def index_of(self, region_id: str) -> int:
        """Index of ``region_id`` in this partition."""
        try:
            return self._id_to_index[region_id]
        except KeyError:
            raise DataError(
                f"unknown region id {region_id!r} in {self.name!r}"
            ) from None

    def indices_of(self, region_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index_of`; unknown ids map to ``-1``."""
        return np.array(
            [self._id_to_index.get(str(r), -1) for r in region_ids], dtype=np.int64
        )

    # -- point location ----------------------------------------------------

    def locate(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Region index of each (x, y) point; ``-1`` for points outside.

        Bounding boxes pre-filter candidate polygons; exact containment is
        then decided by ray casting.  Each point is assigned to the first
        containing region (partitions overlap only on shared boundaries).
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise DataError("x and y coordinate arrays must align")
        out = np.full(xs.shape, -1, dtype=np.int64)
        unassigned = np.ones(xs.shape, dtype=bool)
        for i, poly in enumerate(self.polygons):
            if not unassigned.any():
                break
            candidate = unassigned & poly.bbox.contains_many(xs, ys)
            if not candidate.any():
                continue
            hit = poly.contains_many(xs[candidate], ys[candidate])
            idx = np.flatnonzero(candidate)[hit]
            out[idx] = i
            unassigned[idx] = False
        return out

    # -- partition relations -------------------------------------------------

    def parent_map(self, coarser: "RegionSet") -> np.ndarray:
        """For each region, the index of its containing region in ``coarser``.

        Containment is decided by the region centroid; regions whose centroid
        falls outside every coarse polygon map to ``-1``.  This is the
        region-level translation used when converting an already-aggregated
        function to a compatible lower resolution.
        """
        cx = np.array([p.centroid()[0] for p in self.polygons])
        cy = np.array([p.centroid()[1] for p in self.polygons])
        return coarser.locate(cx, cy)

    def extent(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the whole partition."""
        return (
            float(self._bbox_xmin.min()),
            float(self._bbox_ymin.min()),
            float(self._bbox_xmax.max()),
            float(self._bbox_ymax.max()),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegionSet({self.name!r}, n={len(self)})"


def city_partition(
    xmin: float, ymin: float, xmax: float, ymax: float, region_id: str = "city"
) -> RegionSet:
    """The trivial one-region partition (the paper's *city* resolution)."""
    return RegionSet("city", [region_id], [Polygon.rectangle(xmin, ymin, xmax, ymax)])


def grid_partition(
    nx: int,
    ny: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    name: str = "grid",
    prefix: str = "cell",
) -> RegionSet:
    """An ``nx x ny`` rectangular-grid partition of the extent.

    Used both for the synthetic *neighborhood* layer and, with a different
    shape, for the non-nested *zip code* layer (the two deliberately do not
    align, reproducing the incompatible resolutions of Fig. 6).
    """
    if nx < 1 or ny < 1:
        raise DataError("grid dimensions must be positive")
    if xmax <= xmin or ymax <= ymin:
        raise DataError("grid extent must have positive area")
    xs = np.linspace(xmin, xmax, nx + 1)
    ys = np.linspace(ymin, ymax, ny + 1)
    ids: list[str] = []
    polys: list[Polygon] = []
    for j in range(ny):
        for i in range(nx):
            ids.append(f"{prefix}_{i}_{j}")
            polys.append(Polygon.rectangle(xs[i], ys[j], xs[i + 1], ys[j + 1]))
    return RegionSet(name, ids, polys)
