"""Spatial substrate: geometry, region partitions, adjacency, resolutions."""

from .adjacency import (
    adjacency_from_rectangles,
    adjacency_from_shared_edges,
    grid_adjacency,
    neighbors_from_pairs,
)
from .geometry import BoundingBox, Polygon
from .regions import RegionSet, city_partition, grid_partition
from .resolution import (
    EVALUATION_SPATIAL,
    SpatialResolution,
    common_spatial_resolutions,
    viable_spatial_resolutions,
)

__all__ = [
    "BoundingBox",
    "Polygon",
    "RegionSet",
    "city_partition",
    "grid_partition",
    "adjacency_from_shared_edges",
    "adjacency_from_rectangles",
    "grid_adjacency",
    "neighbors_from_pairs",
    "SpatialResolution",
    "EVALUATION_SPATIAL",
    "common_spatial_resolutions",
    "viable_spatial_resolutions",
]
