"""The spatio-temporal domain graph ``G = (V, E_S ∪ E_T)`` of §3.1.

Vertex ``v_{x,z}`` represents spatial region ``s_x`` at time step ``t_z``;
``|V| = n * m``.  Spatial edges connect adjacent regions within each time
step; temporal edges connect the same region across consecutive time steps.
A piecewise-linear scalar function is defined on the vertices of this graph
(values live in an ``(m, n)`` matrix) and interpolated along edges.

Vertices are numbered time-major: ``index(x, z) = z * n + x``.  For the city
resolution (``n = 1``) the graph degenerates to a path — a plain time series —
exactly matching the paper's 1-D case.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import DataError
from ..spatial.adjacency import neighbors_from_pairs


class DomainGraph:
    """Graph representation of a spatio-temporal domain.

    Parameters
    ----------
    n_regions:
        Number of spatial regions ``n`` (>= 1).
    n_steps:
        Number of time steps ``m`` (>= 1).
    spatial_pairs:
        ``(k, 2)`` array of adjacent region-index pairs (undirected).  Empty
        for the city resolution.
    step_labels:
        Optional ``(m,)`` array of the temporal bucket indices behind each
        step (used for seasonal-interval threshold computation).  Defaults to
        ``arange(m)``.
    """

    def __init__(
        self,
        n_regions: int,
        n_steps: int,
        spatial_pairs: np.ndarray | None = None,
        step_labels: np.ndarray | None = None,
    ) -> None:
        if n_regions < 1 or n_steps < 1:
            raise DataError("domain graph needs n_regions >= 1 and n_steps >= 1")
        self.n_regions = int(n_regions)
        self.n_steps = int(n_steps)
        if spatial_pairs is None:
            spatial_pairs = np.zeros((0, 2), dtype=np.int64)
        pairs = np.asarray(spatial_pairs, dtype=np.int64).reshape(-1, 2)
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n_regions):
            raise DataError("spatial adjacency pair out of range")
        self.spatial_pairs = pairs
        if step_labels is None:
            step_labels = np.arange(n_steps, dtype=np.int64)
        labels = np.asarray(step_labels, dtype=np.int64)
        if labels.shape != (n_steps,):
            raise DataError("step_labels must have one entry per time step")
        self.step_labels = labels
        self._region_neighbors = neighbors_from_pairs(self.n_regions, pairs)

    # -- vertex indexing -----------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """``|V| = n_regions * n_steps``."""
        return self.n_regions * self.n_steps

    @property
    def n_edges(self) -> int:
        """``|E_S| + |E_T|`` (undirected edge count)."""
        spatial = self.spatial_pairs.shape[0] * self.n_steps
        temporal = self.n_regions * (self.n_steps - 1)
        return spatial + temporal

    def vertex(self, region: int, step: int) -> int:
        """Vertex index of region ``region`` at time step ``step``."""
        if not (0 <= region < self.n_regions and 0 <= step < self.n_steps):
            raise DataError("vertex coordinates out of range")
        return step * self.n_regions + region

    def region_of(self, v: int) -> int:
        """Region index of vertex ``v``."""
        return int(v % self.n_regions)

    def step_of(self, v: int) -> int:
        """Time-step index of vertex ``v``."""
        return int(v // self.n_regions)

    # -- traversal -----------------------------------------------------------

    def neighbors(self, v: int) -> np.ndarray:
        """All vertices adjacent to ``v`` (spatial + temporal edges)."""
        n = self.n_regions
        region = v % n
        step = v // n
        base = step * n
        parts = [base + self._region_neighbors[region]]
        if step > 0:
            parts.append(np.array([v - n], dtype=np.int64))
        if step + 1 < self.n_steps:
            parts.append(np.array([v + n], dtype=np.int64))
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def neighbor_lists(self) -> list[np.ndarray]:
        """Materialized adjacency list for every vertex.

        Useful for tight sweeps (merge-tree construction) where per-call
        overhead matters; memory is O(|E|).
        """
        return [self.neighbors(v) for v in range(self.n_vertices)]

    def region_neighbors(self, region: int) -> np.ndarray:
        """Spatially adjacent regions of ``region``."""
        return self._region_neighbors[region]

    def iter_edges(self):
        """Yield every undirected edge ``(u, v)`` with ``u < v`` once."""
        n = self.n_regions
        for step in range(self.n_steps):
            base = step * n
            for i, j in self.spatial_pairs:
                yield base + int(i), base + int(j)
        for step in range(self.n_steps - 1):
            base = step * n
            for region in range(n):
                yield base + region, base + region + n

    @property
    def is_time_series(self) -> bool:
        """True iff the domain is purely temporal (one region, a 1-D path)."""
        return self.n_regions == 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DomainGraph(regions={self.n_regions}, steps={self.n_steps}, "
            f"edges={self.n_edges})"
        )
