"""Array-based union-find (disjoint-set) with path compression.

The merge-tree sweep (§3.1, Appendix B.2) performs O(N) union/find operations
over the vertices of the domain graph; with path compression and union by
rank the total cost is O(N α(N)).
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import DataError


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``."""

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise DataError("UnionFind size must be >= 0")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._count = n

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return ra

    def connected(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def n_components(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def __len__(self) -> int:
        return int(self._parent.size)
