"""Graph substrate: union-find and the spatio-temporal domain graph."""

from .domain_graph import DomainGraph
from .union_find import UnionFind

__all__ = ["DomainGraph", "UnionFind"]
