"""Pearson correlation coefficient baseline (Appendix D).

``β_PCC(X, Y) = cov(X, Y) / (σ_X σ_Y)`` — linear correlation between two
aligned series, in [−1, 1].  Operates globally over the whole series, which
is exactly why it misses the paper's conditional relationships (§6.4).
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import DataError


def pearson_score(x: np.ndarray, y: np.ndarray) -> float:
    """β_PCC of two aligned 1-D series.

    Constant series have undefined correlation; we return 0.0 (no linear
    relationship) rather than NaN so corpus-wide sweeps stay total.
    """
    xv = np.asarray(x, dtype=np.float64).ravel()
    yv = np.asarray(y, dtype=np.float64).ravel()
    if xv.shape != yv.shape:
        raise DataError("series must be aligned")
    if xv.size < 2:
        raise DataError("pearson_score needs at least 2 points")
    sx = xv.std()
    sy = yv.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    cov = ((xv - xv.mean()) * (yv - yv.mean())).mean()
    return float(cov / (sx * sy))
