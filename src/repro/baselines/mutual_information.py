"""Normalized mutual information baseline (Appendix D).

``β_MI(X, Y) = I(X, Y) / sqrt(H(X) · H(Y))`` in [0, 1], with discrete
distributions obtained by equal-width binning of the two series.  0 means
independent, 1 completely dependent.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import DataError


def _bin_series(x: np.ndarray, n_bins: int) -> np.ndarray:
    lo, hi = x.min(), x.max()
    if hi == lo:
        return np.zeros(x.size, dtype=np.int64)
    edges = np.linspace(lo, hi, n_bins + 1)
    codes = np.clip(np.digitize(x, edges[1:-1]), 0, n_bins - 1)
    return codes.astype(np.int64)


def mutual_information_score(
    x: np.ndarray, y: np.ndarray, n_bins: int | None = None
) -> float:
    """β_MI of two aligned 1-D series.

    ``n_bins`` defaults to Sturges' rule (``1 + log2 n``).  If either series
    is constant its entropy is zero and the score is defined as 0.0 (a
    constant carries no information about anything).
    """
    xv = np.asarray(x, dtype=np.float64).ravel()
    yv = np.asarray(y, dtype=np.float64).ravel()
    if xv.shape != yv.shape:
        raise DataError("series must be aligned")
    if xv.size < 2:
        raise DataError("mutual_information_score needs at least 2 points")
    if n_bins is None:
        n_bins = max(2, int(np.ceil(1 + np.log2(xv.size))))

    cx = _bin_series(xv, n_bins)
    cy = _bin_series(yv, n_bins)
    joint = np.zeros((n_bins, n_bins), dtype=np.float64)
    np.add.at(joint, (cx, cy), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)

    hx = -np.sum(px[px > 0] * np.log(px[px > 0]))
    hy = -np.sum(py[py > 0] * np.log(py[py > 0]))
    if hx == 0.0 or hy == 0.0:
        return 0.0

    nz = joint > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / np.outer(px, py)
        mi = float(np.sum(joint[nz] * np.log(ratio[nz])))
    score = mi / float(np.sqrt(hx * hy))
    return float(np.clip(score, 0.0, 1.0))
