"""Dynamic time warping baseline with the paper's normalization (Appendix D).

DTW computes a minimum-cost monotone alignment between two series with the
classic O(n·m) dynamic program [Sakoe & Chiba].  Raw DTW distances are not
comparable across series pairs, so the paper normalizes:

    β_DTW(X, Y) = 1 − DTW(X, Y) / (DTW(X, 0) + DTW(0, Y)),

with X and Y Z-normalized and ``0`` the constant zero line.  The score is in
[0, 1]: 1 for identical series, 0 for maximally dissimilar ones.
"""

from __future__ import annotations

import numpy as np

from ..stats.descriptive import z_normalize
from ..utils.errors import DataError


def dtw_distance(x: np.ndarray, y: np.ndarray, window: int | None = None) -> float:
    """DTW distance with absolute-difference local cost.

    ``window`` optionally applies a Sakoe–Chiba band of that half-width,
    reducing cost to O(n · window).
    """
    xv = np.asarray(x, dtype=np.float64).ravel()
    yv = np.asarray(y, dtype=np.float64).ravel()
    n, m = xv.size, yv.size
    if n == 0 or m == 0:
        raise DataError("DTW of an empty series is undefined")
    if window is not None and window < abs(n - m):
        raise DataError("Sakoe-Chiba window too small to align series ends")

    inf = np.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, inf)
        if window is None:
            lo, hi = 1, m
        else:
            lo = max(1, i - window)
            hi = min(m, i + window)
        xi = xv[i - 1]
        for j in range(lo, hi + 1):
            cost = abs(xi - yv[j - 1])
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return float(prev[m])


def dtw_score(x: np.ndarray, y: np.ndarray, window: int | None = None) -> float:
    """β_DTW of two series (Z-normalized, zero-line normalization).

    Series of different lengths are allowed (DTW aligns them); both are
    Z-normalized first as the paper prescribes.
    """
    xn = z_normalize(np.asarray(x, dtype=np.float64).ravel())
    yn = z_normalize(np.asarray(y, dtype=np.float64).ravel())
    zero_x = np.zeros_like(xn)
    zero_y = np.zeros_like(yn)
    denom = dtw_distance(xn, zero_x, window) + dtw_distance(zero_y, yn, window)
    if denom == 0.0:
        # Both series are constant: identical after Z-normalization.
        return 1.0
    score = 1.0 - dtw_distance(xn, yn, window) / denom
    return float(np.clip(score, 0.0, 1.0))
