"""Standard-technique baselines of §6.4 / Appendix D: PCC, MI, DTW."""

from .dtw import dtw_distance, dtw_score
from .mutual_information import mutual_information_score
from .pearson import pearson_score

__all__ = [
    "pearson_score",
    "mutual_information_score",
    "dtw_distance",
    "dtw_score",
]
