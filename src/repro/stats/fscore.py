"""Precision, recall and the F1 score (relationship strength ρ, §2.3).

The paper models the feature set of one function as a binary classifier for
the feature set of the other: true positives are feature-related points
(Σ = Σ1 ∩ Σ2), false positives are features of f1 not matched in f2, false
negatives are features of f2 not matched in f1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class F1Result:
    """Precision/recall/F1 triple."""

    precision: float
    recall: float
    f1: float


def f1_from_counts(true_positive: int, n_predicted: int, n_actual: int) -> F1Result:
    """F1 from set cardinalities.

    Parameters
    ----------
    true_positive:
        ``|Σ1 ∩ Σ2|``.
    n_predicted:
        ``|Σ1|`` (features of the first function).
    n_actual:
        ``|Σ2|`` (features of the second function).

    All-empty inputs yield zeros rather than dividing by zero: two functions
    with no features are reported as having no relationship strength.
    """
    precision = true_positive / n_predicted if n_predicted else 0.0
    recall = true_positive / n_actual if n_actual else 0.0
    if precision + recall == 0.0:
        return F1Result(precision=precision, recall=recall, f1=0.0)
    f1 = 2.0 * precision * recall / (precision + recall)
    return F1Result(precision=precision, recall=recall, f1=f1)
