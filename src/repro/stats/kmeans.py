"""Exact 1-D two-means clustering.

§3.3 selects salient-feature thresholds by clustering the persistence values
of the extrema into two groups (k-means with k = 2) and keeping the
high-persistence cluster.  In one dimension the optimal 2-means solution is a
single split point of the sorted values, so instead of Lloyd iterations we
scan all n-1 splits with prefix sums and return the split minimizing the
within-cluster sum of squared errors — deterministic and exactly optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.errors import DataError


@dataclass(frozen=True)
class TwoMeansResult:
    """Result of :func:`two_means`.

    Attributes
    ----------
    labels:
        0 for the low cluster, 1 for the high cluster, aligned with the input.
    centers:
        ``(low_mean, high_mean)``.
    split_value:
        Smallest input value assigned to the high cluster.
    inertia:
        Total within-cluster sum of squared errors.
    """

    labels: np.ndarray
    centers: tuple[float, float]
    split_value: float
    inertia: float


def two_means(values: np.ndarray) -> TwoMeansResult:
    """Optimal 1-D 2-means clustering of ``values``.

    Raises
    ------
    DataError
        If fewer than two values are supplied (no split exists).
    """
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size < 2:
        raise DataError("two_means needs at least 2 values")
    order = np.argsort(vals, kind="stable")
    sorted_vals = vals[order]

    prefix = np.concatenate(([0.0], np.cumsum(sorted_vals)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(sorted_vals**2)))
    n = sorted_vals.size

    # Split after position k (low cluster = first k values, k = 1 .. n-1).
    k = np.arange(1, n, dtype=np.float64)
    low_sum = prefix[1:n]
    low_sq = prefix_sq[1:n]
    high_sum = prefix[n] - low_sum
    high_sq = prefix_sq[n] - low_sq
    sse = (low_sq - low_sum**2 / k) + (high_sq - high_sum**2 / (n - k))
    best = int(np.argmin(sse))
    split_after = best + 1

    labels_sorted = np.zeros(n, dtype=np.int64)
    labels_sorted[split_after:] = 1
    labels = np.empty(n, dtype=np.int64)
    labels[order] = labels_sorted

    low_mean = float(low_sum[best] / split_after)
    high_mean = float(high_sum[best] / (n - split_after))
    return TwoMeansResult(
        labels=labels,
        centers=(low_mean, high_mean),
        split_value=float(sorted_vals[split_after]),
        inertia=float(sse[best]),
    )
