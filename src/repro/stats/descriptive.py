"""Small descriptive-statistics helpers shared across the library."""

from __future__ import annotations

import numpy as np

from ..utils.errors import DataError


def z_normalize(values: np.ndarray) -> np.ndarray:
    """Zero-mean unit-variance normalization (constant input -> zeros).

    Used by the normalized DTW baseline (Appendix D), which requires
    Z-normalized series before computing warping distances.
    """
    vals = np.asarray(values, dtype=np.float64)
    std = vals.std()
    if std == 0.0:
        return np.zeros_like(vals)
    return (vals - vals.mean()) / std


def shannon_entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy (nats) of a discrete distribution.

    Zero-probability cells contribute nothing; probabilities must sum to ~1.
    """
    p = np.asarray(probabilities, dtype=np.float64).ravel()
    if p.size == 0:
        raise DataError("entropy of an empty distribution is undefined")
    if (p < 0).any():
        raise DataError("probabilities must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise DataError(f"probabilities must sum to 1 (got {total:.6f})")
    nz = p[p > 0]
    return float(-(nz * np.log(nz)).sum())


def iqr(values: np.ndarray) -> float:
    """Inter-quartile range of ``values``."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size == 0:
        raise DataError("iqr needs at least one value")
    q1, q3 = np.percentile(vals, [25.0, 75.0])
    return float(q3 - q1)
