"""Box-plot statistics: quartiles, IQR and Tukey outlier fences.

§3.3 identifies *extreme* features with the standard box-plot rule: a salient
minimum is extreme if its function value lies below ``Q1 - 1.5 * IQR``; a
salient maximum if above ``Q3 + 1.5 * IQR``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.errors import DataError


@dataclass(frozen=True)
class BoxPlotStats:
    """Quartiles and Tukey fences of a sample."""

    q1: float
    median: float
    q3: float

    @property
    def iqr(self) -> float:
        """Inter-quartile range ``Q3 - Q1``."""
        return self.q3 - self.q1

    def lower_fence(self, k: float = 1.5) -> float:
        """``Q1 - k * IQR`` — values below are outliers (extreme minima)."""
        return self.q1 - k * self.iqr

    def upper_fence(self, k: float = 1.5) -> float:
        """``Q3 + k * IQR`` — values above are outliers (extreme maxima)."""
        return self.q3 + k * self.iqr


def boxplot_stats(values: np.ndarray) -> BoxPlotStats:
    """Compute quartiles of ``values`` (linear interpolation, NaNs rejected)."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size == 0:
        raise DataError("boxplot_stats needs at least one value")
    if np.isnan(vals).any():
        raise DataError("boxplot_stats input contains NaN")
    q1, med, q3 = np.percentile(vals, [25.0, 50.0, 75.0])
    return BoxPlotStats(q1=float(q1), median=float(med), q3=float(q3))
