"""Statistics toolbox: 1-D 2-means, box plots, F-scores, descriptives."""

from .boxplot import BoxPlotStats, boxplot_stats
from .descriptive import iqr, shannon_entropy, z_normalize
from .fscore import F1Result, f1_from_counts
from .kmeans import TwoMeansResult, two_means

__all__ = [
    "BoxPlotStats",
    "boxplot_stats",
    "F1Result",
    "f1_from_counts",
    "TwoMeansResult",
    "two_means",
    "iqr",
    "shannon_entropy",
    "z_normalize",
]
