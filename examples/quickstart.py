"""Quickstart: the Figure 1 scenario — hurricanes, wind speed and taxi trips.

Simulates a city-year, builds the Data Polygamy index over the taxi and
weather data sets, and asks the framework the paper's opening question: *what
might explain the sudden drops in taxi trips?*  The answer — abnormally high
wind speed, i.e. the hurricanes — surfaces through the extreme-feature
channel, exactly as in the paper's motivating example.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Clause, Corpus, SpatialResolution, TemporalResolution
from repro.core.relationship import evaluate_features
from repro.synth import nyc_urban_collection


def ascii_sparkline(values: np.ndarray, width: int = 72) -> str:
    """Render a series as a coarse ASCII sparkline (stand-in for Fig. 1)."""
    bars = " .:-=+*#%@"
    chunks = np.array_split(values, width)
    means = np.array([c.mean() for c in chunks])
    lo, hi = means.min(), means.max()
    scaled = (means - lo) / (hi - lo + 1e-12) * (len(bars) - 1)
    return "".join(bars[int(s)] for s in scaled)


def main() -> None:
    print("Simulating one city-year (taxi + weather)...")
    coll = nyc_urban_collection(seed=7, n_days=365, scale=1.0,
                                subset=("taxi", "weather"))

    print("Indexing: scalar functions, merge trees, salient+extreme features...")
    corpus = Corpus(coll.datasets, coll.city)
    index = corpus.build_index(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )

    key = (SpatialResolution.CITY, TemporalResolution.HOUR)
    taxi = {f.function_id: f for f in index.dataset_index("taxi").functions[key]}
    weather = {f.function_id: f for f in index.dataset_index("weather").functions[key]}
    trips = taxi["taxi.density"]
    wind = weather["weather.avg.wind_speed"]

    print("\nDaily taxi trips (the two big gaps are the hurricanes):")
    print(" ", ascii_sparkline(trips.function.values[:, 0]))
    print("Wind speed (the two spikes are the same hurricanes):")
    print(" ", ascii_sparkline(wind.function.values[:, 0]))

    print("\nExtreme-feature relationship (the Fig. 1 discovery):")
    measures = evaluate_features(
        trips.feature_set("extreme"), wind.feature_set("extreme")
    )
    print(
        f"  taxi.density ~ weather.avg.wind_speed  "
        f"tau = {measures.score:+.2f}, rho = {measures.strength:.2f}, "
        f"|Sigma| = {measures.n_related}"
    )
    print(
        "  -> tau = -1: whenever wind speed is extremely high, the number of\n"
        "     taxi trips is extremely low.  rho is small because trips also\n"
        "     drop on holidays, which have nothing to do with wind."
    )

    print("\nFull relationship query (taxi vs weather, |tau| >= 0.5):")
    result = index.query(
        ["taxi"], ["weather"], clause=Clause(min_score=0.5),
        n_permutations=300, seed=0,
    )
    for rel in result.top(8):
        print("  ", rel.describe())
    print(
        f"\n  evaluated {result.n_evaluated} candidate relationships, "
        f"{result.n_significant} statistically significant "
        f"({result.evaluations_per_minute:,.0f} evaluations/minute)"
    )


if __name__ == "__main__":
    main()
