"""Multi-resolution relationships: snow vs. Citi Bike (paper §6.3).

The paper's example of why relationships must be evaluated at *multiple*
resolutions: snow accumulation closes bike stations, but the effect only
shows after snow piles up — invisible at an hourly time step, clear at a
daily one.  This example evaluates the same function pair at both
resolutions and prints the contrast.

Run:  python examples/multi_resolution.py
"""

from repro import Corpus, SpatialResolution, TemporalResolution
from repro.core.relationship import evaluate_features
from repro.synth import nyc_urban_collection


def measures_at(index, temporal, f1_id, f2_id):
    key = (SpatialResolution.CITY, temporal)
    bike = {f.function_id: f for f in index.dataset_index("citibike").functions[key]}
    weather = {f.function_id: f for f in index.dataset_index("weather").functions[key]}
    f1 = bike[f1_id]
    f2 = weather[f2_id]
    fs1, fs2 = f1.feature_set("salient"), f2.feature_set("salient")
    n = min(fs1.shape[0], fs2.shape[0])
    return evaluate_features(fs1.slice_steps(0, n), fs2.slice_steps(0, n))


def main() -> None:
    print("Simulating a snowy city-year (citibike + weather)...")
    # A winter-heavy window: the simulation's cold season gets snow events.
    coll = nyc_urban_collection(seed=23, n_days=365, scale=1.0,
                                subset=("citibike", "weather"))
    corpus = Corpus(coll.datasets, coll.city)
    index = corpus.build_index(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )

    print("\nActive bike stations vs. snow accumulation (unique station_id):")
    for temporal in (TemporalResolution.HOUR, TemporalResolution.DAY):
        m = measures_at(
            index, temporal, "citibike.unique.station_id", "weather.avg.snow_depth"
        )
        print(
            f"  ({temporal.value:>4s}, city): tau = {m.score:+.2f}, "
            f"rho = {m.strength:.2f}, |Sigma| = {m.n_related}"
        )
    print(
        "  -> the paper's point: accumulation effects only materialize at\n"
        "     the coarser resolution (their example: tau ~ 0 hourly,\n"
        "     tau = -0.88 daily)."
    )

    print("\nBike trip duration vs. snowfall:")
    for temporal in (TemporalResolution.HOUR, TemporalResolution.DAY):
        m = measures_at(
            index, temporal, "citibike.avg.trip_duration", "weather.avg.snow"
        )
        print(
            f"  ({temporal.value:>4s}, city): tau = {m.score:+.2f}, "
            f"rho = {m.strength:.2f}, |Sigma| = {m.n_related}"
        )
    print("  -> trips get longer in the snow (paper: tau = +0.61 at hourly).")


if __name__ == "__main__":
    main()
