"""Bring your own data: CSV round-trip and a relationship query (§5.1-§5.3).

Shows the full external-data workflow: write two spatio-temporal data sets to
CSV, read them back with their schemas (the paper's metadata record), build a
corpus over a custom city model, and query for relationships — no synthetic
generators involved in the modelling path.

Run:  python examples/custom_data.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Clause,
    Corpus,
    Dataset,
    DatasetSchema,
    SpatialResolution,
    TemporalResolution,
)
from repro.data import read_csv, write_csv
from repro.spatial.city import CityModel


def build_city() -> CityModel:
    """A small custom city: 4x4 neighborhoods, 3x3 zips, 10km extent."""
    return CityModel.synthetic(
        name="exampleville", nbhd_grid=(4, 4), zip_grid=(3, 3),
        extent=(0.0, 0.0, 10.0, 10.0),
    )


def build_sensor_data(
    rng: np.random.Generator, n_days: int
) -> tuple[Dataset, np.ndarray]:
    """Hourly city-wide air-quality readings with pollution episodes."""
    n = n_days * 24
    t = np.arange(n)
    aqi = 40 + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 2, n)
    episodes = rng.choice(n - 8, 10, replace=False)
    for e in episodes:
        aqi[e : e + 6] += 60  # pollution episode
    schema = DatasetSchema(
        "air_quality", SpatialResolution.CITY, TemporalResolution.HOUR,
        numeric_attributes=("aqi",),
        description="Hourly air-quality index",
    )
    ds = Dataset(schema, timestamps=t.astype(np.int64) * 3600, numerics={"aqi": aqi})
    return ds, episodes


def build_er_data(rng, n_days, city, episodes) -> Dataset:
    """GPS-stamped emergency-room visits that spike during pollution."""
    n_hours = n_days * 24
    rate = np.full(n_hours, 6.0)
    rate += 3 * np.sin(2 * np.pi * np.arange(n_hours) / 24)
    for e in episodes:
        rate[e : e + 6] *= 3.0  # respiratory admissions spike
    counts = rng.poisson(np.clip(rate, 0.1, None))
    hour_idx = np.repeat(np.arange(n_hours), counts)
    n = hour_idx.size
    schema = DatasetSchema(
        "er_visits", SpatialResolution.GPS, TemporalResolution.SECOND,
        description="Emergency-room visits (GPS-located)",
    )
    return Dataset(
        schema,
        timestamps=hour_idx.astype(np.int64) * 3600 + rng.integers(0, 3600, n),
        x=rng.uniform(0, 10, n),
        y=rng.uniform(0, 10, n),
    )


def main() -> None:
    rng = np.random.default_rng(5)
    city = build_city()
    air, episodes = build_sensor_data(rng, n_days=60)
    er = build_er_data(rng, 60, city, episodes)

    with tempfile.TemporaryDirectory() as tmp:
        # Round-trip through CSV, exactly as external data would arrive.
        air_path = Path(tmp) / "air_quality.csv"
        er_path = Path(tmp) / "er_visits.csv"
        write_csv(air, air_path)
        write_csv(er, er_path)
        print(f"Wrote {air_path.name} ({air.n_records} rows) and "
              f"{er_path.name} ({er.n_records} rows)")
        air = read_csv(air_path, air.schema)
        er = read_csv(er_path, er.schema)

    print("Indexing the two data sets...")
    corpus = Corpus([air, er], city)
    index = corpus.build_index(temporal=(TemporalResolution.HOUR,))

    print("Querying for relationships (alpha = 5%)...")
    result = index.query(clause=Clause(min_score=0.3), n_permutations=300, seed=2)
    for rel in result.results:
        print("  ", rel.describe())
    if result.results:
        print(
            "\n  -> ER visits and air quality are related exactly at the\n"
            "     pollution episodes: a hypothesis generated from raw CSVs."
        )


if __name__ == "__main__":
    main()
