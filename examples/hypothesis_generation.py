"""Hypothesis generation: 'find all data sets related to D' (paper §1, §5.3).

Runs the paper's headline relationship query over the full nine-data-set
urban collection and prints which data sets each one is related to — the
exploration overview a domain expert would start from.  The paper's most
polygamous data set is Weather; the same shows up here.

Run:  python examples/hypothesis_generation.py   (takes a couple of minutes)
"""

from collections import defaultdict

from repro import Clause, Corpus, SpatialResolution, TemporalResolution
from repro.synth import nyc_urban_collection


def main() -> None:
    print("Simulating the nine-data-set NYC Urban replica (120 days)...")
    coll = nyc_urban_collection(seed=7, n_days=120, scale=0.6)
    corpus = Corpus(coll.datasets, coll.city)

    print("Indexing every data set at every viable resolution...")
    index = corpus.build_index(
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK),
    )
    stats = index.stats
    print(
        f"  {stats.n_scalar_functions} scalar functions materialized in "
        f"{stats.scalar_seconds + stats.feature_seconds:.1f}s"
    )

    print("\nRelationship query: find all related data set pairs...")
    result = index.query(clause=Clause(min_score=0.4), n_permutations=200, seed=0)
    print(
        f"  evaluated {result.n_evaluated} relationships, "
        f"{result.n_significant} significant"
    )

    partners: dict[str, set[str]] = defaultdict(set)
    for rel in result.results:
        partners[rel.dataset1].add(rel.dataset2)
        partners[rel.dataset2].add(rel.dataset1)

    print("\nPolygamy report (who is related to whom):")
    for name in sorted(partners, key=lambda n: -len(partners[n])):
        print(f"  {name:16s} <-> {', '.join(sorted(partners[name]))}")

    print("\nStrongest relationships:")
    for rel in result.top(12):
        print("  ", rel.describe())


if __name__ == "__main__":
    main()
