"""Hypothesis testing: why can't you find a taxi in the rain? (paper §1, §6.3)

The long-standing hypothesis: taxi drivers are *target earners* — rain raises
demand, they hit their daily income goal faster and go home early.  The paper
tests it by querying two relationships:

1. taxi availability vs. precipitation  (expected negative), and
2. average fare vs. precipitation       (expected positive — drivers earn
   more per hour when it rains).

Farber's OLS analysis famously found no correlation because it pooled all
hours; Data Polygamy finds both relationships because it compares only the
*salient* periods (actual rainfall episodes) instead of the entire series.

Run:  python examples/hypothesis_testing.py
"""

from repro import Clause, Corpus, SpatialResolution, TemporalResolution
from repro.baselines import pearson_score
from repro.synth import nyc_urban_collection


def main() -> None:
    print("Simulating one city-year (taxi + weather)...")
    coll = nyc_urban_collection(seed=11, n_days=365, scale=1.0,
                                subset=("taxi", "weather"))
    corpus = Corpus(coll.datasets, coll.city)
    index = corpus.build_index(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )

    print("\nQuerying: relationships between taxi and weather...")
    result = index.query(["taxi"], ["weather"], clause=Clause(),
                         n_permutations=300, seed=1)

    def show(f1_fragment: str, f2_fragment: str, label: str) -> None:
        hits = [
            r
            for r in result.results
            if f1_fragment in r.function1 + r.function2
            and f2_fragment in r.function1 + r.function2
        ]
        if not hits:
            print(f"  {label}: no significant relationship found")
            return
        best = max(hits, key=lambda r: abs(r.score))
        print(f"  {label}:")
        print(f"    {best.describe()}")

    print("\nHypothesis 1 — rain makes taxis scarce:")
    show("taxi.density", "precipitation", "trips vs rainfall")
    show("taxi.unique.medallion", "precipitation", "active taxis vs rainfall")

    print("\nHypothesis 2 — drivers earn more per trip when it rains:")
    show("taxi.avg.fare", "precipitation", "average fare vs rainfall")

    # The Farber comparison: a global correlation over every hour misses the
    # relationship that the salient-feature comparison finds.
    key = (SpatialResolution.CITY, TemporalResolution.HOUR)
    taxi = {f.function_id: f for f in index.dataset_index("taxi").functions[key]}
    weather = {f.function_id: f for f in index.dataset_index("weather").functions[key]}
    fare = taxi["taxi.avg.fare"].function.values[:, 0]
    rain = weather["weather.avg.precipitation"].function.values[:, 0]
    n = min(fare.size, rain.size)
    print(
        "\nGlobal Pearson correlation fare~rainfall over all hours "
        f"(the Farber-style analysis): {pearson_score(fare[:n], rain[:n]):+.3f}"
    )
    print(
        "  -> weak, because dry hours dominate the series; the topology-based\n"
        "     comparison isolates the rainfall episodes and reveals the effect."
    )


if __name__ == "__main__":
    main()
