"""Figure 11: relationship pruning at the (week, city) resolution.

The paper counts, as data sets are added, how many of the combinatorially
possible relationships the framework actually reports: significance testing
prunes ~98.6% for NYC Urban and ~98.9% for NYC Open; clause filters
(|tau| >= 0.6 / 0.8) prune further.  We print the same series.  Our corpora
are smaller, so the asserted bound is a conservative >=80% pruning.
"""

from repro.core.corpus import Corpus
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_open_collection
from repro.temporal.resolution import TemporalResolution

WEEK_CITY = dict(spatial=(SpatialResolution.CITY,), temporal=(TemporalResolution.WEEK,))


def _pruning_series(collection, ks, n_permutations=150):
    rows = []
    for k in ks:
        corpus = Corpus(collection.datasets[:k], collection.city)
        index = corpus.build_index(**WEEK_CITY)
        base = index.query(n_permutations=n_permutations, seed=0)
        strict6 = [r for r in base.results if abs(r.score) >= 0.6]
        strict8 = [r for r in base.results if abs(r.score) >= 0.8]
        rows.append(
            (k, base.n_evaluated, base.n_significant, len(strict6), len(strict8))
        )
    return rows


def _print(label, rows):
    print(f"\nFigure 11{label} — pruning at (week, city)")
    print(
        f"{'#data sets':>10s} {'possible':>9s} {'significant':>12s} "
        f"{'tau>=0.6':>9s} {'tau>=0.8':>9s} {'pruned':>8s}"
    )
    for k, possible, sig, s6, s8 in rows:
        pruned = 100.0 * (1 - sig / possible) if possible else 0.0
        print(
            f"{k:>10d} {possible:>9,d} {sig:>12,d} {s6:>9,d} {s8:>9,d} "
            f"{pruned:>7.1f}%"
        )


def test_fig11a_nyc_urban_pruning(benchmark, urban_small, smoke):
    rows = _pruning_series(urban_small, ks=(3, 6, 9),
                           n_permutations=50 if smoke else 150)
    _print("(a) — NYC Urban", rows)
    k, possible, significant, s6, s8 = rows[-1]
    assert possible > 0
    assert significant / possible < 0.2, "at least 80% of candidates pruned"
    assert s8 <= s6 <= significant

    corpus = Corpus(urban_small.datasets, urban_small.city)
    index = corpus.build_index(**WEEK_CITY)
    benchmark.pedantic(
        lambda: index.query(n_permutations=150, seed=0), iterations=1, rounds=3
    )


def test_fig11b_nyc_open_pruning(benchmark, smoke):
    if smoke:
        coll = nyc_open_collection(n_datasets=8, seed=11, n_days=60)
        ks = (4, 8)
    else:
        coll = nyc_open_collection(n_datasets=24, seed=11, n_days=180)
        ks = (8, 16, 24)
    rows = _pruning_series(coll, ks=ks, n_permutations=50 if smoke else 150)
    _print("(b) — NYC Open", rows)
    k, possible, significant, s6, s8 = rows[-1]
    if not smoke:
        assert possible > 100, "the open corpus must offer many possible pairs"
    assert significant / possible < 0.2

    corpus = Corpus(coll.datasets, coll.city)
    index = corpus.build_index(**WEEK_CITY)
    benchmark.pedantic(
        lambda: index.query(n_permutations=150, seed=0), iterations=1, rounds=3
    )
