"""Ablation benches for the design choices DESIGN.md calls out.

1. **Threshold selection**: persistence-k-means thresholds vs. fixed
   quantiles — does the data-driven rule find the planted events with fewer
   feature points?
2. **Restricted vs. naive Monte Carlo**: how anti-conservative is the naive
   test on autocorrelated urban functions (the §6.3 claim that standard MC
   misclassifies)?
3. **Level-set query strategy**: output-sensitive merge-tree traversal vs.
   brute-force vectorized masks across feature densities.
"""

import time

import numpy as np

from repro.core.features import (
    FeatureExtractor,
    query_superlevel,
    superlevel_mask,
)
from repro.core.merge_tree import compute_join_tree
from repro.core.relationship import evaluate_features
from repro.core.scalar_function import ScalarFunction
from repro.core.significance import significance_test
from repro.graph.domain_graph import DomainGraph


def _event_series(seed=0, n=24 * 120):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = 30 + 8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.0, n)
    events = rng.choice(n - 6, 20, replace=False)
    for e in events[:10]:
        values[e : e + 4] += 40
    for e in events[10:]:
        values[e : e + 4] -= 25
    return ScalarFunction.time_series("abl.v", values), events


class QuantileExtractor(FeatureExtractor):
    """Ablation: fixed-quantile thresholds instead of persistence k-means."""

    def __init__(self, q: float = 0.05):
        super().__init__(seasonal=False)
        self.q = q

    def extract(self, function):
        lo, hi = np.quantile(function.values, [self.q, 1 - self.q])
        fs = self.extract_with_thresholds(function, float(hi), float(lo))
        out = super().extract(function)
        out.salient = fs
        return out


def test_ablation_threshold_selection(benchmark):
    sf, events = _event_series()
    kmeans_features = FeatureExtractor().extract(sf).salient

    def hit_rate(fs):
        hits = sum(1 for e in events if fs.union()[e : e + 4, 0].any())
        return hits / len(events)

    print("\nAblation — threshold selection (20 planted events)")
    print(
        f"  persistence k-means (no parameter): "
        f"{kmeans_features.n_features():5d} feature points, "
        f"event recall {hit_rate(kmeans_features):.0%}"
    )
    quantile_counts = []
    for q in (0.01, 0.02, 0.05, 0.10):
        qf = QuantileExtractor(q=q).extract(sf).salient
        quantile_counts.append(qf.n_features())
        print(
            f"  fixed quantile q={q:<5g}:           {qf.n_features():5d} "
            f"feature points, event recall {hit_rate(qf):.0%}"
        )

    assert hit_rate(kmeans_features) >= 0.9, "data-driven rule must find events"
    # The quantile rule's output is dictated by its free parameter — a 10x
    # budget swing across reasonable q — whereas the persistence rule has no
    # parameter at all: the paper's §3.3 motivation.
    assert max(quantile_counts) / max(min(quantile_counts), 1) > 5

    benchmark.pedantic(lambda: FeatureExtractor().extract(sf), iterations=1, rounds=3)


def test_ablation_restricted_vs_naive_mc(benchmark):
    """False-positive rates on independent, block-autocorrelated features."""
    n = 2000
    graph = DomainGraph(1, n)

    def blocky(seed):
        rng = np.random.default_rng(seed)
        pos = np.zeros((n, 1), dtype=bool)
        neg = np.zeros((n, 1), dtype=bool)
        for s in rng.choice(n - 16, 12, replace=False):
            pos[s : s + 16, 0] = True
        for s in rng.choice(n - 16, 12, replace=False):
            neg[s : s + 16, 0] = True
        neg &= ~pos
        from repro.core.features import FeatureSet

        return FeatureSet(pos, neg)

    naive_fp = 0
    restricted_fp = 0
    n_pairs = 12
    for seed in range(n_pairs):
        fs1 = blocky(seed * 2)
        fs2 = blocky(seed * 2 + 1)
        if not evaluate_features(fs1, fs2).is_related:
            continue
        if significance_test(
            fs1, fs2, graph, 99, method="naive", seed=seed
        ).is_significant():
            naive_fp += 1
        if significance_test(fs1, fs2, graph, 99, seed=seed).is_significant():
            restricted_fp += 1

    print("\nAblation — restricted vs. naive Monte Carlo")
    print(f"  independent block-feature pairs tested: {n_pairs}")
    print(f"  naive test false positives:      {naive_fp}")
    print(f"  restricted test false positives: {restricted_fp}")
    assert restricted_fp <= naive_fp, (
        "the restricted test must not be more anti-conservative than naive"
    )

    fs1 = blocky(0)
    fs2 = blocky(1)
    benchmark.pedantic(
        lambda: significance_test(fs1, fs2, graph, 99, seed=0),
        iterations=1,
        rounds=3,
    )


def test_ablation_query_strategies(benchmark):
    """Merge-tree traversal vs. brute-force masks across feature densities."""
    rng = np.random.default_rng(0)
    n = 60_000
    values = rng.normal(0, 1, n)
    sf = ScalarFunction.time_series("abl.q", values)
    join = compute_join_tree(sf.graph, sf.flat_values(), sf.vertex_order(True))

    print("\nAblation — level-set query strategies (60k vertices)")
    print(f"{'threshold':>10s} {'|features|':>11s} {'tree (s)':>9s} {'mask (s)':>9s}")
    for quantile in (0.999, 0.99, 0.9):
        theta = float(np.quantile(values, quantile))
        start = time.perf_counter()
        via_tree = query_superlevel(sf, theta, join)
        tree_s = time.perf_counter() - start
        start = time.perf_counter()
        via_mask = superlevel_mask(sf, theta)
        mask_s = time.perf_counter() - start
        assert np.array_equal(via_tree, via_mask)
        print(
            f"{quantile:>10.3f} {int(via_mask.sum()):>11,d} "
            f"{tree_s:>9.4f} {mask_s:>9.4f}"
        )
    print(
        "  -> the traversal is output-sensitive (cost grows with |features|);"
        "\n     the vectorized mask is flat O(N) — NumPy's constant factor"
        "\n     wins on dense outputs, the index wins asymptotically."
    )

    theta = float(np.quantile(values, 0.999))
    benchmark.pedantic(
        lambda: query_superlevel(sf, theta, join), iterations=1, rounds=3
    )
