"""Figure 7: merge-tree index creation and feature-query time vs. input size.

The paper plots indexing (join + split tree) and feature-query times against
the number of edges of the domain graph for the taxi density function at the
city (1-D) and neighborhood (3-D) resolutions, observing near-linear growth.
We sweep the same two domain shapes over growing sizes and print the series;
the largest neighborhood case is the timed benchmark.

Part (c) extends the figure with index *persistence*: the index is meant to
be built once and queried many times (§5.4 accounts its space overhead for
exactly that reason), so loading a saved index must be far cheaper than
rebuilding it, and the on-disk bytes must reconcile with ``IndexStats``.

Part (d) extends it with index *maintenance*: when a small fraction of the
catalog changes (one data set gains a few days of records), `repro update`
must beat a from-scratch rebuild decisively, because it re-indexes only the
changed (data set, resolution) partitions and splices the rest from disk.
"""

import time

import numpy as np

from repro.core.corpus import Corpus, CorpusIndex
from repro.core.features import query_sublevel, query_superlevel
from repro.core.merge_tree import compute_join_tree, compute_split_tree
from repro.core.scalar_function import ScalarFunction
from repro.graph.domain_graph import DomainGraph
from repro.persist import disk_usage
from repro.spatial.adjacency import grid_adjacency
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution


def make_function(n_regions: int, n_steps: int, seed: int = 0) -> ScalarFunction:
    rng = np.random.default_rng(seed)
    if n_regions == 1:
        pairs = None
    else:
        side = int(np.sqrt(n_regions))
        pairs = grid_adjacency(side, side)
    graph = DomainGraph(n_regions, n_steps, pairs)
    diurnal = 1 + 0.5 * np.sin(2 * np.pi * np.arange(n_steps) / 24)
    values = rng.poisson(20 * diurnal[:, None], (n_steps, n_regions)).astype(float)
    spatial = (
        SpatialResolution.CITY if n_regions == 1 else SpatialResolution.NEIGHBORHOOD
    )
    return ScalarFunction("bench.density", values, graph, spatial,
                          TemporalResolution.HOUR)


def index_and_query(function: ScalarFunction) -> tuple[float, float]:
    """(indexing seconds, querying seconds) for one function."""
    start = time.perf_counter()
    flat = function.flat_values()
    join = compute_join_tree(function.graph, flat, function.vertex_order(True))
    split = compute_split_tree(function.graph, flat, function.vertex_order(False))
    index_seconds = time.perf_counter() - start

    start = time.perf_counter()
    q1, q3 = np.percentile(flat, [25, 75])
    query_superlevel(function, q3, join)
    query_sublevel(function, q1, split)
    query_seconds = time.perf_counter() - start
    return index_seconds, query_seconds


def _print_series(label, rows):
    print(f"\nFigure 7{label}")
    print(f"{'edges':>10s} {'index (s)':>10s} {'query (s)':>10s}")
    for edges, idx, qry in rows:
        print(f"{edges:>10,d} {idx:>10.4f} {qry:>10.4f}")


def test_fig7a_city_resolution_scaling(benchmark, smoke):
    sizes = (500, 1_000, 2_000) if smoke else (2_000, 8_000, 32_000)
    rows = []
    for n_steps in sizes:
        fn = make_function(1, n_steps)
        idx, qry = index_and_query(fn)
        rows.append((fn.graph.n_edges, idx, qry))
    _print_series("(a) — city (1-D time series)", rows)

    if not smoke:  # tiny inputs are timing-jitter dominated
        # Near-linear scaling: 16x edges should cost well under 64x time.
        assert rows[-1][1] / max(rows[0][1], 1e-9) < 16 * 4
    benchmark.pedantic(
        lambda: index_and_query(make_function(1, sizes[-1])),
        iterations=1,
        rounds=2,
    )


def test_fig7b_neighborhood_resolution_scaling(benchmark, smoke):
    shapes = (
        ((2, 200), (4, 400), (4, 800))
        if smoke
        else ((4, 500), (8, 1_000), (8, 4_000))
    )
    rows = []
    for side, n_steps in shapes:
        fn = make_function(side * side, n_steps)
        idx, qry = index_and_query(fn)
        rows.append((fn.graph.n_edges, idx, qry))
    _print_series("(b) — neighborhood (3-D)", rows)

    if not smoke:
        edges_ratio = rows[-1][0] / rows[0][0]
        time_ratio = rows[-1][1] / max(rows[0][1], 1e-9)
        assert time_ratio < edges_ratio * 4, "indexing must stay near-linear"
    side, n_steps = shapes[-1]
    benchmark.pedantic(
        lambda: index_and_query(make_function(side * side, n_steps)),
        iterations=1,
        rounds=2,
    )


def test_fig7c_persistence_load_vs_rebuild(benchmark, smoke, tmp_path):
    """Loading a saved corpus index must beat rebuilding it decisively.

    The bar is >= 5x at full scale.  Under ``--smoke`` the bar is >= 2x:
    the array-union-find merge-tree sweep (PR 3) made *rebuilding* ~3.5x
    faster, so on smoke-sized collections — where fixed per-partition
    overheads dominate the load path — the rebuild is now only a few
    multiples slower than the load, while the full-scale gap keeps growing
    with data volume.
    """
    n_days, scale = (60, 0.25) if smoke else (120, 0.5)
    coll = nyc_urban_collection(
        seed=13, n_days=n_days, scale=scale, subset=("taxi", "weather")
    )
    corpus = Corpus(coll.datasets, coll.city)
    kwargs = dict(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )

    start = time.perf_counter()
    index = corpus.build_index(**kwargs)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    index.save(tmp_path)
    save_seconds = time.perf_counter() - start

    # Best of three: a single sample is at the mercy of noisy shared CI
    # runners, and one disk stall must not fail the job.
    load_samples = []
    for _ in range(3):
        start = time.perf_counter()
        loaded = CorpusIndex.load(tmp_path)
        load_samples.append(time.perf_counter() - start)
    load_seconds = min(load_samples)

    usage = disk_usage(tmp_path)
    print("\nFigure 7(c) — persisted index: load vs. rebuild")
    print(f"{'build (s)':>10s} {'save (s)':>10s} {'load (s)':>10s} {'speedup':>8s}")
    print(
        f"{build_seconds:>10.3f} {save_seconds:>10.3f} {load_seconds:>10.3f} "
        f"{build_seconds / max(load_seconds, 1e-9):>7.1f}x"
    )
    print(
        f"on disk: {usage.total_bytes:,} B total "
        f"({usage.function_bytes:,} B functions, "
        f"{usage.feature_bytes:,} B packed features)"
    )

    # §5.4 reconciliation: uncompressed on-disk arrays == in-memory counters.
    assert usage.function_bytes == index.stats.function_bytes
    assert usage.feature_bytes == index.stats.feature_bytes
    assert loaded.stats == index.stats
    # The acceptance bar: persistence must make repeated use cheap.
    required = 2 if smoke else 5
    assert load_seconds * required <= build_seconds, (
        f"loading ({load_seconds:.3f}s) must be >= {required}x faster than "
        f"rebuilding ({build_seconds:.3f}s)"
    )
    benchmark.pedantic(lambda: CorpusIndex.load(tmp_path), iterations=1, rounds=3)


def test_fig7d_incremental_update_vs_rebuild(smoke, tmp_path, write_bench_record):
    """`repro update` vs. from-scratch rebuild when <25% of partitions change.

    Six data sets, city resolution, hour + day: 12 partitions.  One data set
    (calls_911) gains extra days — 2/12 ≈ 17% of partitions change — and the
    incremental update must be >= 3x faster than rebuild + save at full
    scale (>= 1.5x under --smoke, where fixed planning/linking overheads
    weigh more).  The updated index is also verified to carry the same §5.4
    counters as the rebuilt one, so the speedup is never bought with drift.
    """
    from repro.incremental import apply_update

    n_days, scale = (45, 0.25) if smoke else (120, 0.5)
    subset = (
        "collisions",
        "complaints_311",
        "calls_911",
        "citibike",
        "weather",
        "taxi",
    )
    coll = nyc_urban_collection(seed=21, n_days=n_days, scale=scale, subset=subset)
    extended = nyc_urban_collection(
        seed=21,
        n_days=n_days + max(7, n_days // 8),
        scale=scale,
        subset=("calls_911",),
    )
    kwargs = dict(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )
    index_dir = tmp_path / "idx"

    start = time.perf_counter()
    corpus = Corpus(coll.datasets, coll.city)
    index = corpus.build_index(**kwargs)
    index.save(index_dir)
    initial_seconds = time.perf_counter() - start

    mutated = [
        extended.dataset("calls_911") if ds.name == "calls_911" else ds
        for ds in coll.datasets
    ]
    corpus2 = Corpus(mutated, coll.city)

    start = time.perf_counter()
    report = apply_update(index_dir, corpus2, **kwargs)
    update_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rebuilt = corpus2.build_index(**kwargs)
    rebuilt.save(tmp_path / "scratch")
    rebuild_seconds = time.perf_counter() - start

    n_partitions = report.n_reused + report.n_rebuilt + report.n_added
    changed_fraction = (report.n_rebuilt + report.n_added) / n_partitions
    speedup = rebuild_seconds / max(update_seconds, 1e-9)

    print("\nFigure 7(d) — incremental update vs. from-scratch rebuild")
    print(
        f"{'initial (s)':>12s} {'rebuild (s)':>12s} {'update (s)':>11s} "
        f"{'changed':>8s} {'speedup':>8s}"
    )
    print(
        f"{initial_seconds:>12.3f} {rebuild_seconds:>12.3f} "
        f"{update_seconds:>11.3f} {changed_fraction:>7.0%} {speedup:>7.1f}x"
    )
    print(
        f"reused {report.n_reused} partition(s) "
        f"({report.bytes_reused:,} B untouched), "
        f"rewrote {report.bytes_rewritten:,} B"
    )

    write_bench_record(
        "fig7d_incremental",
        {
            "n_partitions": n_partitions,
            "changed_fraction": changed_fraction,
            "initial_build_seconds": initial_seconds,
            "rebuild_seconds": rebuild_seconds,
            "update_seconds": update_seconds,
            "speedup": speedup,
            "partitions_reused": report.n_reused,
            "bytes_reused": report.bytes_reused,
            "bytes_rewritten": report.bytes_rewritten,
        },
    )

    # Correctness alongside speed: the spliced index carries exactly the
    # §5.4 counters of the rebuilt one.
    updated = CorpusIndex.load(index_dir)
    assert updated.stats.n_scalar_functions == rebuilt.stats.n_scalar_functions
    assert updated.stats.function_bytes == rebuilt.stats.function_bytes
    assert updated.stats.feature_bytes == rebuilt.stats.feature_bytes

    assert changed_fraction < 0.25, "scenario must change <25% of partitions"
    required = 1.5 if smoke else 3.0
    assert speedup >= required, (
        f"incremental update ({update_seconds:.3f}s) must be >= {required}x "
        f"faster than rebuilding ({rebuild_seconds:.3f}s)"
    )
