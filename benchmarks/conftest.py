"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md §2 for the index and EXPERIMENTS.md for the
paper-vs-measured record).  Benchmarks print their rows/series, so run with
``pytest benchmarks/ --benchmark-only -s`` to see the reproduced output.
"""

import pytest

from repro.core.corpus import Corpus
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution


@pytest.fixture(scope="session")
def urban_year():
    """One simulated city-year of the NYC Urban replica (all nine data sets)."""
    return nyc_urban_collection(seed=7, n_days=365, scale=1.0)


@pytest.fixture(scope="session")
def urban_year_index(urban_year):
    """City-resolution hourly/daily index over the year (the workhorse)."""
    corpus = Corpus(urban_year.datasets, urban_year.city)
    return corpus.build_index(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )


@pytest.fixture(scope="session")
def urban_small():
    """A smaller collection for performance sweeps (120 days, 0.5x volume)."""
    return nyc_urban_collection(seed=13, n_days=120, scale=0.5)
