"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md §2 for the index and EXPERIMENTS.md for the
paper-vs-measured record).  Benchmarks print their rows/series, so run with
``pytest benchmarks/ --benchmark-only -s`` to see the reproduced output.

Smoke mode.  ``pytest benchmarks/ --smoke`` shrinks every collection and
permutation count so the full suite executes end-to-end in seconds — the CI
benchmark job runs exactly that.  Assertions that only hold at full scale
are relaxed or skipped under smoke; the point of the smoke run is to prove
every benchmark still executes, not to re-validate the paper's numbers.
"""

import json
import os
import platform
from pathlib import Path

import pytest
from _host import host_info, usable_cpus

from repro import obs
from repro.core.corpus import Corpus
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="tiny collections + few permutations so every benchmark "
        "finishes in seconds (used by CI)",
    )


#: Effectiveness benchmarks validate *what* the framework finds (planted
#: NYC relationships); those signals only exist at full collection scale,
#: so smoke runs skip them rather than assert on starved data.
_FULL_SCALE_ONLY = (
    "bench_sec63_effectiveness.py",
    "bench_sec64_standard_techniques.py",
)


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--smoke"):
        return
    skip = pytest.mark.skip(
        reason="effectiveness assertions need the full-scale collection"
    )
    for item in items:
        if item.path.name in _FULL_SCALE_ONLY:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def smoke(request):
    """True when the run should use tiny inputs (CI smoke job)."""
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def write_bench_record(smoke):
    """Writer for ``BENCH_<name>.json`` speedup/throughput records.

    Records land in ``$BENCH_DIR`` (default: the working directory, which is
    where CI's ``BENCH_*.json`` artifact glob collects them) and carry enough
    host context — CPU budget, Python version, smoke flag — to interpret a
    measured speedup per commit.  Every record also embeds the full
    ``_host.host_info()`` provenance block and the process metrics snapshot
    at write time (query latency histograms, retry/fault counters), so a
    perf-trajectory diff can tell "the code got slower" apart from "the run
    retried its way through a flaky box".
    """

    def write(name: str, record: dict) -> Path:
        payload = {
            "benchmark": name,
            "python": platform.python_version(),
            "usable_cpus": usable_cpus(),
            "smoke": smoke,
            "host": host_info(),
            "metrics": obs.metrics_snapshot(),
            **record,
        }
        path = Path(os.environ.get("BENCH_DIR", ".")) / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\n[bench-record] wrote {path}")
        return path

    return write


@pytest.fixture(scope="session")
def urban_year(smoke):
    """One simulated city-year of the NYC Urban replica (all nine data sets).

    Under ``--smoke`` this shrinks to two months at quarter volume.
    """
    if smoke:
        return nyc_urban_collection(seed=7, n_days=60, scale=0.25)
    return nyc_urban_collection(seed=7, n_days=365, scale=1.0)


@pytest.fixture(scope="session")
def urban_year_index(urban_year):
    """City-resolution hourly/daily index over the year (the workhorse)."""
    corpus = Corpus(urban_year.datasets, urban_year.city)
    return corpus.build_index(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )


@pytest.fixture(scope="session")
def urban_small(smoke):
    """A smaller collection for performance sweeps (120 days, 0.5x volume)."""
    if smoke:
        return nyc_urban_collection(seed=13, n_days=45, scale=0.25)
    return nyc_urban_collection(seed=13, n_days=120, scale=0.5)
