"""Figure 10: speedup of the three framework components vs. cluster size.

The paper measures map-reduce speedups on AWS clusters of growing size and
observes: near-linear scaling for scalar-function computation, lower speedup
for feature identification and relationship evaluation due to straggler
reducers handling the highest-resolution functions.

We reproduce the measurement protocol with the simulated cluster (see
DESIGN.md §1.3): every task's wall time is measured in a real single-process
run of the three jobs, then replayed through a Hadoop-style greedy scheduler
for each cluster size; the speedup is T1 / Tn.  Stragglers emerge naturally
from the heterogeneous per-task times.
"""

import pytest

from repro.mapreduce.cluster import speedup_curve, straggler_ratio
from repro.mapreduce.pipeline import PolygamyPipeline
from repro.temporal.resolution import TemporalResolution

NODE_COUNTS = [1, 2, 4, 8, 16, 20]


@pytest.fixture(scope="module")
def pipeline_run(urban_small, smoke):
    pipeline = PolygamyPipeline(urban_small.city, chunks_per_dataset=8)
    return pipeline.run(
        urban_small.datasets,
        n_permutations=20 if smoke else 60,
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK),
        seed=0,
    )


def test_fig10_speedup_curves(pipeline_run, benchmark, smoke):
    curves = {
        "scalar functions": speedup_curve(pipeline_run.scalar_stats, NODE_COUNTS),
        "feature identification": speedup_curve(
            pipeline_run.feature_stats, NODE_COUNTS
        ),
        "relationships": speedup_curve(
            pipeline_run.relationship_stats, NODE_COUNTS
        ),
    }
    print("\nFigure 10 — speedup vs. number of nodes (simulated cluster)")
    print(f"{'component':>24s} " + " ".join(f"n={n:<5d}" for n in NODE_COUNTS))
    for name, curve in curves.items():
        print(
            f"{name:>24s} "
            + " ".join(f"{curve[n]:<7.2f}" for n in NODE_COUNTS)
        )
    print(
        "straggler ratios: "
        f"scalar={straggler_ratio(pipeline_run.scalar_stats.map_task_seconds):.1f}, "
        "features="
        f"{straggler_ratio(pipeline_run.feature_stats.reduce_task_seconds):.1f}, "
        "relationships="
        f"{straggler_ratio(pipeline_run.relationship_stats.reduce_task_seconds):.1f}"
    )

    for curve in curves.values():
        # Monotone non-decreasing speedup in cluster size.
        values = [curve[n] for n in NODE_COUNTS]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert abs(curve[1] - 1.0) < 1e-9
    # The paper's key observation: the event-driven phases scale worse than
    # scalar-function computation because straggler reducers dominate.
    # (Skipped under smoke: tiny task times make the comparison jittery.)
    if not smoke:
        assert (
            curves["scalar functions"][20] >= curves["relationships"][20] - 1e-9
        )

    benchmark.pedantic(
        lambda: speedup_curve(pipeline_run.feature_stats, NODE_COUNTS),
        iterations=5,
        rounds=3,
    )
