"""Figure 10: speedup of the three framework components vs. cluster size.

The paper measures map-reduce speedups on AWS clusters of growing size and
observes: near-linear scaling for scalar-function computation, lower speedup
for feature identification and relationship evaluation due to straggler
reducers handling the highest-resolution functions.

Two reproductions of that protocol live here:

* **Simulated** (``test_fig10_speedup_curves``): every task's wall time is
  measured in a real single-process run of the three jobs, then replayed
  through a Hadoop-style greedy scheduler for each cluster size; the
  speedup is T1 / Tn.  Stragglers emerge naturally from the heterogeneous
  per-task times.
* **Measured** (``test_fig10b_measured_cluster_speedup``): the same
  indexing workload runs on *real* clusters of 1/2/4 localhost worker
  processes (``repro.distributed.local_cluster``), wall-clocked end to end
  and checked bit-identical to serial.  Measured and simulated speedups are
  reported side by side and recorded to
  ``BENCH_fig10_measured_speedup.json``.  On a single-CPU host the measured
  curve is flat (localhost workers share one core — the honest result); the
  benchmark then logs a visible notice — "usable_cpus=1 — flat curve
  expected, speedup floor not asserted" — in both the console output and
  the JSON record, and only sanity bounds apply.  With >= 2 usable CPUs the
  speedup floor is asserted: 2 hosts must beat 1 host by more than 1.5x.
"""

import time

import numpy as np
import pytest

from _host import usable_cpus
from repro.core.corpus import Corpus
from repro.mapreduce.cluster import (
    overlapped_makespan,
    speedup_curve,
    straggler_ratio,
)
from repro.mapreduce.pipeline import PolygamyPipeline
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution

NODE_COUNTS = [1, 2, 4, 8, 16, 20]

#: Real localhost clusters raced by the measured experiment.
MEASURED_HOSTS = (1, 2, 4)

#: Seed of the measured experiment's collection (committed in the record).
MEASURED_SEED = 13


@pytest.fixture(scope="module")
def pipeline_run(urban_small, smoke):
    pipeline = PolygamyPipeline(urban_small.city, chunks_per_dataset=8)
    return pipeline.run(
        urban_small.datasets,
        n_permutations=20 if smoke else 60,
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK),
        seed=0,
    )


def test_fig10_speedup_curves(pipeline_run, benchmark, smoke):
    curves = {
        "scalar functions": speedup_curve(pipeline_run.scalar_stats, NODE_COUNTS),
        "feature identification": speedup_curve(
            pipeline_run.feature_stats, NODE_COUNTS
        ),
        "relationships": speedup_curve(
            pipeline_run.relationship_stats, NODE_COUNTS
        ),
    }
    print("\nFigure 10 — speedup vs. number of nodes (simulated cluster)")
    print(f"{'component':>24s} " + " ".join(f"n={n:<5d}" for n in NODE_COUNTS))
    for name, curve in curves.items():
        print(f"{name:>24s} " + " ".join(f"{curve[n]:<7.2f}" for n in NODE_COUNTS))
    print(
        "straggler ratios: "
        f"scalar={straggler_ratio(pipeline_run.scalar_stats.map_task_seconds):.1f}, "
        "features="
        f"{straggler_ratio(pipeline_run.feature_stats.reduce_task_seconds):.1f}, "
        "relationships="
        f"{straggler_ratio(pipeline_run.relationship_stats.reduce_task_seconds):.1f}"
    )

    for curve in curves.values():
        # Monotone non-decreasing speedup in cluster size.
        values = [curve[n] for n in NODE_COUNTS]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert abs(curve[1] - 1.0) < 1e-9
    # The paper's key observation: the event-driven phases scale worse than
    # scalar-function computation because straggler reducers dominate.
    # (Skipped under smoke: tiny task times make the comparison jittery.)
    if not smoke:
        assert curves["scalar functions"][20] >= curves["relationships"][20] - 1e-9

    benchmark.pedantic(
        lambda: speedup_curve(pipeline_run.feature_stats, NODE_COUNTS),
        iterations=5,
        rounds=3,
    )


def _assert_index_identical(reference, other):
    assert reference.stats.n_scalar_functions == other.stats.n_scalar_functions
    for name, ds_ref in reference.datasets.items():
        ds_other = other.datasets[name]
        assert list(ds_ref.functions) == list(ds_other.functions)
        for key, fns in ds_ref.functions.items():
            for fn_r, fn_o in zip(fns, ds_other.functions[key]):
                assert fn_r.function_id == fn_o.function_id
                assert np.array_equal(fn_r.function.values, fn_o.function.values)


def test_fig10b_measured_cluster_speedup(smoke, write_bench_record):
    """Measured multi-host speedups next to the simulated ones.

    The workload is hour-resolution indexing (merge-tree bound — the
    component whose scaling Fig. 10 studies) of a small urban collection.
    One serial run anchors the baseline and donates its per-task timings to
    the simulated scheduler; then real clusters of 1/2/4 localhost workers
    run the identical build, each checked bit-identical to serial.
    """
    from repro.distributed import local_cluster

    coll = nyc_urban_collection(
        seed=MEASURED_SEED,
        n_days=20 if smoke else 60,
        scale=0.25,
        subset=("taxi", "weather", "collisions"),
    )
    corpus = Corpus(coll.datasets, coll.city)
    temporal = (TemporalResolution.HOUR,)

    start = time.perf_counter()
    serial_index = corpus.build_index(temporal=temporal)
    serial_seconds = time.perf_counter() - start
    simulated = speedup_curve(serial_index.job_stats, list(MEASURED_HOSTS))
    # The same replay under the v2 streaming scheduler's model (the shuffle
    # fold hides behind the map wave) — what the cluster backend actually runs.
    simulated_overlapped = speedup_curve(
        serial_index.job_stats, list(MEASURED_HOSTS), makespan=overlapped_makespan
    )

    measured_seconds: dict[int, float] = {}
    for n_hosts in MEASURED_HOSTS:
        with local_cluster(n_hosts) as engine:
            start = time.perf_counter()
            cluster_index = corpus.build_index(temporal=temporal, engine=engine)
            measured_seconds[n_hosts] = time.perf_counter() - start
        _assert_index_identical(serial_index, cluster_index)

    measured = {n: measured_seconds[1] / measured_seconds[n] for n in MEASURED_HOSTS}
    cpus = usable_cpus()
    notice = (
        f"usable_cpus={cpus} — flat curve expected, speedup floor not asserted"
        if cpus < 2
        else None
    )
    print(
        f"\nFigure 10(b) — measured cluster speedup vs. simulated "
        f"({cpus} usable CPU(s), serial build {serial_seconds:.2f}s)"
    )
    print(
        f"{'hosts':>6s} {'wall (s)':>9s} {'measured':>9s} "
        f"{'sim barrier':>12s} {'sim overlap':>12s}"
    )
    for n in MEASURED_HOSTS:
        print(
            f"{n:>6d} {measured_seconds[n]:>9.2f} {measured[n]:>8.2f}x "
            f"{simulated[n]:>11.2f}x {simulated_overlapped[n]:>11.2f}x"
        )
    if notice:
        print(f"NOTICE: {notice}")

    record = {
        "figure": "10b",
        "seed": MEASURED_SEED,
        "hosts": list(MEASURED_HOSTS),
        "n_scalar_functions": serial_index.stats.n_scalar_functions,
        "serial_seconds": round(serial_seconds, 4),
        "measured_seconds": {
            str(n): round(measured_seconds[n], 4) for n in MEASURED_HOSTS
        },
        "measured_speedup": {
            str(n): round(measured[n], 3) for n in MEASURED_HOSTS
        },
        "simulated_speedup": {
            str(n): round(simulated[n], 3) for n in MEASURED_HOSTS
        },
        "simulated_overlapped_speedup": {
            str(n): round(simulated_overlapped[n], 3) for n in MEASURED_HOSTS
        },
        "bit_identical": True,
    }
    if notice:
        record["notice"] = notice
    write_bench_record("fig10_measured_speedup", record)

    # A 1-host cluster is serial execution plus dispatch overhead: it must
    # land in the same ballpark as the serial build (a pathologically slow
    # backend — e.g. artifacts re-shipped per task — would blow this up).
    assert measured_seconds[1] < serial_seconds * 5 + 2.0, (
        f"1-host cluster took {measured_seconds[1]:.2f}s vs "
        f"{serial_seconds:.2f}s serial — dispatch overhead is pathological"
    )
    # Real parallelism needs real cores: with >= 2 usable CPUs, two hosts
    # must beat one host by more than 1.5x on the same workload (the
    # acceptance bar for the streaming scheduler).  On one CPU the curve is
    # honestly flat — the NOTICE above says so — and only sanity bounds apply.
    if cpus >= 2:
        assert measured[2] > 1.5, (
            f"2 hosts measured {measured[2]:.2f}x vs 1 host with {cpus} "
            "usable CPUs — the streaming scheduler should clear 1.5x"
        )
    else:
        assert measured[2] > 0.5  # no pathological slowdown either
