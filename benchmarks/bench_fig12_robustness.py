"""Figure 12 (+ Appendix Figures I-III): robustness to bounded Gaussian noise.

The paper fixes a scalar function f, adds Gaussian noise bounded by a
fraction of its IQR to every spatio-temporal point to obtain f*, and
evaluates the relationship between f and f*: the score stays at 1 up to ~2%
noise and remains strongly positive to 10%, because persistence-based
thresholds are stable under small perturbations.

Figure 12 uses the taxi density function; Appendix Figures I-III repeat the
sweep for the unique-taxis, average-miles and average-fare functions.
"""

import pytest

from repro.core.features import FeatureExtractor
from repro.core.relationship import evaluate_features
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution

NOISE_LEVELS = (0.01, 0.02, 0.05, 0.10)
KEY = (SpatialResolution.CITY, TemporalResolution.HOUR)


def robustness_sweep(function, extractor=None):
    extractor = extractor or FeatureExtractor()
    clean = extractor.extract(function).salient
    rows = []
    for level in NOISE_LEVELS:
        noisy = function.with_noise(level, seed=int(level * 10_000))
        measures = evaluate_features(clean, extractor.extract(noisy).salient)
        rows.append((level, measures.score, measures.strength))
    return rows


def _print(function_id, rows):
    print(f"\nRobustness of {function_id} (score/strength vs. noise level)")
    print(f"{'noise':>7s} {'tau':>7s} {'rho':>7s}")
    for level, tau, rho in rows:
        print(f"{level:>6.0%} {tau:>7.2f} {rho:>7.2f}")


def _function(index, dataset, function_id):
    fns = {f.function_id: f for f in index.dataset_index(dataset).functions[KEY]}
    return fns[function_id].function


def test_fig12_taxi_density_robustness(urban_year_index, benchmark, smoke):
    fn = _function(urban_year_index, "taxi", "taxi.density")
    rows = robustness_sweep(fn)
    _print("taxi.density (Figure 12)", rows)
    by_level = dict((lvl, (tau, rho)) for lvl, tau, rho in rows)
    if smoke:  # short series: only the qualitative shape is stable
        assert by_level[0.01][0] > 0.5
    else:
        assert by_level[0.01][0] > 0.95, "tau ~ 1 at 1% noise"
        assert by_level[0.02][0] > 0.9, "tau ~ 1 at 2% noise (paper: stays 1)"
        assert by_level[0.10][0] > 0.5, "still strongly positive at 10% noise"
        assert by_level[0.01][1] > 0.5, "strength stays high at small noise"

    extractor = FeatureExtractor()
    benchmark.pedantic(lambda: robustness_sweep(fn, extractor), iterations=1, rounds=2)


@pytest.mark.parametrize(
    "function_id,figure",
    [
        ("taxi.unique.medallion", "Figure I"),
        ("taxi.avg.miles", "Figure II"),
        ("taxi.avg.fare", "Figure III"),
    ],
)
def test_appendix_robustness(urban_year_index, benchmark, function_id, figure, smoke):
    fn = _function(urban_year_index, "taxi", function_id)
    rows = robustness_sweep(fn)
    _print(f"{function_id} ({figure})", rows)
    if not smoke:
        assert rows[0][1] > 0.8, "tau stays near 1 at 1% noise"
        assert all(tau > 0.0 for _, tau, _ in rows), "positive throughout the sweep"
    benchmark.pedantic(lambda: robustness_sweep(fn), iterations=1, rounds=1)
