"""Figure 8: indexing + feature-identification time vs. number of data sets.

The paper plots scalar-function-computation time and feature-identification
time as the collection grows, for NYC Urban (a) and NYC Open (b), annotating
the number of computations.  We rebuild the index over growing prefixes of
each collection and print both phases; the paper's qualitative observations
are asserted: adding the taxi data set dominates the Urban cost, and for the
Open collection feature identification outweighs scalar-function computation.
``test_fig8c_parallel_indexing`` re-runs the Urban build through the
map-reduce engine with four threads and checks the parallel index is
bit-identical to the serial one (the §5.4 deployment argument).
``test_fig8d_executor_comparison`` races all three executors on the same
build — indexing is dominated by the pure-Python merge-tree sweeps, the
workload the process executor exists for — and records the measured
speedups as a ``BENCH_*.json`` artifact.
"""

import time

import numpy as np

from _host import usable_cpus
from repro.core.corpus import Corpus
from repro.synth import URBAN_DATASETS, nyc_open_collection
from repro.temporal.resolution import TemporalResolution

COMPARISON_WORKERS = 4


def test_fig8a_nyc_urban(benchmark, urban_small, smoke):
    rows = []
    for k in range(1, len(URBAN_DATASETS) + 1):
        subset = urban_small.datasets[:k]
        corpus = Corpus(subset, urban_small.city)
        index = corpus.build_index(
            temporal=(TemporalResolution.DAY, TemporalResolution.WEEK)
        )
        rows.append(
            (
                k,
                index.stats.n_scalar_functions,
                index.stats.scalar_seconds,
                index.stats.feature_seconds,
            )
        )
    print("\nFigure 8(a) — NYC Urban: indexing time vs. number of data sets")
    print(
        f"{'#data sets':>10s} {'#functions':>11s}"
        f" {'scalar (s)':>11s} {'features (s)':>13s}"
    )
    for k, n_fns, scalar_s, feature_s in rows:
        print(f"{k:>10d} {n_fns:>11d} {scalar_s:>11.3f} {feature_s:>13.3f}")

    # The paper observes two jumps: data volume (taxi) drives the time, and
    # attribute count (weather, 228 attrs) drives the computation count.
    # Wall-clock jitter makes time-based argmax assertions flaky, so the
    # checks anchor on the deterministic computation counts plus a soft
    # monotonicity condition on the time series itself.
    # (The paper's weather data set also jumps the count via its 228
    # attributes; our replica keeps 8 core attributes — pass
    # weather_extra_attributes to reproduce that profile too.)
    function_counts = [r[1] for r in rows]
    count_jumps = [b - a for a, b in zip(function_counts, function_counts[1:])]
    taxi_count_jump = count_jumps[URBAN_DATASETS.index("taxi") - 1]
    assert taxi_count_jump == max(count_jumps), (
        "taxi (7 functions x 6 resolutions) adds the most computations"
    )
    # Each row is an independent rebuild, so per-row wall times carry jitter;
    # the robust claim is that the full corpus costs more than a small prefix.
    if not smoke:
        scalar_times = [r[2] for r in rows]
        assert scalar_times[-1] > scalar_times[0], (
            "indexing the full corpus costs more than indexing one data set"
        )

    corpus = Corpus(urban_small.datasets, urban_small.city)
    benchmark.pedantic(
        lambda: corpus.build_index(temporal=(TemporalResolution.WEEK,)),
        iterations=1,
        rounds=2,
    )


def test_fig8b_nyc_open(benchmark, smoke):
    if smoke:
        coll = nyc_open_collection(n_datasets=8, seed=11, n_days=30)
        ks = (4, 8)
    else:
        coll = nyc_open_collection(n_datasets=24, seed=11, n_days=120)
        ks = (6, 12, 18, 24)
    rows = []
    for k in ks:
        corpus = Corpus(coll.datasets[:k], coll.city)
        index = corpus.build_index()
        rows.append(
            (
                k,
                index.stats.n_scalar_functions,
                index.stats.scalar_seconds,
                index.stats.feature_seconds,
            )
        )
    print("\nFigure 8(b) — NYC Open: indexing time vs. number of data sets")
    print(
        f"{'#data sets':>10s} {'#functions':>11s}"
        f" {'scalar (s)':>11s} {'features (s)':>13s}"
    )
    for k, n_fns, scalar_s, feature_s in rows:
        print(f"{k:>10d} {n_fns:>11d} {scalar_s:>11.3f} {feature_s:>13.3f}")

    # Paper: for NYC Open, feature identification dominates because the data
    # sets are small (little aggregation work) but every function still needs
    # its merge trees.
    if not smoke:
        total_scalar = rows[-1][2]
        total_features = rows[-1][3]
        assert total_features > total_scalar

    corpus = Corpus(coll.datasets[: ks[-1] // 2], coll.city)
    benchmark.pedantic(lambda: corpus.build_index(), iterations=1, rounds=2)


def test_fig8c_parallel_indexing(benchmark, urban_small):
    """Serial vs. 4-thread map-reduce indexing: identical index, lower wall."""
    corpus = Corpus(urban_small.datasets, urban_small.city)
    temporal = (TemporalResolution.DAY, TemporalResolution.WEEK)

    start = time.perf_counter()
    serial = corpus.build_index(temporal=temporal)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = corpus.build_index(temporal=temporal, n_workers=4, executor="thread")
    parallel_seconds = time.perf_counter() - start

    assert serial.stats.n_scalar_functions == parallel.stats.n_scalar_functions
    assert serial.stats.n_feature_sets == parallel.stats.n_feature_sets
    for name, ds_serial in serial.datasets.items():
        ds_parallel = parallel.datasets[name]
        assert list(ds_serial.functions) == list(ds_parallel.functions)
        for key, fns in ds_serial.functions.items():
            for fn_s, fn_p in zip(fns, ds_parallel.functions[key]):
                assert fn_s.function_id == fn_p.function_id
                assert np.array_equal(fn_s.function.values, fn_p.function.values)

    print(
        "\nFigure 8(c) — parallel indexing (thread, 4 workers)\n"
        f"serial: {serial_seconds:.2f}s  parallel: {parallel_seconds:.2f}s  "
        f"({parallel.job_stats.n_map_chunks} map chunks)"
    )
    benchmark.pedantic(
        lambda: corpus.build_index(
            temporal=temporal, n_workers=4, executor="thread"
        ),
        iterations=1,
        rounds=2,
    )


def _assert_index_identical(reference, other):
    assert reference.stats.n_scalar_functions == other.stats.n_scalar_functions
    for name, ds_ref in reference.datasets.items():
        ds_other = other.datasets[name]
        assert list(ds_ref.functions) == list(ds_other.functions)
        for key, fns in ds_ref.functions.items():
            for fn_r, fn_o in zip(fns, ds_other.functions[key]):
                assert fn_r.function_id == fn_o.function_id
                assert np.array_equal(fn_r.function.values, fn_o.function.values)


def test_fig8d_executor_comparison(benchmark, urban_small, write_bench_record):
    """Serial vs thread vs process indexing: identical index, who is fastest.

    Hour resolution makes the build merge-tree-bound (feature identification
    is >90% of the wall time), i.e. pure-Python work the thread executor
    cannot overlap — exactly the gap the process executor closes.  The
    measured wall times and speedups are recorded to
    ``BENCH_fig8d_executor_comparison.json`` for the per-commit perf
    trajectory.
    """
    corpus = Corpus(urban_small.datasets, urban_small.city)
    temporal = (TemporalResolution.HOUR,)

    def best_of_two(**kwargs):
        runs = []
        for _ in range(2):
            start = time.perf_counter()
            index = corpus.build_index(temporal=temporal, **kwargs)
            runs.append((time.perf_counter() - start, index))
        return min(runs, key=lambda r: r[0])

    serial_seconds, serial_index = best_of_two()
    thread_seconds, thread_index = best_of_two(
        n_workers=COMPARISON_WORKERS, executor="thread"
    )
    process_seconds, process_index = best_of_two(
        n_workers=COMPARISON_WORKERS, executor="process"
    )

    # Bit-identical indexes regardless of executor.
    _assert_index_identical(serial_index, thread_index)
    _assert_index_identical(serial_index, process_index)

    cpus = usable_cpus()
    record = {
        "figure": "8d",
        "workers": COMPARISON_WORKERS,
        "n_scalar_functions": serial_index.stats.n_scalar_functions,
        "serial_seconds": round(serial_seconds, 4),
        "thread_seconds": round(thread_seconds, 4),
        "process_seconds": round(process_seconds, 4),
        "thread_speedup": round(serial_seconds / thread_seconds, 3),
        "process_speedup": round(serial_seconds / process_seconds, 3),
        "bit_identical": True,
    }
    write_bench_record("fig8d_executor_comparison", record)

    print(
        f"\nFigure 8(d) — executor comparison ({COMPARISON_WORKERS} workers, "
        f"{cpus} usable CPU(s))"
    )
    print(f"{'mode':>10s} {'seconds':>9s} {'speedup':>8s}")
    for mode, seconds in (
        ("serial", serial_seconds),
        ("thread", thread_seconds),
        ("process", process_seconds),
    ):
        print(f"{mode:>10s} {seconds:>9.2f} {serial_seconds / seconds:>7.2f}x")

    # The process executor must beat serial whenever there is any physical
    # parallelism at all — asserted in smoke mode too, since the merge-tree
    # work per partition is substantial even on tiny collections.  The
    # stronger >=1.5x bar needs the worker count actually backed by cores.
    if cpus >= 2:
        assert process_seconds < serial_seconds, (
            f"process executor ({process_seconds:.2f}s) must beat serial "
            f"({serial_seconds:.2f}s) with {cpus} usable CPUs"
        )
    if cpus >= COMPARISON_WORKERS:
        assert record["process_speedup"] >= 1.5, (
            "4 process workers on >=4 cores must index >=1.5x faster "
            f"than serial (got {record['process_speedup']:.2f}x)"
        )

    benchmark.pedantic(
        lambda: corpus.build_index(
            temporal=temporal, n_workers=COMPARISON_WORKERS, executor="process"
        ),
        iterations=1,
        rounds=1,
    )
