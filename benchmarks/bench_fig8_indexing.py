"""Figure 8: indexing + feature-identification time vs. number of data sets.

The paper plots scalar-function-computation time and feature-identification
time as the collection grows, for NYC Urban (a) and NYC Open (b), annotating
the number of computations.  We rebuild the index over growing prefixes of
each collection and print both phases; the paper's qualitative observations
are asserted: adding the taxi data set dominates the Urban cost, and for the
Open collection feature identification outweighs scalar-function computation.
``test_fig8c_parallel_indexing`` re-runs the Urban build through the
map-reduce engine with four threads and checks the parallel index is
bit-identical to the serial one (the §5.4 deployment argument).
"""

import time

import numpy as np

from repro.core.corpus import Corpus
from repro.synth import URBAN_DATASETS, nyc_open_collection
from repro.temporal.resolution import TemporalResolution


def test_fig8a_nyc_urban(benchmark, urban_small, smoke):
    rows = []
    for k in range(1, len(URBAN_DATASETS) + 1):
        subset = urban_small.datasets[:k]
        corpus = Corpus(subset, urban_small.city)
        index = corpus.build_index(
            temporal=(TemporalResolution.DAY, TemporalResolution.WEEK)
        )
        rows.append(
            (
                k,
                index.stats.n_scalar_functions,
                index.stats.scalar_seconds,
                index.stats.feature_seconds,
            )
        )
    print("\nFigure 8(a) — NYC Urban: indexing time vs. number of data sets")
    print(f"{'#data sets':>10s} {'#functions':>11s} {'scalar (s)':>11s} {'features (s)':>13s}")
    for k, n_fns, scalar_s, feature_s in rows:
        print(f"{k:>10d} {n_fns:>11d} {scalar_s:>11.3f} {feature_s:>13.3f}")

    # The paper observes two jumps: data volume (taxi) drives the time, and
    # attribute count (weather, 228 attrs) drives the computation count.
    # Wall-clock jitter makes time-based argmax assertions flaky, so the
    # checks anchor on the deterministic computation counts plus a soft
    # monotonicity condition on the time series itself.
    # (The paper's weather data set also jumps the count via its 228
    # attributes; our replica keeps 8 core attributes — pass
    # weather_extra_attributes to reproduce that profile too.)
    function_counts = [r[1] for r in rows]
    count_jumps = [b - a for a, b in zip(function_counts, function_counts[1:])]
    taxi_count_jump = count_jumps[URBAN_DATASETS.index("taxi") - 1]
    assert taxi_count_jump == max(count_jumps), (
        "taxi (7 functions x 6 resolutions) adds the most computations"
    )
    # Each row is an independent rebuild, so per-row wall times carry jitter;
    # the robust claim is that the full corpus costs more than a small prefix.
    if not smoke:
        scalar_times = [r[2] for r in rows]
        assert scalar_times[-1] > scalar_times[0], (
            "indexing the full corpus costs more than indexing one data set"
        )

    corpus = Corpus(urban_small.datasets, urban_small.city)
    benchmark.pedantic(
        lambda: corpus.build_index(temporal=(TemporalResolution.WEEK,)),
        iterations=1,
        rounds=2,
    )


def test_fig8b_nyc_open(benchmark, smoke):
    if smoke:
        coll = nyc_open_collection(n_datasets=8, seed=11, n_days=30)
        ks = (4, 8)
    else:
        coll = nyc_open_collection(n_datasets=24, seed=11, n_days=120)
        ks = (6, 12, 18, 24)
    rows = []
    for k in ks:
        corpus = Corpus(coll.datasets[:k], coll.city)
        index = corpus.build_index()
        rows.append(
            (
                k,
                index.stats.n_scalar_functions,
                index.stats.scalar_seconds,
                index.stats.feature_seconds,
            )
        )
    print("\nFigure 8(b) — NYC Open: indexing time vs. number of data sets")
    print(f"{'#data sets':>10s} {'#functions':>11s} {'scalar (s)':>11s} {'features (s)':>13s}")
    for k, n_fns, scalar_s, feature_s in rows:
        print(f"{k:>10d} {n_fns:>11d} {scalar_s:>11.3f} {feature_s:>13.3f}")

    # Paper: for NYC Open, feature identification dominates because the data
    # sets are small (little aggregation work) but every function still needs
    # its merge trees.
    if not smoke:
        total_scalar = rows[-1][2]
        total_features = rows[-1][3]
        assert total_features > total_scalar

    corpus = Corpus(coll.datasets[: ks[-1] // 2], coll.city)
    benchmark.pedantic(lambda: corpus.build_index(), iterations=1, rounds=2)


def test_fig8c_parallel_indexing(benchmark, urban_small):
    """Serial vs. 4-thread map-reduce indexing: identical index, lower wall."""
    corpus = Corpus(urban_small.datasets, urban_small.city)
    temporal = (TemporalResolution.DAY, TemporalResolution.WEEK)

    start = time.perf_counter()
    serial = corpus.build_index(temporal=temporal)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = corpus.build_index(
        temporal=temporal, n_workers=4, executor="thread"
    )
    parallel_seconds = time.perf_counter() - start

    assert serial.stats.n_scalar_functions == parallel.stats.n_scalar_functions
    assert serial.stats.n_feature_sets == parallel.stats.n_feature_sets
    for name, ds_serial in serial.datasets.items():
        ds_parallel = parallel.datasets[name]
        assert list(ds_serial.functions) == list(ds_parallel.functions)
        for key, fns in ds_serial.functions.items():
            for fn_s, fn_p in zip(fns, ds_parallel.functions[key]):
                assert fn_s.function_id == fn_p.function_id
                assert np.array_equal(fn_s.function.values, fn_p.function.values)

    print(
        "\nFigure 8(c) — parallel indexing (thread, 4 workers)\n"
        f"serial: {serial_seconds:.2f}s  parallel: {parallel_seconds:.2f}s  "
        f"({parallel.job_stats.n_map_chunks} map chunks)"
    )
    benchmark.pedantic(
        lambda: corpus.build_index(
            temporal=temporal, n_workers=4, executor="thread"
        ),
        iterations=1,
        rounds=2,
    )
