"""§6.3 (+ Appendix E.2) effectiveness: the paper's table of relationships.

For every §6.3 relationship that our synthetic world plants as ground truth,
this bench evaluates the function pair over a simulated year and prints the
paper's value next to the measured one.  The assertions check the *sign* and
the channel (salient vs. extreme), which is what the substitution preserves;
absolute tau/rho values differ with the data.
"""

from dataclasses import dataclass

import pytest

from repro.core.relationship import evaluate_features
from repro.core.significance import significance_test
from repro.graph.domain_graph import DomainGraph
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution


@dataclass(frozen=True)
class ExpectedRelationship:
    """One row of the paper's §6.3 narrative."""

    dataset1: str
    function1: str
    dataset2: str
    function2: str
    temporal: TemporalResolution
    feature_type: str
    expected_sign: int
    paper: str


ROWS = [
    ExpectedRelationship(
        "taxi",
        "taxi.density",
        "weather",
        "weather.avg.precipitation",
        TemporalResolution.HOUR,
        "salient",
        -1,
        "taxis ~ precipitation: tau=-0.62 rho=0.75 (hour, city)",
    ),
    ExpectedRelationship(
        "taxi",
        "taxi.avg.fare",
        "weather",
        "weather.avg.precipitation",
        TemporalResolution.HOUR,
        "extreme",
        +1,
        "fare ~ precipitation: tau=+0.73 rho=0.70 (hour, city)",
    ),
    ExpectedRelationship(
        "taxi",
        "taxi.density",
        "weather",
        "weather.avg.wind_speed",
        TemporalResolution.HOUR,
        "extreme",
        -1,
        "trips ~ wind speed (extreme): tau=-1.0 rho=0.13",
    ),
    ExpectedRelationship(
        "taxi",
        "taxi.unique.medallion",
        "weather",
        "weather.avg.precipitation",
        TemporalResolution.DAY,
        "salient",
        -1,
        "unique taxis ~ precipitation: tau=-0.81 (day, city)",
    ),
    ExpectedRelationship(
        "citibike",
        "citibike.avg.trip_duration",
        "weather",
        "weather.avg.snow",
        TemporalResolution.HOUR,
        "salient",
        +1,
        "bike trip duration ~ snow: tau=+0.61 rho=0.16 (hour, city)",
    ),
    ExpectedRelationship(
        "citibike",
        "citibike.unique.station_id",
        "weather",
        "weather.avg.snow_depth",
        TemporalResolution.DAY,
        "salient",
        -1,
        "active stations ~ snow: tau=-0.88 rho=0.65 (day, city)",
    ),
    ExpectedRelationship(
        "collisions",
        "collisions.avg.motorists_killed",
        "weather",
        "weather.avg.precipitation",
        TemporalResolution.DAY,
        "extreme",
        +1,
        "motorists killed ~ rainfall: tau=+0.90 rho=0.95",
    ),
    ExpectedRelationship(
        "collisions",
        "collisions.avg.pedestrians_injured",
        "weather",
        "weather.avg.precipitation",
        TemporalResolution.DAY,
        "extreme",
        +1,
        "pedestrians injured ~ rainfall: tau=+0.75 rho=0.66",
    ),
    ExpectedRelationship(
        "taxi",
        "taxi.density",
        "traffic_speed",
        "traffic_speed.avg.speed",
        TemporalResolution.HOUR,
        "salient",
        -1,
        "taxi trips ~ traffic speed: tau=-0.90 rho=0.65 (hour, city)",
    ),
]


def _feature_sets(index, row):
    key = (SpatialResolution.CITY, row.temporal)
    d1 = {f.function_id: f for f in index.dataset_index(row.dataset1).functions[key]}
    d2 = {f.function_id: f for f in index.dataset_index(row.dataset2).functions[key]}
    fs1 = d1[row.function1].feature_set(row.feature_type)
    fs2 = d2[row.function2].feature_set(row.feature_type)
    n = min(fs1.shape[0], fs2.shape[0])
    return fs1.slice_steps(0, n), fs2.slice_steps(0, n), n


@pytest.mark.parametrize("row", ROWS, ids=lambda r: f"{r.function1}~{r.function2}")
def test_sec63_relationship(urban_year_index, benchmark, row):
    fs1, fs2, n = _feature_sets(urban_year_index, row)
    measures = evaluate_features(fs1, fs2)
    sig = significance_test(fs1, fs2, DomainGraph(1, n), n_permutations=200, seed=0)
    print(f"\n§6.3  paper:    {row.paper}")
    print(
        f"      measured: tau = {measures.score:+.2f}, "
        f"rho = {measures.strength:.2f}, p = {sig.p_value:.3f} "
        f"[{row.temporal.value}, city; {row.feature_type}]"
    )
    assert measures.is_related, "the planted relationship must produce overlap"
    assert measures.score * row.expected_sign > 0, (
        f"sign mismatch: expected {row.expected_sign:+d}, got {measures.score:+.2f}"
    )
    benchmark.pedantic(lambda: evaluate_features(fs1, fs2), iterations=3, rounds=2)


def test_sec63_no_collision_count_rain_relationship(urban_year_index, benchmark):
    """Paper: accident *counts* are not related to rainfall — severity is."""
    row = ExpectedRelationship(
        "collisions",
        "collisions.density",
        "weather",
        "weather.avg.precipitation",
        TemporalResolution.HOUR,
        "salient",
        0,
        "",
    )
    fs1, fs2, n = _feature_sets(urban_year_index, row)
    measures = evaluate_features(fs1, fs2)
    sig = significance_test(fs1, fs2, DomainGraph(1, n), n_permutations=200, seed=0)
    print(
        f"\n§6.3  collisions.density ~ precipitation: tau = {measures.score:+.2f}, "
        f"p = {sig.p_value:.3f} (paper: no significant relationship)"
    )
    assert not sig.is_significant() or abs(measures.score) < 0.9
    benchmark.pedantic(lambda: evaluate_features(fs1, fs2), iterations=3, rounds=2)


def test_sec63_spatial_collisions_311(urban_small, benchmark):
    """Collisions ~ 311 complaints at (day, neighborhood): tau=+0.84 (E.2).

    The shared localized incidents plant the spatial relationship; it is
    evaluated on the neighborhood domain graph with toroidal-shift nulls.
    """
    from repro.core.corpus import Corpus

    corpus = Corpus(
        [urban_small.dataset("collisions"), urban_small.dataset("complaints_311")],
        urban_small.city,
    )
    index = corpus.build_index(
        spatial=(SpatialResolution.NEIGHBORHOOD,),
        temporal=(TemporalResolution.DAY,),
    )
    key = (SpatialResolution.NEIGHBORHOOD, TemporalResolution.DAY)
    coll = {f.function_id: f for f in index.dataset_index("collisions").functions[key]}
    complaints = {
        f.function_id: f
        for f in index.dataset_index("complaints_311").functions[key]
    }
    fs1 = coll["collisions.density"].feature_set("salient")
    fs2 = complaints["complaints_311.density"].feature_set("salient")
    graph = coll["collisions.density"].function.graph
    measures = evaluate_features(fs1, fs2)
    sig = significance_test(fs1, fs2, graph, n_permutations=200, seed=0)
    print(
        f"\n§6.3/E.2  collisions ~ 311 (day, neighborhood): "
        f"tau = {measures.score:+.2f}, rho = {measures.strength:.2f}, "
        f"p = {sig.p_value:.3f} (paper: tau=+0.84 rho=0.41)"
    )
    assert measures.score > 0
    assert sig.method == "spatial_toroidal"
    benchmark.pedantic(
        lambda: significance_test(fs1, fs2, graph, n_permutations=100, seed=0),
        iterations=1,
        rounds=2,
    )
