"""§5.4 space overhead: scalar functions and features vs. the raw data.

The paper reports that storing all scalar functions over all resolutions is
far smaller than the raw data (5 years of taxi: 108 GB raw vs. 417 MB of
functions vs. 8 MB of packed features).  We account the same three
quantities for the replica corpus and assert the same ordering.
"""

from repro.core.corpus import Corpus
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution


def _fmt(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} TB"


def test_sec54_space_overhead(urban_year, benchmark):
    corpus = Corpus(urban_year.datasets, urban_year.city)
    index = benchmark.pedantic(
        lambda: corpus.build_index(
            spatial=(SpatialResolution.CITY,),
            temporal=(TemporalResolution.HOUR, TemporalResolution.DAY,
                      TemporalResolution.WEEK),
        ),
        iterations=1,
        rounds=1,
    )
    stats = index.stats
    print("\n§5.4 — space overhead (city resolutions, hour/day/week)")
    print(f"  raw data:              {_fmt(stats.raw_bytes)}")
    print(f"  scalar functions:      {_fmt(stats.function_bytes)}")
    print(f"  packed feature vectors:{_fmt(stats.feature_bytes)}")
    ratio_functions = stats.raw_bytes / max(stats.function_bytes, 1)
    ratio_features = stats.function_bytes / max(stats.feature_bytes, 1)
    print(f"  raw / functions = {ratio_functions:.0f}x, "
          f"functions / features = {ratio_features:.0f}x")

    assert stats.function_bytes < stats.raw_bytes, (
        "functions must be much smaller than the raw data"
    )
    assert stats.feature_bytes < stats.function_bytes, (
        "packed features must be much smaller than the functions"
    )
