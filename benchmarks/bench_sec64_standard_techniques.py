"""§6.4 / Appendix D: comparison against PCC, mutual information and DTW.

The paper's findings, reproduced here on city-resolution series:

* Global relationships present across the entire data (snow ~ bike duration,
  taxi trips ~ traffic speed) are detectable by the standard techniques.
* Conditional relationships that only materialize during salient periods
  (wind ~ taxi trips — the hurricanes) are missed by every global technique
  but found by the topology-based extreme-feature comparison.
* Spatial relationships (collisions ~ 311 at neighborhood resolution) are
  invisible to the inherently 1-D techniques once aggregated to the city.
"""


from repro.baselines import dtw_score, mutual_information_score, pearson_score
from repro.core.relationship import evaluate_features
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution

KEY_HOUR = (SpatialResolution.CITY, TemporalResolution.HOUR)
KEY_DAY = (SpatialResolution.CITY, TemporalResolution.DAY)


def _series(index, dataset, function_id, key):
    fns = {f.function_id: f for f in index.dataset_index(dataset).functions[key]}
    return fns[function_id]


def _aligned_values(f1, f2):
    a = f1.function.values[:, 0]
    b = f2.function.values[:, 0]
    n = min(a.size, b.size)
    return a[:n], b[:n]


def _row(index, d1, f1, d2, f2, key, channel):
    fn1 = _series(index, d1, f1, key)
    fn2 = _series(index, d2, f2, key)
    a, b = _aligned_values(fn1, fn2)
    # DTW is O(n m); a day-resolution view keeps it tractable and is what the
    # paper used for its comparison (series aggregated over the city).
    stride = max(1, a.size // 400)
    scores = {
        "pcc": pearson_score(a, b),
        "mi": mutual_information_score(a, b),
        "dtw": dtw_score(a[::stride], b[::stride], window=30),
    }
    fs1 = fn1.feature_set(channel)
    fs2 = fn2.feature_set(channel)
    n = min(fs1.shape[0], fs2.shape[0])
    scores["polygamy_tau"] = evaluate_features(
        fs1.slice_steps(0, n), fs2.slice_steps(0, n)
    ).score
    return scores


def test_sec64_standard_technique_comparison(urban_year_index, benchmark):
    index = urban_year_index
    rows = {
        "snow ~ bike duration (global)": _row(
            index,
            "citibike",
            "citibike.avg.trip_duration",
            "weather",
            "weather.avg.snow",
            KEY_DAY,
            "salient",
        ),
        "trips ~ traffic speed (global)": _row(
            index,
            "taxi",
            "taxi.density",
            "traffic_speed",
            "traffic_speed.avg.speed",
            KEY_HOUR,
            "salient",
        ),
        "wind ~ taxi trips (conditional)": _row(
            index,
            "taxi",
            "taxi.density",
            "weather",
            "weather.avg.wind_speed",
            KEY_HOUR,
            "extreme",
        ),
    }

    print("\n§6.4 — standard techniques vs. Data Polygamy")
    print(f"{'relationship':>34s} {'PCC':>7s} {'MI':>6s} {'DTW':>6s} {'tau':>6s}")
    for name, s in rows.items():
        print(
            f"{name:>34s} {s['pcc']:>7.2f} {s['mi']:>6.2f} "
            f"{s['dtw']:>6.2f} {s['polygamy_tau']:>6.2f}"
        )

    # Global relationships: at least one standard technique responds clearly.
    glob = rows["trips ~ traffic speed (global)"]
    assert abs(glob["pcc"]) > 0.4 or glob["dtw"] > 0.5 or glob["mi"] > 0.2
    assert glob["polygamy_tau"] < 0  # and the framework agrees on the sign

    # Conditional relationship: every global technique is weak...
    cond = rows["wind ~ taxi trips (conditional)"]
    assert abs(cond["pcc"]) < 0.3
    assert cond["mi"] < 0.3
    # ...while the extreme-feature comparison is emphatic.
    assert cond["polygamy_tau"] <= -0.9

    benchmark.pedantic(
        lambda: _row(
            index,
            "taxi",
            "taxi.density",
            "weather",
            "weather.avg.wind_speed",
            KEY_HOUR,
            "extreme",
        ),
        iterations=1,
        rounds=2,
    )


def test_sec64_spatial_relationship_invisible_to_1d(urban_small, benchmark):
    """Collisions ~ 311 is spatial: city-aggregated 1-D techniques dilute it.

    The localized incidents couple the two data sets per neighborhood; after
    city aggregation the coupling largely averages into the shared activity
    profile, so 1-D techniques cannot attribute it (the paper's point that
    space-aware comparison is required).  We print both views.
    """
    from repro.core.corpus import Corpus

    corpus = Corpus(
        [urban_small.dataset("collisions"), urban_small.dataset("complaints_311")],
        urban_small.city,
    )
    index = corpus.build_index(
        spatial=(SpatialResolution.NEIGHBORHOOD, SpatialResolution.CITY),
        temporal=(TemporalResolution.DAY,),
    )
    nb_key = (SpatialResolution.NEIGHBORHOOD, TemporalResolution.DAY)
    city_key = (SpatialResolution.CITY, TemporalResolution.DAY)

    coll_nb = _series(index, "collisions", "collisions.density", nb_key)
    compl_nb = _series(index, "complaints_311", "complaints_311.density", nb_key)
    fs1 = coll_nb.feature_set("salient")
    fs2 = compl_nb.feature_set("salient")
    spatial_measures = evaluate_features(fs1, fs2)

    coll_city = _series(index, "collisions", "collisions.density", city_key)
    compl_city = _series(index, "complaints_311", "complaints_311.density", city_key)
    a, b = _aligned_values(coll_city, compl_city)

    print("\n§6.4 — spatial relationship: collisions ~ 311")
    print(
        f"  (day, neighborhood) polygamy: tau = {spatial_measures.score:+.2f}, "
        f"|Sigma| = {spatial_measures.n_related}"
    )
    print(
        f"  (day, city) 1-D techniques: PCC = {pearson_score(a, b):+.2f}, "
        f"MI = {mutual_information_score(a, b):.2f}"
    )
    assert spatial_measures.is_related
    assert spatial_measures.score > 0

    benchmark.pedantic(lambda: evaluate_features(fs1, fs2), iterations=3, rounds=2)
