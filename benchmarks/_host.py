"""Host introspection shared by the benchmark modules.

A plain module (not the conftest) on purpose: ``import conftest`` resolves
to whichever conftest pytest imported first, so a combined
``pytest tests benchmarks`` run would hand the benchmarks a *tests*
conftest.  The leading underscore keeps pytest from collecting this file
(``python_files = test_*.py / bench_*.py``).
"""

import os


def usable_cpus() -> int:
    """CPUs this run may actually schedule on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
