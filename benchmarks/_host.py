"""Host introspection shared by the benchmark modules.

A plain module (not the conftest) on purpose: ``import conftest`` resolves
to whichever conftest pytest imported first, so a combined
``pytest tests benchmarks`` run would hand the benchmarks a *tests*
conftest.  The leading underscore keeps pytest from collecting this file
(``python_files = test_*.py / bench_*.py``).
"""

import os
import platform
import sys


def usable_cpus() -> int:
    """CPUs this run may actually schedule on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def host_info() -> dict:
    """Provenance block embedded in every ``BENCH_*.json`` record.

    Everything needed to decide whether two records are comparable:
    interpreter build, machine/OS, and the CPU budget the run actually had
    (``usable_cpus`` respects cgroup quotas, ``os.cpu_count`` is the raw
    box).  Values are plain scalars so the record stays greppable JSON.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
        "usable_cpus": usable_cpus(),
        "total_cpus": os.cpu_count() or 1,
        "executable": sys.executable,
    }
