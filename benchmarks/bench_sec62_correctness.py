"""§6.2 correctness: two years of taxi data must be strongly related.

The paper's controlled experiment: model each year of taxi-density data as a
separate function starting on the same weekday; the two functions share the
weekly/diurnal structure, so a strong, significant positive relationship must
be identified.  Paper values: (hour, city) tau = 0.99 rho = 0.85;
(hour, neighborhood) tau = 1.0 rho = 0.87.

Our replica simulates two independent years (different weather, holidays and
events), so the measured rho is lower — the structural signal is positive and
significant, which is the experiment's claim.
"""

import numpy as np

from repro.core.features import FeatureExtractor
from repro.core.relationship import evaluate_features
from repro.core.scalar_function import ScalarFunction
from repro.core.significance import significance_test
from repro.data.aggregation import FunctionSpec, aggregate
from repro.graph.domain_graph import DomainGraph
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution


def yearly_density(seed, n_days, spatial, city):
    coll = nyc_urban_collection(seed=seed, n_days=n_days, scale=1.0, subset=("taxi",))
    taxi = coll.dataset("taxi")
    regions = None if spatial is SpatialResolution.CITY else city.region_set(spatial)
    (agg,) = aggregate(
        taxi,
        spatial,
        TemporalResolution.HOUR,
        regions=regions,
        specs=[FunctionSpec("taxi", "density")],
    )
    pairs = city.spatial_pairs(spatial)
    graph = DomainGraph(agg.n_regions, agg.n_steps, pairs,
                        step_labels=np.arange(agg.n_steps))
    return ScalarFunction("taxi.density", agg.values, graph, spatial,
                          TemporalResolution.HOUR), coll.city


def test_sec62_two_years_city(benchmark):
    extractor = FeatureExtractor()
    from repro.synth import default_city

    city = default_city()
    f2011, _ = yearly_density(2011, 180, SpatialResolution.CITY, city)
    f2012, _ = yearly_density(2012, 180, SpatialResolution.CITY, city)
    n = min(f2011.n_steps, f2012.n_steps)
    fs1 = extractor.extract(f2011).salient.slice_steps(0, n)
    fs2 = extractor.extract(f2012).salient.slice_steps(0, n)
    measures = evaluate_features(fs1, fs2)
    sig = significance_test(fs1, fs2, DomainGraph(1, n), n_permutations=300, seed=0)
    print("\n§6.2 correctness — taxi '2011' vs '2012' density, (hour, city)")
    print(f"  paper:    tau = 0.99, rho = 0.85")
    print(
        f"  measured: tau = {measures.score:+.2f}, rho = {measures.strength:.2f}, "
        f"p = {sig.p_value:.3f}"
    )
    assert measures.score > 0.7
    assert measures.strength > 0.5
    assert sig.p_value <= 0.05

    benchmark.pedantic(lambda: evaluate_features(fs1, fs2), iterations=3, rounds=3)


def test_sec62_two_years_neighborhood(benchmark):
    extractor = FeatureExtractor()
    from repro.synth import default_city

    city = default_city()
    f1, _ = yearly_density(2011, 120, SpatialResolution.NEIGHBORHOOD, city)
    f2, _ = yearly_density(2012, 120, SpatialResolution.NEIGHBORHOOD, city)
    n = min(f1.n_steps, f2.n_steps)
    fs1 = extractor.extract(f1).salient.slice_steps(0, n)
    fs2 = extractor.extract(f2).salient.slice_steps(0, n)
    measures = evaluate_features(fs1, fs2)
    print("\n§6.2 correctness — taxi two years, (hour, neighborhood)")
    print(f"  paper:    tau = 1.0, rho = 0.87")
    print(f"  measured: tau = {measures.score:+.2f}, rho = {measures.strength:.2f}")
    assert measures.score > 0.5

    benchmark.pedantic(lambda: evaluate_features(fs1, fs2), iterations=3, rounds=3)
