"""Table 1: properties of the data sets in the NYC Urban collection.

Prints the replica of Table 1 — name, in-memory size, record count, time
range, number of scalar functions, native spatial and temporal resolution,
description — and benchmarks collection generation.  Absolute sizes are
smaller than the paper's multi-year production dumps by design; the *shape*
(taxi and Twitter dominating volume, weather dominating attribute count) is
preserved.

The companion test extends the table with the *persisted index* footprint
per data set (§5.4): the on-disk index is a small fraction of the raw data,
and its array payload reconciles byte-for-byte with ``IndexStats``.
"""

import json

import numpy as np

from repro.persist import INDEX_MANIFEST, disk_usage
from repro.synth import nyc_urban_collection


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:.0f} {unit}"
        n /= 1024
    return f"{n:.1f} TB"


def test_table1_dataset_properties(urban_year, benchmark, smoke):
    benchmark.pedantic(
        lambda: nyc_urban_collection(seed=7, n_days=30, scale=0.5),
        iterations=1,
        rounds=3,
    )

    print("\nTable 1 — NYC Urban collection (synthetic replica, 1 year)")
    header = (
        f"{'Data Set':16s} {'Size':>9s} {'# Records':>10s} "
        f"{'# Scalar Fns':>12s} {'Spatial':>12s} {'Temporal':>9s}"
    )
    print(header)
    print("-" * len(header))
    for ds in urban_year.datasets:
        print(
            f"{ds.name:16s} {_fmt_bytes(ds.nbytes()):>9s} {ds.n_records:>10,d} "
            f"{ds.schema.n_scalar_functions:>12d} "
            f"{ds.schema.spatial_resolution.name:>12s} "
            f"{ds.schema.temporal_resolution.name:>9s}"
        )

    by_name = {ds.name: ds for ds in urban_year.datasets}
    # Shape assertions mirroring Table 1's structure.  Volume ordering only
    # holds at full scale: event-driven record counts shrink with the smoke
    # collection's `scale` while fixed-rate sensors (weather) do not.
    assert by_name["weather"].schema.n_scalar_functions == max(
        d.schema.n_scalar_functions for d in urban_year.datasets
    ), "weather should dominate attribute count"
    if not smoke:
        assert by_name["taxi"].n_records == max(
            d.n_records for d in urban_year.datasets if d.name != "twitter"
        ), "taxi should dominate record volume among non-Twitter sets"
        assert by_name["gas_prices"].n_records == min(
            d.n_records for d in urban_year.datasets
        ), "gas prices is the smallest data set"
        records = np.array([d.n_records for d in urban_year.datasets])
        assert (records.max() / records.min() > 100), "volumes span orders of magnitude"


def test_table1_persisted_index_footprint(urban_year, urban_year_index, tmp_path):
    urban_year_index.save(tmp_path)
    usage = disk_usage(tmp_path)
    manifest = json.loads((tmp_path / INDEX_MANIFEST).read_text())
    on_disk = {name: 0 for name in manifest["datasets"]}
    for record in manifest["partitions"]:
        on_disk[record["dataset"]] += record["nbytes"]

    print("\nTable 1 (cont.) — persisted index footprint per data set")
    header = f"{'Data Set':16s} {'Raw':>10s} {'Index on disk':>14s}"
    print(header)
    print("-" * len(header))
    for ds in urban_year.datasets:
        print(
            f"{ds.name:16s} {_fmt_bytes(ds.nbytes()):>10s} "
            f"{_fmt_bytes(on_disk[ds.name]):>14s}"
        )
    print(
        f"{'total':16s} {_fmt_bytes(urban_year_index.stats.raw_bytes):>10s} "
        f"{_fmt_bytes(usage.total_bytes):>14s}"
    )

    stats = urban_year_index.stats
    # §5.4 reconciliation: the uncompressed array payload on disk equals the
    # in-memory accounting exactly; the whole index stays below the raw data.
    assert usage.function_bytes == stats.function_bytes
    assert usage.feature_bytes == stats.feature_bytes
    assert usage.total_bytes < stats.raw_bytes
