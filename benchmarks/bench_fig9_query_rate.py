"""Figure 9: relationship-evaluation rate vs. number of data sets.

The paper reports a roughly constant rate above 10^4 relationship evaluations
per minute as collections grow, arguing the rate is independent of raw data
size because everything operates on the precomputed features.  We query
growing prefixes of both collections and print the rate series.
"""

from repro.core.corpus import Corpus
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_open_collection
from repro.temporal.resolution import TemporalResolution


def _rate_series(collection, ks, temporal, n_permutations=100):
    rows = []
    for k in ks:
        corpus = Corpus(collection.datasets[:k], collection.city)
        index = corpus.build_index(temporal=temporal)
        result = index.query(n_permutations=n_permutations, seed=0)
        rows.append((k, result.n_evaluated, result.evaluations_per_minute))
    return rows


def _print(label, rows):
    print(f"\nFigure 9{label}")
    print(f"{'#data sets':>10s} {'#evaluations':>13s} {'evals/minute':>13s}")
    for k, n_eval, rate in rows:
        print(f"{k:>10d} {n_eval:>13,d} {rate:>13,.0f}")


def test_fig9a_nyc_urban_rate(benchmark, urban_small):
    rows = _rate_series(
        urban_small, ks=(3, 5, 7, 9),
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK),
    )
    _print("(a) — NYC Urban", rows)
    rates = [r[2] for r in rows if r[1] > 0]
    assert min(rates) > 1e3, "must sustain >10^3 evaluations/minute"
    # Rate roughly constant: within an order of magnitude across corpus sizes.
    assert max(rates) / min(rates) < 10

    corpus = Corpus(urban_small.datasets, urban_small.city)
    index = corpus.build_index(temporal=(TemporalResolution.WEEK,))
    benchmark.pedantic(
        lambda: index.query(n_permutations=100, seed=0), iterations=1, rounds=3
    )


def test_fig9b_nyc_open_rate(benchmark):
    coll = nyc_open_collection(n_datasets=24, seed=11, n_days=120)
    rows = _rate_series(coll, ks=(6, 12, 24), temporal=None)
    _print("(b) — NYC Open", rows)
    rates = [r[2] for r in rows if r[1] > 0]
    assert min(rates) > 1e3
    assert max(rates) / min(rates) < 10

    corpus = Corpus(coll.datasets[:12], coll.city)
    index = corpus.build_index()
    benchmark.pedantic(
        lambda: index.query(n_permutations=100, seed=0), iterations=1, rounds=3
    )
