"""Figure 9: relationship-evaluation rate vs. number of data sets.

The paper reports a roughly constant rate above 10^4 relationship evaluations
per minute as collections grow, arguing the rate is independent of raw data
size because everything operates on the precomputed features.  We query
growing prefixes of both collections and print the rate series.

``test_fig9c_parallel_query_rate`` additionally runs the same query serially
and through the map-reduce engine with ``executor="thread", n_workers=4``:
results must be bit-identical, and the printed ratio is the measured
parallel speedup (the paper's Hadoop deployment argument, §5.4).
``test_fig9d_executor_comparison`` races all three executors on one query —
bit-identical results asserted, rates recorded to ``BENCH_*.json``.  Query
work (FFT cross-correlations, permutation tests) is NumPy-bound and
releases the GIL, so here threads are the natural winner and the process
executor's job is merely to stay competitive despite pickling the feature
payloads.
``test_fig9e_significance_modes`` races the three significance modes on a
single core — batched must reproduce exact's p-values bit-for-bit,
adaptive must reproduce every significance decision at α, and both must
beat exact by the asserted floors (the CI ``query-throughput`` job runs
this in smoke mode per commit and archives the ``BENCH_fig9e_*.json``
record).
"""

from _host import usable_cpus as _usable_cpus
from repro.core.corpus import Corpus
from repro.synth import nyc_open_collection
from repro.temporal.resolution import TemporalResolution

PARALLEL_WORKERS = 4


def _rate_series(collection, ks, temporal, n_permutations=100):
    rows = []
    for k in ks:
        corpus = Corpus(collection.datasets[:k], collection.city)
        index = corpus.build_index(temporal=temporal)
        result = index.query(n_permutations=n_permutations, seed=0)
        rows.append((k, result.n_evaluated, result.evaluations_per_minute))
    return rows


def _print(label, rows):
    print(f"\nFigure 9{label}")
    print(f"{'#data sets':>10s} {'#evaluations':>13s} {'evals/minute':>13s}")
    for k, n_eval, rate in rows:
        print(f"{k:>10d} {n_eval:>13,d} {rate:>13,.0f}")


def test_fig9a_nyc_urban_rate(benchmark, urban_small, smoke):
    rows = _rate_series(
        urban_small,
        ks=(3, 5, 7, 9),
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK),
        n_permutations=30 if smoke else 100,
    )
    _print("(a) — NYC Urban", rows)
    rates = [r[2] for r in rows if r[1] > 0]
    if not smoke:
        assert min(rates) > 1e3, "must sustain >10^3 evaluations/minute"
        # Rate roughly constant: within an order of magnitude across sizes.
        assert max(rates) / min(rates) < 10

    corpus = Corpus(urban_small.datasets, urban_small.city)
    index = corpus.build_index(temporal=(TemporalResolution.WEEK,))
    benchmark.pedantic(
        lambda: index.query(n_permutations=100, seed=0), iterations=1, rounds=3
    )


def test_fig9b_nyc_open_rate(benchmark, smoke):
    if smoke:
        coll = nyc_open_collection(n_datasets=8, seed=11, n_days=30)
        ks = (4, 8)
    else:
        coll = nyc_open_collection(n_datasets=24, seed=11, n_days=120)
        ks = (6, 12, 24)
    rows = _rate_series(coll, ks=ks, temporal=None, n_permutations=30 if smoke else 100)
    _print("(b) — NYC Open", rows)
    rates = [r[2] for r in rows if r[1] > 0]
    if not smoke:
        assert min(rates) > 1e3
        assert max(rates) / min(rates) < 10

    corpus = Corpus(coll.datasets[: ks[-1] // 2], coll.city)
    index = corpus.build_index()
    benchmark.pedantic(
        lambda: index.query(n_permutations=100, seed=0), iterations=1, rounds=3
    )


def test_fig9c_parallel_query_rate(benchmark, urban_small, smoke):
    """Serial vs. 4-thread map-reduce query: identical results, higher rate."""
    corpus = Corpus(urban_small.datasets, urban_small.city)
    index = corpus.build_index(
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK)
    )
    n_permutations = 200 if smoke else 400

    # Best-of-two per mode: one jittery round on a shared runner must not
    # decide the speedup comparison.
    def best_rate(**kwargs):
        runs = [
            index.query(n_permutations=n_permutations, seed=0, **kwargs)
            for _ in range(2)
        ]
        return max(runs, key=lambda r: r.evaluations_per_minute)

    serial = best_rate()
    parallel = best_rate(n_workers=PARALLEL_WORKERS, executor="thread")

    # Bit-identical outcome regardless of scheduling.
    assert [r.p_value for r in serial.results] == [r.p_value for r in parallel.results]
    assert [(r.function1, r.function2, r.score) for r in serial.results] == [
        (r.function1, r.function2, r.score) for r in parallel.results
    ]
    assert serial.n_evaluated == parallel.n_evaluated

    ratio = parallel.evaluations_per_minute / max(serial.evaluations_per_minute, 1e-9)
    print(
        f"\nFigure 9(c) — parallel query rate ({PARALLEL_WORKERS} threads, "
        f"{_usable_cpus()} usable CPU(s))"
    )
    print(
        f"{'mode':>10s} {'#evaluations':>13s} {'evals/minute':>13s}\n"
        f"{'serial':>10s} {serial.n_evaluated:>13,d} "
        f"{serial.evaluations_per_minute:>13,.0f}\n"
        f"{'thread-4':>10s} {parallel.n_evaluated:>13,d} "
        f"{parallel.evaluations_per_minute:>13,.0f}\n"
        f"speedup: {ratio:.2f}x"
    )
    # The speedup claim needs physical parallelism *and* non-trivial task
    # sizes: under --smoke the per-pair work is tiny and shared-runner jitter
    # dominates, so smoke runs print the measured ratio but only the
    # equivalence asserts above gate CI (same policy as fig7/fig10's
    # timing assertions).
    if not smoke:
        if _usable_cpus() >= PARALLEL_WORKERS:
            assert ratio >= 1.5, "4 workers must beat serial by >=1.5x"
        elif _usable_cpus() >= 2:
            assert ratio >= 1.1, "2+ cores must still show overlap"

    benchmark.pedantic(
        lambda: index.query(
            n_permutations=n_permutations,
            seed=0,
            n_workers=PARALLEL_WORKERS,
            executor="thread",
        ),
        iterations=1,
        rounds=3,
    )


def test_fig9d_executor_comparison(benchmark, urban_small, smoke, write_bench_record):
    """Serial vs thread vs process query: identical results, measured rates."""
    corpus = Corpus(urban_small.datasets, urban_small.city)
    index = corpus.build_index(
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK)
    )
    n_permutations = 200 if smoke else 400

    def best_rate(**kwargs):
        runs = [
            index.query(n_permutations=n_permutations, seed=0, **kwargs)
            for _ in range(2)
        ]
        return max(runs, key=lambda r: r.evaluations_per_minute)

    serial = best_rate()
    thread = best_rate(n_workers=PARALLEL_WORKERS, executor="thread")
    process = best_rate(n_workers=PARALLEL_WORKERS, executor="process")

    for parallel in (thread, process):
        assert [r.p_value for r in serial.results] == [
            r.p_value for r in parallel.results
        ]
        assert [(r.function1, r.function2, r.score) for r in serial.results] == [
            (r.function1, r.function2, r.score) for r in parallel.results
        ]
        assert serial.n_evaluated == parallel.n_evaluated

    rates = {
        "serial": serial.evaluations_per_minute,
        "thread": thread.evaluations_per_minute,
        "process": process.evaluations_per_minute,
    }
    record = {
        "figure": "9d",
        "workers": PARALLEL_WORKERS,
        "n_evaluated": serial.n_evaluated,
        "n_permutations": n_permutations,
        "evaluations_per_minute": {k: round(v, 1) for k, v in rates.items()},
        "thread_speedup": round(rates["thread"] / max(rates["serial"], 1e-9), 3),
        "process_speedup": round(rates["process"] / max(rates["serial"], 1e-9), 3),
        "bit_identical": True,
    }
    write_bench_record("fig9d_executor_comparison", record)

    print(
        f"\nFigure 9(d) — executor comparison ({PARALLEL_WORKERS} workers, "
        f"{_usable_cpus()} usable CPU(s))"
    )
    print(f"{'mode':>10s} {'evals/minute':>13s} {'speedup':>8s}")
    for mode, rate in rates.items():
        print(f"{mode:>10s} {rate:>13,.0f} "
              f"{rate / max(rates['serial'], 1e-9):>7.2f}x")

    benchmark.pedantic(
        lambda: index.query(
            n_permutations=n_permutations,
            seed=0,
            n_workers=PARALLEL_WORKERS,
            executor="process",
        ),
        iterations=1,
        rounds=1,
    )


def test_fig9e_significance_modes(benchmark, urban_small, smoke, write_bench_record):
    """Exact vs batched vs adaptive significance on a single core.

    Batched must be bit-identical to exact (same p-values, same results);
    adaptive must agree with exact on every significance decision at α.
    The speedups are the tentpole claim: batched vectorizes the permutation
    tests across chunks of pairs, adaptive additionally stops each test
    once its decision is settled.
    """
    corpus = Corpus(urban_small.datasets, urban_small.city)
    index = corpus.build_index(
        temporal=(TemporalResolution.DAY, TemporalResolution.WEEK)
    )
    n_permutations = 200 if smoke else 400

    def best_rate(mode):
        runs = [
            index.query(n_permutations=n_permutations, seed=0, significance_mode=mode)
            for _ in range(2)
        ]
        return max(runs, key=lambda r: r.evaluations_per_minute)

    exact = best_rate("exact")
    batched = best_rate("batched")
    adaptive = best_rate("adaptive")

    # Batched mode is bit-identical to the exact reference.
    assert [r.p_value for r in exact.results] == [r.p_value for r in batched.results]
    assert [(r.function1, r.function2, r.score) for r in exact.results] == [
        (r.function1, r.function2, r.score) for r in batched.results
    ]
    # Adaptive mode reports different p-values (fewer permutations) but must
    # reach the identical set of significant relationships.
    assert [(r.function1, r.function2, r.score) for r in exact.results] == [
        (r.function1, r.function2, r.score) for r in adaptive.results
    ]
    for other in (batched, adaptive):
        assert exact.n_evaluated == other.n_evaluated
        assert exact.n_candidates == other.n_candidates
        assert exact.n_significant == other.n_significant

    rates = {
        "exact": exact.evaluations_per_minute,
        "batched": batched.evaluations_per_minute,
        "adaptive": adaptive.evaluations_per_minute,
    }
    batched_speedup = rates["batched"] / max(rates["exact"], 1e-9)
    adaptive_speedup = rates["adaptive"] / max(rates["exact"], 1e-9)
    record = {
        "figure": "9e",
        "n_evaluated": exact.n_evaluated,
        "n_candidates": exact.n_candidates,
        "n_significant": exact.n_significant,
        "n_permutations": n_permutations,
        "evaluations_per_minute": {k: round(v, 1) for k, v in rates.items()},
        "batched_speedup": round(batched_speedup, 3),
        "adaptive_speedup": round(adaptive_speedup, 3),
        "batched_bit_identical": True,
        "adaptive_decision_identical": True,
    }
    write_bench_record("fig9e_significance_modes", record)

    print("\nFigure 9(e) — significance modes (single core)")
    print(f"{'mode':>10s} {'evals/minute':>13s} {'speedup':>8s}")
    for mode, rate in rates.items():
        print(f"{mode:>10s} {rate:>13,.0f} "
              f"{rate / max(rates['exact'], 1e-9):>7.2f}x")

    # The perf gate: the smoke floor holds the line per commit in CI; the
    # full run asserts the tentpole's >=10x single-core target.
    if smoke:
        assert batched_speedup >= 3.0, "batched must beat exact by >=3x"
        assert adaptive_speedup >= 3.0, "adaptive must beat exact by >=3x"
    else:
        assert batched_speedup >= 5.0, "batched must beat exact by >=5x"
        assert adaptive_speedup >= 10.0, "adaptive must beat exact by >=10x"

    benchmark.pedantic(
        lambda: index.query(
            n_permutations=n_permutations, seed=0, significance_mode="adaptive"
        ),
        iterations=1,
        rounds=3,
    )
