"""Round-trip tests for CSV I/O."""

import numpy as np
import pytest

from repro.data.csv_io import read_csv, write_csv
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError


def test_gps_round_trip(tmp_path):
    schema = DatasetSchema(
        "taxi",
        SpatialResolution.GPS,
        TemporalResolution.SECOND,
        key_attributes=("medallion",),
        numeric_attributes=("fare",),
    )
    rng = np.random.default_rng(0)
    n = 50
    original = Dataset(
        schema,
        timestamps=rng.integers(0, 10_000, n),
        x=rng.uniform(0, 1, n),
        y=rng.uniform(0, 1, n),
        keys={"medallion": rng.integers(0, 5, n).astype(str)},
        numerics={"fare": rng.normal(10, 1, n)},
    )
    path = tmp_path / "taxi.csv"
    write_csv(original, path)
    restored = read_csv(path, schema)
    assert np.array_equal(restored.timestamps, original.timestamps)
    assert np.allclose(restored.x, original.x)
    assert np.allclose(restored.y, original.y)
    assert np.array_equal(restored.keys["medallion"], original.keys["medallion"])
    assert np.allclose(restored.numerics["fare"], original.numerics["fare"])


def test_nan_round_trip(tmp_path):
    schema = DatasetSchema(
        "w",
        SpatialResolution.CITY,
        TemporalResolution.HOUR,
        numeric_attributes=("v",),
    )
    original = Dataset(
        schema,
        timestamps=np.array([0, 3600]),
        numerics={"v": np.array([1.5, np.nan])},
    )
    path = tmp_path / "w.csv"
    write_csv(original, path)
    restored = read_csv(path, schema)
    assert restored.numerics["v"][0] == 1.5
    assert np.isnan(restored.numerics["v"][1])


def test_region_level_round_trip(tmp_path):
    schema = DatasetSchema("z", SpatialResolution.ZIP, TemporalResolution.DAY)
    original = Dataset(
        schema,
        timestamps=np.array([0, 86400]),
        regions=np.array(["zip_0", "zip_1"]),
    )
    path = tmp_path / "z.csv"
    write_csv(original, path)
    restored = read_csv(path, schema)
    assert np.array_equal(restored.regions, original.regions)


def test_missing_column_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("timestamp\n0\n")
    schema = DatasetSchema(
        "d",
        SpatialResolution.CITY,
        TemporalResolution.HOUR,
        numeric_attributes=("v",),
    )
    with pytest.raises(DataError):
        read_csv(path, schema)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    schema = DatasetSchema("d", SpatialResolution.CITY, TemporalResolution.HOUR)
    with pytest.raises(DataError):
        read_csv(path, schema)
