"""Tests for scalar-function aggregation (§5.1)."""

import numpy as np
import pytest

from repro.data.aggregation import (
    FunctionSpec,
    aggregate,
    default_specs,
    fill_interpolate,
)
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.spatial.regions import grid_partition
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError, ResolutionError

HOUR = 3600


def make_gps_dataset(n=400, seed=0, extent=3.0):
    rng = np.random.default_rng(seed)
    schema = DatasetSchema(
        "taxi",
        SpatialResolution.GPS,
        TemporalResolution.SECOND,
        key_attributes=("medallion",),
        numeric_attributes=("fare",),
    )
    return Dataset(
        schema,
        timestamps=rng.integers(0, 48 * HOUR, n),
        x=rng.uniform(0, extent, n),
        y=rng.uniform(0, extent, n),
        keys={"medallion": rng.integers(0, 25, n).astype(str)},
        numerics={"fare": rng.normal(10.0, 2.0, n)},
    ), rng


class TestFunctionSpec:
    def test_ids(self):
        assert FunctionSpec("d", "density").function_id == "d.density"
        assert FunctionSpec("d", "unique", "k").function_id == "d.unique.k"
        assert FunctionSpec("d", "attribute", "a").function_id == "d.avg.a"
        assert FunctionSpec("d", "attribute", "a", "max").function_id == "d.max.a"

    def test_validation(self):
        with pytest.raises(DataError):
            FunctionSpec("d", "weird")
        with pytest.raises(DataError):
            FunctionSpec("d", "unique")
        with pytest.raises(DataError):
            FunctionSpec("d", "attribute", "a", "mode")

    def test_default_specs_cover_schema(self):
        ds, _ = make_gps_dataset()
        specs = default_specs(ds)
        assert [s.function_id for s in specs] == [
            "taxi.density",
            "taxi.unique.medallion",
            "taxi.avg.fare",
        ]


class TestDensityAndUnique:
    def test_density_conserves_records_at_city(self):
        ds, _ = make_gps_dataset(500)
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("taxi", "density")],
        )
        assert out.values.sum() == 500
        assert out.values.shape == (48, 1)

    def test_density_matches_brute_force_grid(self):
        ds, _ = make_gps_dataset(300)
        grid = grid_partition(3, 3, 0, 0, 3, 3)
        (out,) = aggregate(
            ds,
            SpatialResolution.NEIGHBORHOOD,
            TemporalResolution.DAY,
            regions=grid,
            specs=[FunctionSpec("taxi", "density")],
        )
        # Brute force per cell.
        regions = grid.locate(ds.x, ds.y)
        days = ds.timestamps // 86400
        for day in range(2):
            for r in range(9):
                expected = int(((regions == r) & (days == day)).sum())
                assert out.values[day, r] == expected

    def test_unique_counts_distinct_ids(self):
        schema = DatasetSchema(
            "d",
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            key_attributes=("k",),
        )
        ds = Dataset(
            schema,
            timestamps=np.array([0, 10, 20, HOUR + 5, HOUR + 6]),
            keys={"k": np.array(["a", "a", "b", "a", "a"])},
        )
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "unique", "k")],
        )
        assert out.values[:, 0].tolist() == [2.0, 1.0]

    def test_unique_never_exceeds_density(self):
        ds, _ = make_gps_dataset(800)
        outs = aggregate(ds, SpatialResolution.CITY, TemporalResolution.HOUR)
        by_id = {o.spec.function_id: o for o in outs}
        density = by_id["taxi.density"].values
        unique = by_id["taxi.unique.medallion"].values
        assert (unique <= density).all()


class TestAttributeAggregators:
    def make_city_dataset(self, values, timestamps):
        schema = DatasetSchema(
            "d",
            SpatialResolution.CITY,
            TemporalResolution.SECOND,
            numeric_attributes=("v",),
        )
        return Dataset(
            schema,
            timestamps=np.asarray(timestamps, dtype=np.int64),
            numerics={"v": np.asarray(values, dtype=np.float64)},
        )

    def test_mean(self):
        ds = self.make_city_dataset([1.0, 3.0, 10.0], [0, 10, HOUR])
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "attribute", "v")],
        )
        assert out.values[:, 0].tolist() == [2.0, 10.0]

    @pytest.mark.parametrize(
        "agg,expected", [("sum", 4.0), ("min", 1.0), ("max", 3.0), ("median", 2.0)]
    )
    def test_other_aggregators(self, agg, expected):
        ds = self.make_city_dataset([1.0, 3.0], [0, 10])
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "attribute", "v", agg)],
        )
        assert out.values[0, 0] == expected

    def test_nan_values_ignored_in_mean(self):
        ds = self.make_city_dataset([2.0, np.nan], [0, 5])
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "attribute", "v")],
        )
        assert out.values[0, 0] == 2.0
        assert out.observed[0, 0]

    def test_fill_global_mean(self):
        ds = self.make_city_dataset([4.0, 8.0], [0, 2 * HOUR])
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "attribute", "v")],
            fill="global_mean",
        )
        assert out.values[1, 0] == pytest.approx(6.0)
        assert not out.observed[1, 0]

    def test_fill_zero(self):
        ds = self.make_city_dataset([4.0, 8.0], [0, 2 * HOUR])
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "attribute", "v")],
            fill="zero",
        )
        assert out.values[1, 0] == 0.0

    def test_fill_interpolate(self):
        ds = self.make_city_dataset([4.0, 8.0], [0, 2 * HOUR])
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "attribute", "v")],
            fill="interpolate",
        )
        assert out.values[1, 0] == pytest.approx(6.0)

    def test_unknown_fill_rejected(self):
        ds = self.make_city_dataset([1.0], [0])
        with pytest.raises(DataError):
            aggregate(ds, SpatialResolution.CITY, TemporalResolution.HOUR, fill="magic")

    def test_sum_of_empty_cells_is_zero(self):
        ds = self.make_city_dataset([5.0], [0])
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "attribute", "v", "sum")],
            step_range=(0, 3),
        )
        assert out.values[:, 0].tolist() == [5.0, 0.0, 0.0, 0.0]


class TestResolutionHandling:
    def test_incompatible_conversion_rejected(self):
        schema = DatasetSchema("z", SpatialResolution.ZIP, TemporalResolution.DAY)
        ds = Dataset(schema, timestamps=np.array([0]), regions=np.array(["zip_0_0"]))
        grid = grid_partition(2, 2, 0, 0, 2, 2)
        with pytest.raises(ResolutionError):
            aggregate(ds, SpatialResolution.NEIGHBORHOOD, TemporalResolution.DAY,
                      regions=grid)
        with pytest.raises(ResolutionError):
            aggregate(ds, SpatialResolution.ZIP, TemporalResolution.HOUR, regions=grid)

    def test_region_native_data_maps_by_id(self):
        grid = grid_partition(2, 1, 0, 0, 2, 1, name="zip", prefix="zip")
        schema = DatasetSchema("z", SpatialResolution.ZIP, TemporalResolution.DAY)
        ds = Dataset(
            schema,
            timestamps=np.array([0, 0, 86400]),
            regions=np.array(["zip_0_0", "zip_1_0", "zip_0_0"]),
        )
        (out,) = aggregate(
            ds,
            SpatialResolution.ZIP,
            TemporalResolution.DAY,
            regions=grid,
            specs=[FunctionSpec("z", "density")],
        )
        assert out.values.tolist() == [[1.0, 1.0], [1.0, 0.0]]

    def test_missing_region_set_rejected(self):
        ds, _ = make_gps_dataset()
        with pytest.raises(DataError):
            aggregate(ds, SpatialResolution.NEIGHBORHOOD, TemporalResolution.DAY)

    def test_step_range_filters_records(self):
        ds, _ = make_gps_dataset(200)
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("taxi", "density")],
            step_range=(0, 9),
        )
        assert out.values.shape == (10, 1)
        hours = ds.timestamps // HOUR
        assert out.values.sum() == int((hours <= 9).sum())

    def test_empty_dataset_rejected(self):
        schema = DatasetSchema("d", SpatialResolution.CITY, TemporalResolution.HOUR)
        ds = Dataset(schema, timestamps=np.zeros(0, dtype=np.int64))
        with pytest.raises(DataError):
            aggregate(ds, SpatialResolution.CITY, TemporalResolution.HOUR)

    def test_bad_step_range_rejected(self):
        ds, _ = make_gps_dataset()
        with pytest.raises(DataError):
            aggregate(
                ds,
                SpatialResolution.CITY,
                TemporalResolution.HOUR,
                step_range=(5, 2),
            )

    def test_foreign_spec_rejected(self):
        ds, _ = make_gps_dataset()
        with pytest.raises(DataError):
            aggregate(
                ds,
                SpatialResolution.CITY,
                TemporalResolution.HOUR,
                specs=[FunctionSpec("other", "density")],
            )


class TestCoarseningConsistency:
    def test_city_density_equals_region_sum(self):
        ds, _ = make_gps_dataset(600)
        grid = grid_partition(3, 3, 0, 0, 3, 3)
        (city,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.DAY,
            specs=[FunctionSpec("taxi", "density")],
        )
        (nbhd,) = aggregate(
            ds,
            SpatialResolution.NEIGHBORHOOD,
            TemporalResolution.DAY,
            regions=grid,
            specs=[FunctionSpec("taxi", "density")],
        )
        # All GPS points fall inside the grid, so the region-summed density
        # must equal the city density per day.
        assert np.array_equal(nbhd.values.sum(axis=1), city.values[:, 0])

    def test_day_density_equals_hour_sum(self):
        ds, _ = make_gps_dataset(600)
        (hourly,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("taxi", "density")],
        )
        (daily,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.DAY,
            specs=[FunctionSpec("taxi", "density")],
        )
        assert hourly.values.sum() == daily.values.sum()


class TestFillInterpolateUnit:
    def test_region_without_observations_gets_global_mean(self):
        values = np.array([[1.0, np.nan], [3.0, np.nan]])
        observed = np.array([[True, False], [True, False]])
        out = fill_interpolate(values, observed)
        assert out[:, 1].tolist() == [2.0, 2.0]

    def test_interior_gap_linear(self):
        values = np.array([[0.0], [np.nan], [4.0]])
        observed = np.array([[True], [False], [True]])
        out = fill_interpolate(values, observed)
        assert out[1, 0] == pytest.approx(2.0)

    def test_all_missing_rejected(self):
        with pytest.raises(DataError):
            fill_interpolate(np.array([[np.nan]]), np.array([[False]]))
