"""Tests for data set schemas and the columnar Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError, SchemaError


def gps_schema(**kwargs):
    defaults = dict(
        name="taxi",
        spatial_resolution=SpatialResolution.GPS,
        temporal_resolution=TemporalResolution.SECOND,
    )
    defaults.update(kwargs)
    return DatasetSchema(**defaults)


class TestSchema:
    def test_scalar_function_count(self):
        schema = gps_schema(
            key_attributes=("medallion",), numeric_attributes=("fare", "tip")
        )
        assert schema.n_scalar_functions == 4  # density + 1 unique + 2 attrs

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            gps_schema(name="")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            gps_schema(key_attributes=("a",), numeric_attributes=("a",))

    def test_reserved_names_rejected(self):
        with pytest.raises(SchemaError):
            gps_schema(numeric_attributes=("timestamp",))


class TestDatasetValidation:
    def test_gps_dataset_needs_coordinates(self):
        with pytest.raises(DataError):
            Dataset(gps_schema(), timestamps=np.array([0, 1]))

    def test_city_dataset_rejects_spatial_columns(self):
        schema = DatasetSchema(
            "weather", SpatialResolution.CITY, TemporalResolution.HOUR
        )
        with pytest.raises(DataError):
            Dataset(
                schema, timestamps=np.array([0]), x=np.array([1.0]), y=np.array([1.0])
            )

    def test_region_dataset_needs_region_column(self):
        schema = DatasetSchema("zips", SpatialResolution.ZIP, TemporalResolution.DAY)
        with pytest.raises(DataError):
            Dataset(schema, timestamps=np.array([0]))

    def test_missing_declared_column_rejected(self):
        schema = gps_schema(numeric_attributes=("fare",))
        with pytest.raises(SchemaError):
            Dataset(
                schema,
                timestamps=np.array([0]),
                x=np.array([0.0]),
                y=np.array([0.0]),
            )

    def test_undeclared_column_rejected(self):
        schema = gps_schema()
        with pytest.raises(SchemaError):
            Dataset(
                schema,
                timestamps=np.array([0]),
                x=np.array([0.0]),
                y=np.array([0.0]),
                numerics={"fare": np.array([1.0])},
            )

    def test_misaligned_columns_rejected(self):
        schema = gps_schema(numeric_attributes=("fare",))
        with pytest.raises(DataError):
            Dataset(
                schema,
                timestamps=np.array([0, 1]),
                x=np.array([0.0, 1.0]),
                y=np.array([0.0, 1.0]),
                numerics={"fare": np.array([1.0])},
            )


class TestDatasetProperties:
    def make(self, n=5):
        schema = gps_schema(key_attributes=("id",), numeric_attributes=("v",))
        return Dataset(
            schema,
            timestamps=np.arange(n, dtype=np.int64) * 100,
            x=np.zeros(n),
            y=np.zeros(n),
            keys={"id": np.array([f"k{i}" for i in range(n)])},
            numerics={"v": np.ones(n)},
        )

    def test_len_and_records(self):
        ds = self.make(7)
        assert len(ds) == 7
        assert ds.n_records == 7

    def test_time_range(self):
        assert self.make(5).time_range() == (0, 400)

    def test_time_range_of_empty_dataset_raises(self):
        ds = self.make(0)
        with pytest.raises(DataError):
            ds.time_range()

    def test_nbytes_positive(self):
        assert self.make().nbytes() > 0
