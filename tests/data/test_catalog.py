"""Tests for catalog persistence (CSV + JSON metadata round trips)."""

import numpy as np
import pytest

from repro.core.corpus import Corpus
from repro.data.catalog import (
    city_from_dict,
    city_to_dict,
    load_catalog,
    save_catalog,
    schema_from_dict,
    schema_to_dict,
)
from repro.data.schema import DatasetSchema
from repro.spatial.city import CityModel
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError


class TestSchemaRoundTrip:
    def test_full_schema(self):
        schema = DatasetSchema(
            "taxi",
            SpatialResolution.GPS,
            TemporalResolution.SECOND,
            key_attributes=("medallion",),
            numeric_attributes=("fare", "tip"),
            description="trips",
        )
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_malformed_record_rejected(self):
        with pytest.raises(DataError):
            schema_from_dict({"name": "x"})
        with pytest.raises(DataError):
            schema_from_dict(
                {"name": "x", "spatial_resolution": "galaxy",
                 "temporal_resolution": "hour"}
            )


class TestCityRoundTrip:
    def test_synthetic_city(self):
        city = CityModel.synthetic(nbhd_grid=(3, 3), zip_grid=(2, 2))
        restored = city_from_dict(city_to_dict(city))
        assert restored.name == city.name
        assert set(restored.regions) == set(city.regions)
        for res in city.regions:
            original = city.region_set(res)
            back = restored.region_set(res)
            assert back.region_ids == original.region_ids
            assert np.array_equal(restored.spatial_pairs(res), city.spatial_pairs(res))
            # Point location behaves identically after the round trip.
            rng = np.random.default_rng(0)
            xs = rng.uniform(0, 16, 50)
            ys = rng.uniform(0, 16, 50)
            assert np.array_equal(back.locate(xs, ys), original.locate(xs, ys))

    def test_malformed_city_rejected(self):
        with pytest.raises(DataError):
            city_from_dict({"name": "x", "layers": {"galaxy": {}}})


class TestCatalogRoundTrip:
    def test_save_load_collection(self, tmp_path):
        coll = nyc_urban_collection(
            seed=3, n_days=7, scale=0.2, subset=("taxi", "weather")
        )
        save_catalog(tmp_path / "cat", coll.datasets, coll.city)
        datasets, city = load_catalog(tmp_path / "cat")
        assert [d.name for d in datasets] == ["taxi", "weather"]
        by_name = {d.name: d for d in datasets}
        original = {d.name: d for d in coll.datasets}
        for name, restored in by_name.items():
            assert restored.n_records == original[name].n_records
            assert np.array_equal(restored.timestamps, original[name].timestamps)

    def test_loaded_catalog_is_queryable(self, tmp_path):
        coll = nyc_urban_collection(
            seed=3, n_days=21, scale=0.3, subset=("taxi", "weather")
        )
        save_catalog(tmp_path / "cat", coll.datasets, coll.city)
        datasets, city = load_catalog(tmp_path / "cat")
        index = Corpus(datasets, city).build_index(temporal=(TemporalResolution.DAY,))
        result = index.query(n_permutations=30, seed=0)
        assert result.n_evaluated > 0

    def test_missing_catalog_rejected(self, tmp_path):
        with pytest.raises(DataError):
            load_catalog(tmp_path)

    def test_wrong_version_rejected(self, tmp_path):
        (tmp_path / "catalog.json").write_text('{"version": 99}')
        with pytest.raises(DataError):
            load_catalog(tmp_path)
