"""Streaming-scheduler tests: stealing, elastic join, overlap determinism.

The v2 scheduler's load-bearing promises, each pinned on a real localhost
cluster:

* **Work stealing** — a straggler holds at most its own prefetch pipeline;
  the fast worker completes the lion's share of a run's tasks.
* **Elastic join** — a worker that dials in mid-run receives ``JoinRun``
  immediately and steals real work.
* **Overlapped-reduce determinism** — map results land in scrambled orders
  (randomized per-input sleeps, fine steal granularity), and outputs stay
  bit-identical to serial, run after run, with streaming reduce on or off.
* **Adaptive granularity** — a second run of the same job class sizes its
  tasks from the first run's measured throughput.

Job classes live at module scope so workers can unpickle them by reference
(``local_cluster`` propagates ``sys.path`` to its workers).
"""

import os
import threading
import time

import pytest

from repro.distributed import ClusterEngine, local_cluster
from repro.distributed.coordinator import spawn_local_worker
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import MapReduceJob
from repro.utils.errors import MapReduceError

#: Env var the straggler tests set on exactly one worker process; the job
#: reads it map-side, so one host computes slowly and the others don't.
SLEEP_ENV = "REPRO_TEST_MAP_SLEEP"


class EnvSleepJob(MapReduceJob):
    """Map sleeps by the worker's env — a controllable straggler."""

    def map(self, key, value):
        time.sleep(float(os.environ.get(SLEEP_ENV, "0")))
        yield key % 4, (key, value)

    def reduce(self, key, values):
        yield key, tuple(values)


class ScrambledSleepJob(MapReduceJob):
    """Per-input pseudo-random sleeps scramble completion order."""

    def map(self, key, value):
        # Deterministic per input, wildly uneven across inputs: completion
        # order across two hosts is effectively shuffled every run.
        time.sleep((key * 7919 % 13) / 400.0)
        yield key % 5, (key, value * 2)

    def reduce(self, key, values):
        yield key, (key, tuple(values))


class FixedSleepJob(MapReduceJob):
    """Uniform small sleep: gives adaptive granularity a clean signal."""

    def map(self, key, value):
        time.sleep(0.01)
        yield key % 3, value

    def reduce(self, key, values):
        yield key, sum(values)


def _serial(job, inputs):
    outputs, _ = LocalEngine(executor="serial").run(job, inputs)
    return outputs


class TestWorkStealing:
    def test_fast_worker_steals_from_straggler(self):
        inputs = [(i, i) for i in range(16)]
        job = EnvSleepJob()
        with local_cluster(
            2,
            worker_env=[{SLEEP_ENV: "0.25"}, None],
            steal_granularity=1,
        ) as engine:
            outputs, stats = engine.run(job, inputs)
        assert outputs == _serial(job, inputs)
        counts = engine.last_run_worker_tasks
        # host0 is the straggler: it may hold at most its prefetch pipeline
        # while host1 drains the queue.  Far more than half the tasks must
        # land on the fast host (16 maps + 4 reduces = 20 tasks total).
        assert sum(counts.values()) == stats.n_map_chunks + 4
        assert counts.get("host1", 0) > counts.get("host0", 0)
        assert counts.get("host1", 0) >= 12

    def test_straggler_holds_at_most_its_pipeline_at_a_time(self):
        # With prefetch_depth=1 the straggler computes one task at a time
        # and prefetches none: the fast worker takes everything else.
        inputs = [(i, i) for i in range(12)]
        job = EnvSleepJob()
        with local_cluster(
            2,
            worker_env=[{SLEEP_ENV: "0.4"}, None],
            steal_granularity=1,
            prefetch_depth=1,
        ) as engine:
            outputs, _ = engine.run(job, inputs)
        assert outputs == _serial(job, inputs)
        counts = engine.last_run_worker_tasks
        assert counts.get("host0", 0) <= 3


class TestElasticJoin:
    def test_late_worker_joins_mid_run_and_steals(self):
        inputs = [(i, i) for i in range(20)]
        job = EnvSleepJob()
        results = {}
        with local_cluster(
            1,
            worker_env=[{SLEEP_ENV: "0.2"}],
            steal_granularity=1,
        ) as engine:

            def drive():
                results["outputs"], results["stats"] = engine.run(job, inputs)

            thread = threading.Thread(target=drive)
            thread.start()
            # Let the lone (slow) worker get going, then dial in a fast one.
            time.sleep(0.8)
            late = spawn_local_worker(engine.address, "late-joiner")
            try:
                thread.join(timeout=120)
                assert not thread.is_alive()
            finally:
                late.terminate()
                late.wait(timeout=10)
        assert results["outputs"] == _serial(job, inputs)
        counts = engine.last_run_worker_tasks
        assert counts.get("late-joiner", 0) > 0, counts
        # Both hosts worked the same run.
        assert counts.get("host0", 0) > 0, counts


class TestOverlapDeterminism:
    def test_scrambled_completion_orders_stay_bit_identical(self):
        inputs = [(i, i) for i in range(24)]
        job = ScrambledSleepJob()
        expected = _serial(job, inputs)
        with local_cluster(2, steal_granularity=1) as engine:
            for _ in range(3):
                outputs, _ = engine.run(job, inputs)
                assert outputs == expected

    @pytest.mark.parametrize("granularity", [1, 3, "auto"])
    def test_determinism_across_steal_granularities(self, granularity):
        inputs = [(i, i) for i in range(17)]
        job = ScrambledSleepJob()
        with local_cluster(2, steal_granularity=granularity) as engine:
            outputs, _ = engine.run(job, inputs)
        assert outputs == _serial(job, inputs)

    def test_streaming_reduce_off_matches_streaming_on(self):
        inputs = [(i, i) for i in range(18)]
        job = ScrambledSleepJob()
        expected = _serial(job, inputs)
        with local_cluster(2, streaming_reduce=False, steal_granularity=1) as engine:
            barrier_outputs, barrier_stats = engine.run(job, inputs)
        with local_cluster(2, streaming_reduce=True, steal_granularity=1) as engine:
            streaming_outputs, streaming_stats = engine.run(job, inputs)
        assert barrier_outputs == expected
        assert streaming_outputs == expected
        # Same task structure either way: one reduce task per group.
        assert len(barrier_stats.reduce_task_seconds) == len(
            streaming_stats.reduce_task_seconds
        )


class TestAdaptiveGranularity:
    def test_second_run_resizes_tasks_from_measured_throughput(self):
        inputs = [(i, 1) for i in range(32)]
        job = FixedSleepJob()
        with local_cluster(2) as engine:  # map_chunk_size defaults to "auto"
            _, first = engine.run(job, inputs)
            outputs, second = engine.run(job, inputs)
        assert outputs == _serial(job, inputs)
        # First run has no measurement: fine fallback split (8 tasks/host).
        # Second run measures ~10ms/input → targets ~20 inputs per task,
        # capped at 2 tasks per host — strictly coarser than the fallback.
        assert first.n_map_chunks > second.n_map_chunks
        assert second.n_map_chunks >= 1

    def test_fixed_granularity_pins_task_count(self):
        inputs = [(i, 1) for i in range(10)]
        job = FixedSleepJob()
        with local_cluster(2, steal_granularity=2) as engine:
            _, stats = engine.run(job, inputs)
        assert stats.n_map_chunks == 5


class TestKnobValidation:
    def test_bad_steal_granularity_rejected(self):
        with pytest.raises(MapReduceError, match="steal_granularity"):
            ClusterEngine(bind="127.0.0.1:0", steal_granularity="huge")
        with pytest.raises(MapReduceError, match="steal_granularity"):
            ClusterEngine(bind="127.0.0.1:0", steal_granularity=0)

    def test_bad_prefetch_depth_rejected(self):
        with pytest.raises(MapReduceError, match="prefetch_depth"):
            ClusterEngine(bind="127.0.0.1:0", prefetch_depth=0)

    def test_knobs_surface_on_engine(self):
        engine = ClusterEngine(
            bind="127.0.0.1:0",
            steal_granularity=4,
            prefetch_depth=3,
            streaming_reduce=False,
        )
        assert engine.steal_granularity == 4
        assert engine.prefetch_depth == 3
        assert engine.streaming_reduce is False
