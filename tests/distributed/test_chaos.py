"""Chaos matrix: seeded fault injection against real localhost clusters.

The robustness contract (ISSUE tentpole): under every injected fault class
a run must end in one of exactly two states — **bit-identical outputs** to
the serial reference, or a **typed error / declared fallback** — within a
bounded wall clock.  Never a hang, never silently wrong bytes.

Each test spawns its own cluster (faults leave corpses) and uses a fixed
plan seed, so a failure reproduces with the same injected events.  Kept
lean for single-core CI boxes: small inputs, 2-host clusters, one
many-host test for the poison-task quarantine.
"""

import os
import time

import numpy as np
import pytest

from repro.distributed import ClusterEngine, local_cluster
from repro.distributed.faults import ENV_VAR
from repro.mapreduce.engine import LocalEngine, default_engine
from repro.mapreduce.job import MapReduceJob
from repro.utils.errors import ClusterUnavailableError, MapReduceError

#: Ceiling on any chaos run (seconds): recovery must be prompt, and a
#: regression toward "hang until some 30 s timeout" must fail loudly.
WALL_CLOCK_BOUND = 60.0


class RowSumJob(MapReduceJob):
    """Deterministic job whose payloads carry a shared matrix.

    The matrix rides the artifact data plane (``min_artifact_bytes`` is
    lowered below its size), so every fault class — frame, artifact,
    scheduler — sits on this job's critical path.
    """

    def __init__(self, matrix):
        self.matrix = matrix

    def map(self, key, value):
        row = self.matrix[key % self.matrix.shape[0]]
        yield key % 3, (key, float(row.sum()) + value)

    def reduce(self, key, values):
        yield key, tuple(values)


class DieOnKeyJob(MapReduceJob):
    """A poison input: mapping ``key == 2`` kills whichever host tries."""

    def map(self, key, value):
        if key == 2:
            os._exit(23)
        yield key % 2, (key, value)

    def reduce(self, key, values):
        yield key, tuple(values)


MATRIX = np.random.default_rng(0).normal(size=(4, 2048))  # 64 KB
INPUTS = [(i, float(i)) for i in range(12)]


def serial_outputs(job=None, inputs=INPUTS):
    outputs, _ = LocalEngine().run(job or RowSumJob(MATRIX), inputs)
    return outputs


def run_chaos(fault_plan=None, n_hosts=2, worker_env=None, **engine_kwargs):
    """One cluster run under ``fault_plan``; asserts the recovery contract."""
    expected = serial_outputs()
    start = time.monotonic()
    with local_cluster(
        n_hosts,
        min_artifact_bytes=1024,
        fault_plan=fault_plan,
        worker_env=worker_env,
        retry_seconds=15.0,
        **engine_kwargs,
    ) as engine:
        outputs, _ = engine.run(RowSumJob(MATRIX), INPUTS)
        retries = engine.last_run_retries
        fallback = engine.last_run_fallback
    elapsed = time.monotonic() - start
    assert outputs == expected, "cluster output diverged from serial under faults"
    assert fallback is None  # recovered on the cluster, no downgrade
    assert elapsed < WALL_CLOCK_BOUND
    return retries


#: Recoverable fault classes: (pytest id, broadcast plan).  Every plan must
#: end bit-identical with no fallback.  Seeds pin the corruption positions.
RECOVERABLE_PLANS = [
    (
        "frame-corrupt-taskstream",
        "seed=7;protocol.send:corrupt:role=coordinator,msg=TaskStream",
    ),
    (
        "frame-truncate-taskstream",
        "seed=7;protocol.send:truncate:role=coordinator,msg=TaskStream",
    ),
    ("dispatch-drop", "coordinator.dispatch:drop:role=coordinator"),
    (
        "artifact-corrupt-then-refetch",
        "seed=23;dataplane.read:error:times=inf,role=worker;"
        "dataplane.serve:corrupt:times=1,role=coordinator",
    ),
    ("compute-straggler", "worker.compute:delay:times=2,seconds=0.2,role=worker"),
    ("heartbeat-stall-brief", "worker.heartbeat:delay:times=1,seconds=0.3"),
    ("dial-flaky", "worker.dial:error:times=2,role=worker"),
]


class TestRecoverableFaults:
    @pytest.mark.parametrize(
        "plan", [p for _, p in RECOVERABLE_PLANS], ids=[i for i, _ in RECOVERABLE_PLANS]
    )
    def test_run_recovers_bit_identically(self, plan):
        run_chaos(fault_plan=plan)

    def test_targeted_recv_drop_recovers(self):
        # Broadcasting a recv-drop can sever *both* hosts in the same
        # instant (a legitimate ClusterUnavailableError); aiming it at one
        # host pins the recoverable path: the survivor carries the run
        # while the dropped host redials.
        run_chaos(worker_env=[{ENV_VAR: "protocol.recv:drop:after=3"}])

    def test_targeted_worker_crash_requeues(self):
        # One host crashes on its first compute; the targeting rides
        # worker_env so only host0 installs the plan.
        retries = run_chaos(
            worker_env=[{ENV_VAR: "worker.compute:crash"}],
        )
        assert retries >= 1


class TestTaskDeadline:
    def test_stuck_but_heartbeating_worker_loses_tasks(self):
        """The acceptance scenario: a worker hangs mid-compute while its
        heartbeat thread keeps beating.  The execution deadline — not the
        heartbeat timeout — must requeue its tasks onto the healthy host."""
        expected = serial_outputs()
        hang = 20.0
        start = time.monotonic()
        with local_cluster(
            2,
            min_artifact_bytes=1024,
            worker_env=[{ENV_VAR: f"worker.compute:hang:seconds={hang}"}],
            retry_seconds=2.0,
            task_deadline=1.5,
        ) as engine:
            outputs, _ = engine.run(RowSumJob(MATRIX), INPUTS)
            retries = engine.last_run_retries
            elapsed = time.monotonic() - start
        assert outputs == expected
        assert retries >= 1  # the hung host demonstrably lost tasks
        assert elapsed < hang  # the run never waited out the hang

    def test_deadline_validation(self):
        with pytest.raises(MapReduceError, match="task_deadline"):
            ClusterEngine(bind="127.0.0.1:0", task_deadline=0)


class TestPoisonQuarantine:
    def test_poison_input_is_quarantined_with_its_label(self):
        """An input that kills every host it touches must fail the run
        *naming the offending chunk* after MAX_TASK_ATTEMPTS distinct
        workers died on it — while healthy hosts survive."""
        start = time.monotonic()
        with local_cluster(4, steal_granularity=1) as engine:
            with pytest.raises(MapReduceError, match="poison task quarantined") as err:
                engine.run(DieOnKeyJob(), [(i, f"record {i}") for i in range(8)])
            message = str(err.value)
            assert "input #" in message and "key 2" in message
            assert "3 distinct worker(s)" in message
            # The cluster was not wiped out: the poison was contained.
            assert len(engine.coordinator.alive_workers()) >= 1
            healthy, _ = engine.run(RowSumJob(MATRIX), INPUTS)
        assert healthy == serial_outputs()
        assert time.monotonic() - start < WALL_CLOCK_BOUND


class TestGracefulDegradation:
    def test_no_workers_falls_back_to_local_executor(self):
        expected = serial_outputs()
        engine = ClusterEngine(
            bind="127.0.0.1:0",
            n_workers=1,
            connect_timeout=0.3,
            shared=False,
            fallback="serial",
        )
        try:
            outputs, _ = engine.run(RowSumJob(MATRIX), INPUTS)
        finally:
            engine.close()
        assert outputs == expected
        assert engine.last_run_fallback is not None
        assert "worker" in engine.last_run_fallback

    def test_no_workers_without_fallback_is_typed(self):
        engine = ClusterEngine(
            bind="127.0.0.1:0", n_workers=1, connect_timeout=0.3, shared=False
        )
        try:
            with pytest.raises(ClusterUnavailableError):
                engine.run(RowSumJob(MATRIX), INPUTS)
        finally:
            engine.close()
        assert engine.last_run_fallback is None

    def test_all_workers_lost_mid_run_falls_back(self):
        expected = serial_outputs()
        with local_cluster(
            2,
            min_artifact_bytes=1024,
            fault_plan="worker.compute:crash:role=worker",
            retry_seconds=1.0,
            fallback="serial",
        ) as engine:
            outputs, _ = engine.run(RowSumJob(MATRIX), INPUTS)
            fallback = engine.last_run_fallback
        assert outputs == expected
        assert fallback is not None and "died" in fallback

    def test_fallback_name_is_validated(self):
        with pytest.raises(MapReduceError, match="serial, thread, process"):
            ClusterEngine(bind="127.0.0.1:0", fallback="gpu")

    def test_repro_fallback_env_plumbs_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
        monkeypatch.setenv("REPRO_CLUSTER", "127.0.0.1:7219")
        monkeypatch.setenv("REPRO_FALLBACK", "process")
        assert default_engine().fallback == "process"
        monkeypatch.setenv("REPRO_FALLBACK", "gpu")
        with pytest.raises(MapReduceError, match="REPRO_FALLBACK"):
            default_engine()


HOUR = 3600


def tiny_corpus():
    """Two correlated city/hour data sets plus noise (a shrunken §6.2)."""
    from repro.core.corpus import Corpus
    from repro.data.dataset import Dataset
    from repro.data.schema import DatasetSchema
    from repro.spatial.city import CityModel
    from repro.spatial.resolution import SpatialResolution
    from repro.temporal.resolution import TemporalResolution

    rng = np.random.default_rng(5)
    n_hours = 240
    ts = np.arange(n_hours, dtype=np.int64) * HOUR
    t = np.arange(n_hours)
    a = 10 + 1.5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.2, n_hours)
    b = 5 + 0.8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.1, n_hours)
    for e in rng.choice(n_hours - 6, 10, replace=False):
        a[e : e + 4] += 8
        b[e : e + 4] += 6
    noise = 10 + rng.normal(0, 1.0, n_hours)

    def city_dataset(name, values):
        schema = DatasetSchema(
            name,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            numeric_attributes=("v",),
        )
        return Dataset(schema, timestamps=ts, numerics={"v": values})

    city = CityModel.synthetic(nbhd_grid=(2, 2), zip_grid=(2, 2))
    return Corpus(
        [city_dataset("alpha", a), city_dataset("beta", b), city_dataset("gamma", noise)],
        city,
    )


class TestPipelineUnderChaos:
    def test_index_and_query_survive_combined_faults(self):
        """The paper pipeline (index + query) under a combined plan: one
        corrupted artifact frame and one worker crash.  Results must stay
        bit-identical to serial."""
        from repro.temporal.resolution import TemporalResolution

        corpus = tiny_corpus()
        temporal = (TemporalResolution.HOUR,)
        serial_index = corpus.build_index(temporal=temporal)
        serial_result = serial_index.query(n_permutations=60, seed=3)

        start = time.monotonic()
        with local_cluster(
            2,
            fault_plan="seed=23;dataplane.serve:corrupt:times=1,role=coordinator",
            worker_env=[{ENV_VAR: "worker.compute:crash:after=2"}],
            retry_seconds=15.0,
        ) as engine:
            cluster_index = corpus.build_index(temporal=temporal, engine=engine)
            cluster_result = cluster_index.query(
                n_permutations=60, seed=3, engine=engine
            )
        assert time.monotonic() - start < 2 * WALL_CLOCK_BOUND

        assert (
            serial_result.n_evaluated,
            serial_result.n_candidates,
            serial_result.n_significant,
        ) == (
            cluster_result.n_evaluated,
            cluster_result.n_candidates,
            cluster_result.n_significant,
        )
        rows = lambda r: [  # noqa: E731
            (x.function1, x.function2, x.feature_type, x.score, x.strength, x.p_value)
            for x in r.results
        ]
        assert rows(serial_result) == rows(cluster_result)
