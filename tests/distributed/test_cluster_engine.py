"""ClusterEngine contract tests on a real localhost cluster.

The contract mirrors the process executor's: bit-identical outputs to
serial for any deterministic job, job failures surfacing with the original
traceback (library errors keeping their type), and leak-free teardown —
plus the cluster-only pieces: the artifact data plane and the env plumbing
that registers ``executor="cluster"`` behind ``default_engine``.

Job classes live at module scope so workers can unpickle them by reference
(``local_cluster`` propagates ``sys.path`` to its workers).
"""

import os
import socket

import numpy as np
import pytest

from repro.distributed import ClusterEngine, local_cluster
from repro.mapreduce.engine import (
    LocalEngine,
    auto_chunk_size,
    default_engine,
)
from repro.mapreduce.job import Engine, MapReduceJob
from repro.utils.errors import MapReduceError, PersistError


class WordCount(MapReduceJob):
    def map(self, key, value):
        for word in value.split():
            yield word.lower(), 1

    def reduce(self, key, values):
        yield key, sum(values)


class OrderSensitiveJob(MapReduceJob):
    """Reduce output depends on value order: pins the shuffle guarantee."""

    def map(self, key, value):
        for i, v in enumerate(value):
            yield key % 3, (key, i, v)

    def reduce(self, key, values):
        yield key, tuple(values)


class ArraySumJob(MapReduceJob):
    """Ships a large matrix per input — exercises the artifact plane."""

    def map(self, key, value):
        yield key % 2, float(value.sum())

    def reduce(self, key, values):
        yield key, sum(values)


class ExplodingMapJob(MapReduceJob):
    def map(self, key, value):
        if key == 2:
            raise ValueError("planted map failure")
        yield key, value

    def reduce(self, key, values):
        yield key, values


class LibraryErrorJob(MapReduceJob):
    def map(self, key, value):
        raise PersistError("checksum mismatch for partition 3")

    def reduce(self, key, values):  # pragma: no cover - never reached
        yield key, values


DOCS = [(1, "the quick brown fox"), (2, "the lazy dog"), (3, "the quick dog")]


@pytest.fixture(scope="module")
def engine():
    with local_cluster(2) as cluster:
        yield cluster


class TestClusterEquivalence:
    def test_wordcount_matches_serial(self, engine):
        serial, _ = LocalEngine().run(WordCount(), DOCS)
        clustered, stats = engine.run(WordCount(), DOCS)
        assert clustered == serial
        assert stats.n_map_chunks >= 1
        assert len(stats.map_task_seconds) == stats.n_map_chunks
        assert len(stats.reduce_task_seconds) == len(dict(serial))
        assert stats.n_outputs == len(serial)

    @pytest.mark.parametrize("chunk", [None, 2, "auto"])
    def test_order_sensitive_reduce_is_stable(self, engine, chunk):
        inputs = [(k, list(range(k + 1))) for k in range(10)]
        serial, _ = LocalEngine().run(OrderSensitiveJob(), inputs)
        engine.map_chunk_size = chunk
        try:
            clustered, _ = engine.run(OrderSensitiveJob(), inputs)
        finally:
            engine.map_chunk_size = "auto"
        assert clustered == serial

    def test_large_arrays_travel_through_the_plane(self, engine):
        rng = np.random.default_rng(3)
        big = rng.normal(0, 1, 50_000)  # 400 KB, well above the threshold
        inputs = [(i, big) for i in range(5)]
        serial, _ = LocalEngine().run(ArraySumJob(), inputs)
        clustered, _ = engine.run(ArraySumJob(), inputs)
        assert clustered == serial
        # The run's spool artifacts are gone the moment run() returns.
        spool = engine.coordinator.spool_dir
        assert list(spool.glob("*.npy")) == []

    def test_empty_input(self, engine):
        outputs, stats = engine.run(WordCount(), [])
        assert outputs == []
        assert stats.n_outputs == 0

    def test_concurrent_runs_share_the_cluster_safely(self, engine):
        """Two application threads driving one engine must not interleave
        frames on the worker sockets — phases take turns, results stay
        bit-identical for both runs."""
        import threading

        inputs_a = [(k, list(range(k + 1))) for k in range(8)]
        inputs_b = [(k, f"text {k} " * (k + 1)) for k in range(8)]
        serial_a, _ = LocalEngine().run(OrderSensitiveJob(), inputs_a)
        serial_b, _ = LocalEngine().run(WordCount(), inputs_b)
        results: dict[str, list] = {}

        def run(name, job, inputs):
            results[name], _ = engine.run(job, inputs)

        threads = [
            threading.Thread(
                target=run, args=("a", OrderSensitiveJob(), inputs_a)
            ),
            threading.Thread(target=run, args=("b", WordCount(), inputs_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert results["a"] == serial_a
        assert results["b"] == serial_b

    def test_implements_engine_contract(self, engine):
        assert isinstance(engine, Engine)
        assert engine.executor == "cluster"
        assert engine.n_workers == 2
        assert engine.is_parallel


class TestClusterErrors:
    def test_map_failure_carries_original_traceback(self, engine):
        with pytest.raises(MapReduceError) as excinfo:
            engine.run(ExplodingMapJob(), DOCS)
        message = str(excinfo.value)
        assert "ValueError: planted map failure" in message
        assert "Traceback (most recent call last)" in message
        assert "map task failed on cluster worker" in message

    def test_library_errors_keep_their_type(self, engine):
        with pytest.raises(PersistError, match="checksum mismatch") as excinfo:
            engine.run(LibraryErrorJob(), DOCS)
        cause = excinfo.value.__cause__
        assert isinstance(cause, MapReduceError)
        assert "Traceback (most recent call last)" in str(cause)

    def test_workers_survive_job_failures(self, engine):
        with pytest.raises(MapReduceError):
            engine.run(ExplodingMapJob(), DOCS)
        serial, _ = LocalEngine().run(WordCount(), DOCS)
        clustered, _ = engine.run(WordCount(), DOCS)
        assert clustered == serial
        assert len(engine.coordinator.alive_workers()) == 2


class TestTeardownHygiene:
    def test_local_cluster_teardown_is_leak_free(self):
        with local_cluster(2) as engine:
            serial, _ = LocalEngine().run(WordCount(), DOCS)
            clustered, _ = engine.run(WordCount(), DOCS)
            assert clustered == serial
            spool = engine.coordinator.spool_dir
            host, port = engine.address
            pids = engine.coordinator.worker_pids()
            assert len(pids) == 2
        # Spool directory removed...
        assert not spool.exists()
        # ...listener closed (nothing accepts on the port anymore)...
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0).close()
        # ...and both worker processes exited (reaped by local_cluster).
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestEngineValidationAndPlumbing:
    def test_local_engine_rejects_cluster_with_a_hint(self):
        with pytest.raises(MapReduceError, match="distributed backend"):
            LocalEngine(executor="cluster")

    def test_cluster_engine_validates_knobs(self):
        with pytest.raises(MapReduceError):
            ClusterEngine(bind="nonsense")
        with pytest.raises(MapReduceError):
            ClusterEngine(n_workers=0)
        with pytest.raises(MapReduceError):
            ClusterEngine(map_chunk_size="huge")
        with pytest.raises(MapReduceError):
            ClusterEngine(min_artifact_bytes=0)

    def test_auto_chunking_matches_process_sizing(self):
        assert auto_chunk_size(64, 4, "cluster") == 8
        assert auto_chunk_size(17, 4, "cluster") == 3
        assert auto_chunk_size(64, 1, "cluster") == 1

    def test_default_engine_builds_cluster_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CLUSTER", "127.0.0.1:7199")
        engine = default_engine()
        assert isinstance(engine, ClusterEngine)
        assert engine.executor == "cluster"
        assert engine.n_workers == 3
        assert engine.shared  # env-steered engines share one coordinator

    def test_explicit_cluster_argument_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.setenv("REPRO_CLUSTER", "127.0.0.1:7199")
        engine = default_engine(n_workers=2, executor="cluster")
        assert isinstance(engine, ClusterEngine)
        assert engine.n_workers == 2

    def test_invalid_repro_executor_names_variable_and_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(MapReduceError) as excinfo:
            default_engine()
        message = str(excinfo.value)
        assert "REPRO_EXECUTOR" in message
        for name in ("serial", "thread", "process", "cluster"):
            assert name in message
        assert "gpu" in message

    @pytest.mark.parametrize("bad", ["0", "-3", "many", "1.5"])
    def test_invalid_repro_workers_names_variable(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(MapReduceError) as excinfo:
            default_engine()
        message = str(excinfo.value)
        assert "REPRO_WORKERS" in message
        assert "integer >= 1" in message
        assert bad in message

    def test_invalid_repro_cluster_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
        monkeypatch.setenv("REPRO_CLUSTER", "not-an-address")
        with pytest.raises(MapReduceError, match="REPRO_CLUSTER"):
            default_engine()
