"""Fault-injection harness: plan grammar, counters, determinism, hooks."""

import math
import pickle
import socket

import pytest

from repro.distributed import faults
from repro.distributed.faults import (
    ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.distributed.retry import Backoff
from repro.utils.errors import MapReduceError


@pytest.fixture(autouse=True)
def pristine_injector():
    faults.uninstall()
    yield
    faults.uninstall()


class TestPlanGrammar:
    def test_parse_and_encode_round_trip(self):
        text = (
            "seed=7;worker.compute:crash;"
            "dataplane.serve:corrupt:times=2,after=1,role=coordinator;"
            "protocol.send:drop:msg=TaskStream;"
            "worker.compute:hang:seconds=5;"
            "protocol.recv:error:times=inf"
        )
        plan = FaultPlan.parse(text)
        assert plan.seed == 7
        assert len(plan.specs) == 5
        assert plan.specs[1].times == 2 and plan.specs[1].after == 1
        assert plan.specs[2].msg == "TaskStream"
        assert plan.specs[3].seconds == 5.0
        assert plan.specs[4].times == math.inf
        assert FaultPlan.parse(plan.encode()) == plan

    def test_blank_entries_and_whitespace_tolerated(self):
        plan = FaultPlan.parse("  ; worker.dial:error ;; seed=3 ;")
        assert plan.seed == 3
        assert [s.site for s in plan.specs] == ["worker.dial"]

    @pytest.mark.parametrize(
        "bad, fragment",
        [
            ("nowhere:crash", "unknown fault site"),
            ("worker.compute:explode", "unknown fault kind"),
            ("worker.compute:corrupt", "byte-carrying site"),
            ("worker.compute", "site:kind"),
            ("worker.compute:crash:bogus=1", "unknown fault option"),
            ("worker.compute:crash:times=x", "bad value"),
            ("seed=x", "seed must be an integer"),
            ("worker.compute:crash:role=driver", "role"),
            ("worker.compute:delay:times=0", "times"),
            ("worker.compute:delay:after=-1", "after"),
        ],
    )
    def test_bad_plans_raise_typed_errors(self, bad, fragment):
        with pytest.raises(MapReduceError, match=fragment):
            FaultPlan.parse(bad)

    def test_errors_name_the_environment_variable(self):
        with pytest.raises(MapReduceError, match=ENV_VAR):
            FaultPlan.parse("worker.compute:crash:bogus=1")

    def test_describe_mentions_each_rule(self):
        plan = FaultPlan.parse("seed=2;worker.dial:error:times=3,role=worker")
        text = plan.describe()
        assert "seed=2" in text
        assert "worker.dial" in text and "[worker]" in text


class TestCounters:
    def test_window_after_and_times(self):
        plan = FaultPlan.parse("worker.compute:error:after=2,times=2")
        injector = FaultInjector(plan, role="worker")
        outcomes = []
        for _ in range(6):
            try:
                injector.fire("worker.compute")
                outcomes.append("ok")
            except OSError:
                outcomes.append("err")
        # Events 0,1 pass, 2,3 fire, 4,5 pass again.
        assert outcomes == ["ok", "ok", "err", "err", "ok", "ok"]
        assert injector.fired["worker.compute:error"] == 2

    def test_role_filter(self):
        plan = FaultPlan.parse("worker.compute:error:role=coordinator")
        worker_side = FaultInjector(plan, role="worker")
        worker_side.fire("worker.compute")  # filtered out: no raise
        coordinator_side = FaultInjector(plan, role="coordinator")
        with pytest.raises(OSError, match="injected fault"):
            coordinator_side.fire("worker.compute")

    def test_msg_filter_counts_only_matching_frames(self):
        plan = FaultPlan.parse("protocol.send:error:msg=TaskStream")
        injector = FaultInjector(plan, role="coordinator")
        a, b = socket.socketpair()
        try:
            assert injector.frame_out(a, b"x", "Heartbeat") == b"x"
            with pytest.raises(OSError):
                injector.frame_out(a, b"x", "TaskStream")
        finally:
            a.close()
            b.close()

    def test_first_matching_spec_wins(self):
        plan = FaultPlan.parse("worker.dial:delay:seconds=0;worker.dial:error")
        injector = FaultInjector(plan, role="worker")
        injector.fire("worker.dial")  # delay (first) claims the event
        with pytest.raises(OSError):
            injector.fire("worker.dial")  # delay exhausted; error claims


class TestByteFaults:
    def test_frame_corrupt_is_deterministic_and_detectable(self):
        payload = pickle.dumps(("message", list(range(100))))
        mangled = []
        for _ in range(2):
            plan = FaultPlan.parse("seed=11;protocol.send:corrupt")
            injector = FaultInjector(plan, role="coordinator")
            a, b = socket.socketpair()
            try:
                mangled.append(injector.frame_out(a, payload, "Task"))
            finally:
                a.close()
                b.close()
        assert mangled[0] == mangled[1]  # same seed, same flip
        assert mangled[0] != payload
        # The flip lands in the pickle header, so the receiver *fails*
        # instead of silently unpickling different data.
        with pytest.raises(Exception):
            pickle.loads(mangled[0])

    def test_artifact_corrupt_flips_one_byte_anywhere(self):
        data = bytes(range(256)) * 64
        plan = FaultPlan.parse("seed=5;dataplane.serve:corrupt")
        injector = FaultInjector(plan, role="coordinator")
        out = injector.bytes_out("dataplane.serve", data)
        assert len(out) == len(data)
        assert sum(x != y for x, y in zip(out, data)) == 1

    def test_artifact_truncate_halves_the_payload(self):
        plan = FaultPlan.parse("dataplane.serve:truncate")
        injector = FaultInjector(plan, role="coordinator")
        assert injector.bytes_out("dataplane.serve", b"abcdefgh") == b"abcd"

    def test_frame_truncate_is_a_genuine_mid_frame_eof(self):
        from repro.distributed import protocol

        plan = FaultPlan.parse("protocol.send:truncate")
        faults.install(plan, role="coordinator")
        a, b = socket.socketpair()
        try:
            with pytest.raises(protocol.WireError, match="sending"):
                protocol.send_msg(a, ("hello", 42))
            with pytest.raises(protocol.WireError, match="mid-frame"):
                protocol.recv_msg(b)
        finally:
            for sock in (a, b):
                try:
                    sock.close()
                except OSError:
                    pass


class TestInstallation:
    def test_hooks_inert_without_injector(self):
        assert faults.INJECTOR is None
        faults.fire("worker.compute")  # no-op
        assert faults.bytes_out("dataplane.serve", b"data") == b"data"

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "seed=9;worker.dial:error:times=inf")
        injector = faults.install_from_env(role="worker")
        assert injector is faults.INJECTOR
        with pytest.raises(OSError):
            faults.fire("worker.dial")

    def test_install_from_env_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert faults.install_from_env(role="worker") is None
        assert faults.INJECTOR is None

    def test_install_from_env_does_not_replace_existing(self, monkeypatch):
        first = faults.install(FaultPlan(), role="coordinator")
        monkeypatch.setenv(ENV_VAR, "worker.dial:error")
        assert faults.install_from_env(role="worker") is first

    def test_injector_rejects_unknown_role(self):
        with pytest.raises(MapReduceError, match="role"):
            FaultInjector(FaultPlan(), role="driver")


class TestBackoff:
    def test_full_jitter_doubles_ceiling_up_to_cap(self):
        backoff = Backoff(base=0.1, cap=0.4)
        ceilings = [backoff.ceiling() for _ in range(4)]
        assert ceilings[0] == pytest.approx(0.1)
        for _ in range(4):
            delay = backoff.next_delay()
            assert 0 <= delay <= 0.4
        assert backoff.ceiling() == pytest.approx(0.4)  # capped
        backoff.reset()
        assert backoff.ceiling() == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(MapReduceError):
            Backoff(base=0)
        with pytest.raises(MapReduceError):
            Backoff(base=1.0, cap=0.5)
