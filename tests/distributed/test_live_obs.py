"""Live observability on a real cluster: heartbeat metrics shipping,
/healthz liveness, the heartbeat-interval knob, and v2.2 interop.

The heavier end-to-end exporter scrape lives in scripts/ci_obs.py; these
tests pin the library-level contracts on small real clusters.
"""

import time

import pytest

from repro import obs
from repro.distributed import ClusterEngine, local_cluster
from repro.distributed.protocol import Heartbeat
from repro.distributed.worker import run_worker
from repro.mapreduce.job import MapReduceJob
from repro.utils.errors import MapReduceError


class WordCount(MapReduceJob):
    def map(self, key, value):
        for word in value.split():
            yield word.lower(), 1

    def reduce(self, key, values):
        yield key, sum(values)


DOCS = [(1, "the quick brown fox"), (2, "the lazy dog"), (3, "the quick dog")]


class TestHeartbeatShipping:
    def test_worker_metrics_arrive_in_the_fleet_registry(self):
        with local_cluster(2) as engine:
            engine.run(WordCount(), DOCS)
            coordinator = engine.coordinator
            # Deltas ride the 1 s heartbeat cadence; wait for both
            # workers' task counters to land in the fleet aggregator.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                merged = coordinator.fleet.fleet_registry()
                done = sum(
                    c.value for c in merged.counters("repro.worker.tasks")
                )
                if done >= len(DOCS) and len(coordinator.fleet.worker_ids()) == 2:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("worker metrics never converged in the fleet")
            assert sorted(coordinator.fleet.worker_ids()) == ["host0", "host1"]
            # Per-worker replicas carry the same counters the workers saw.
            total = 0
            for worker_id in coordinator.fleet.worker_ids():
                replica = coordinator.fleet.worker_registry(worker_id)
                total += sum(
                    c.value for c in replica.counters("repro.worker.tasks")
                )
            assert total >= len(DOCS)

    def test_healthz_reports_every_worker_live(self):
        with local_cluster(2) as engine:
            engine.run(WordCount(), DOCS)
            health = engine.coordinator.health_snapshot()
            assert health["status"] == "ok"
            assert health["live_workers"] == 2
            assert sorted(health["workers"]) == ["host0", "host1"]
            for info in health["workers"].values():
                assert info["live"] is True
                assert info["connected"] is True
                assert info["heartbeat_age_seconds"] >= 0.0
            assert health["quarantined_inputs"] == []


class TestHeartbeatIntervalKnob:
    def test_engine_rejects_nonpositive_interval(self):
        with pytest.raises(MapReduceError, match="heartbeat_interval"):
            ClusterEngine(bind="127.0.0.1:0", heartbeat_interval=0)
        with pytest.raises(MapReduceError, match="heartbeat_interval"):
            ClusterEngine(bind="127.0.0.1:0", heartbeat_interval=-1.0)

    def test_engine_rejects_interval_at_or_above_timeout(self):
        with pytest.raises(MapReduceError, match="below"):
            ClusterEngine(
                bind="127.0.0.1:0", heartbeat_interval=5.0, heartbeat_timeout=5.0
            )

    def test_worker_rejects_nonpositive_interval(self):
        with pytest.raises(MapReduceError, match="heartbeat_interval"):
            run_worker("127.0.0.1:1", heartbeat_interval=0.0)

    def test_fast_heartbeats_still_run_jobs(self):
        # A 50 ms cadence is 20x the default: the job must still complete
        # and deltas must not corrupt the fleet (dedup by seq).
        with local_cluster(1, heartbeat_interval=0.05) as engine:
            clustered, _ = engine.run(WordCount(), DOCS)
            assert dict(clustered)["the"] == 3


class TestProtocolInterop:
    def test_v22_heartbeat_without_new_fields_is_tolerated(self):
        # A v2.2 peer's Heartbeat lacks seq/metrics entirely; the
        # coordinator reads them with getattr gating, so the legacy shape
        # must keep meaning "no delta attached".
        legacy = Heartbeat(worker_id="old")
        del legacy.seq
        del legacy.metrics
        assert getattr(legacy, "metrics", None) is None
        fleet = obs.FleetAggregator()
        assert fleet.apply("old", getattr(legacy, "metrics", None)) is False
        assert fleet.worker_ids() == []

    def test_new_fields_default_to_inert(self):
        # v2.3 fields are additive: default construction ships nothing.
        heartbeat = Heartbeat(worker_id="w")
        assert heartbeat.seq == 0
        assert heartbeat.metrics is None
