"""Coordinator fault handling: worker death mid-task, retry, containment.

The contract (ISSUE satellite): kill a worker mid-map and the task must be
retried on another worker, the run must complete **bit-identically** to
serial, and teardown must leak neither spool files nor sockets.  A task
whose input reliably kills every host it touches must fail the run with a
:class:`MapReduceError` (never hang), and a worker death must never be
confused with a job bug.

Each test spawns its own cluster — fault injection leaves corpses behind,
and the shared session cluster must stay healthy for other tests.
"""

import os
import socket

import pytest

from repro.distributed import local_cluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import MapReduceJob
from repro.utils.errors import MapReduceError


class DieOnceMidMapJob(MapReduceJob):
    """Kills its host the first time the marked input is mapped.

    The sentinel file makes the kill happen exactly once across the whole
    cluster: the first worker to map input 2 writes the flag and dies
    (``os._exit`` — no exception, no result, a real SIGKILL-like loss);
    the retry on another worker sees the flag and proceeds normally.
    """

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def map(self, key, value):
        if key == 2 and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as handle:
                handle.write("died here")
            os._exit(23)
        yield key % 2, (key, value)

    def reduce(self, key, values):
        yield key, tuple(values)


class AlwaysDieJob(MapReduceJob):
    """Every map task kills its host — no cluster can finish this."""

    def map(self, key, value):
        os._exit(17)

    def reduce(self, key, values):  # pragma: no cover - never reached
        yield key, values


class DieOnceInReduceJob(MapReduceJob):
    """Same die-once discipline, but in the reduce phase."""

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def map(self, key, value):
        yield key % 2, (key, value)

    def reduce(self, key, values):
        if key == 0 and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as handle:
                handle.write("died here")
            os._exit(23)
        yield key, tuple(values)


INPUTS = [(i, f"record {i}") for i in range(6)]


def serial_reference(job_factory):
    """Serial output of a die-once job with its trigger pre-disarmed."""
    disarmed = job_factory("/dev/null")  # exists, so the trigger never fires
    outputs, _ = LocalEngine().run(disarmed, INPUTS)
    return outputs


class TestWorkerDeathMidRun:
    def test_map_task_retried_on_another_worker(self, tmp_path):
        expected = serial_reference(DieOnceMidMapJob)
        with local_cluster(3) as engine:
            before = set(engine.coordinator.worker_pids())
            assert len(before) == 3
            outputs, stats = engine.run(DieOnceMidMapJob(tmp_path / "map-died"), INPUTS)
            # Bit-identical completion despite losing a worker mid-map.
            assert outputs == expected
            assert (tmp_path / "map-died").exists()
            # The task really was retried elsewhere: one retry recorded,
            # one worker gone, the survivors carried the run.
            assert engine.last_run_retries == 1
            assert engine.coordinator.total_retries == 1
            after = set(engine.coordinator.worker_pids())
            assert after < before and len(after) == 2
            # Per-task accounting stayed consistent (no double counting).
            assert len(stats.map_task_seconds) == stats.n_map_chunks

    def test_reduce_task_retried_on_another_worker(self, tmp_path):
        expected = serial_reference(DieOnceInReduceJob)
        with local_cluster(3) as engine:
            outputs, _ = engine.run(
                DieOnceInReduceJob(tmp_path / "reduce-died"), INPUTS
            )
            assert outputs == expected
            assert engine.last_run_retries == 1
            assert len(engine.coordinator.alive_workers()) == 2

    def test_cluster_keeps_serving_after_a_death(self, tmp_path):
        expected = serial_reference(DieOnceMidMapJob)
        with local_cluster(2) as engine:
            outputs, _ = engine.run(DieOnceMidMapJob(tmp_path / "died"), INPUTS)
            assert outputs == expected
            # A fresh run on the surviving worker, no full-strength barrier.
            again, _ = engine.run(DieOnceMidMapJob(tmp_path / "died"), INPUTS)
            assert again == expected

    def test_task_that_kills_every_host_fails_the_run(self):
        with local_cluster(2) as engine:
            with pytest.raises(MapReduceError) as excinfo:
                engine.run(AlwaysDieJob(), INPUTS)
            message = str(excinfo.value)
            assert "died" in message or "lost" in message

    def test_fault_runs_leak_nothing(self, tmp_path):
        with local_cluster(3) as engine:
            engine.run(DieOnceMidMapJob(tmp_path / "died"), INPUTS)
            spool = engine.coordinator.spool_dir
            host, port = engine.address
            survivors = engine.coordinator.worker_pids()
            assert spool.exists()
            assert list(spool.glob("*.npy")) == []  # plane drained per run
        assert not spool.exists()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0).close()
        for pid in survivors:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
