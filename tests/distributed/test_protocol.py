"""Wire-protocol framing: round trips, EOF discipline, garbage rejection."""

import socket
import threading

import pytest

from repro.distributed import protocol
from repro.distributed.protocol import (
    Heartbeat,
    Hello,
    Task,
    TaskResult,
    WireError,
    parse_address,
)
from repro.utils.errors import MapReduceError


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_message_round_trip(self, pair):
        a, b = pair
        sent = Task(task_id=7, payload=b"x" * 1000)
        protocol.send_msg(a, sent)
        received = protocol.recv_msg(b)
        assert isinstance(received, Task)
        assert received.task_id == 7
        assert received.payload == sent.payload

    def test_multiple_messages_keep_boundaries(self, pair):
        a, b = pair
        messages = [Heartbeat(worker_id=f"w{i}") for i in range(5)]
        for message in messages:
            protocol.send_msg(a, message)
        received = [protocol.recv_msg(b) for _ in messages]
        assert [m.worker_id for m in received] == [m.worker_id for m in messages]

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert protocol.recv_msg(b) is None

    def test_mid_frame_eof_raises(self, pair):
        a, b = pair
        # A length prefix promising bytes that never arrive.
        a.sendall((1000).to_bytes(8, "big") + b"only-a-little")
        a.close()
        with pytest.raises(WireError, match="mid-frame"):
            protocol.recv_msg(b)

    def test_oversized_length_prefix_rejected(self, pair):
        a, b = pair
        a.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
        with pytest.raises(WireError, match="cap"):
            protocol.recv_msg(b)

    def test_garbage_payload_rejected(self, pair):
        a, b = pair
        junk = b"this is not a pickle"
        a.sendall(len(junk).to_bytes(8, "big") + junk)
        with pytest.raises(WireError, match="unpickle"):
            protocol.recv_msg(b)

    def test_large_frame_round_trip(self, pair):
        a, b = pair
        payload = bytes(range(256)) * 8192  # 2 MiB, bigger than one recv
        done = []

        def sender():
            protocol.send_msg(a, Task(task_id=1, payload=payload))
            done.append(True)

        thread = threading.Thread(target=sender)
        thread.start()
        received = protocol.recv_msg(b)
        thread.join(timeout=10)
        assert done and received.payload == payload


class TestPreamble:
    def test_round_trip(self, pair):
        a, b = pair
        protocol.send_preamble(a)
        protocol.recv_preamble(b)  # no raise

    def test_wrong_magic_rejected(self, pair):
        a, b = pair
        a.sendall(b"HTTP/")
        with pytest.raises(WireError, match="not a repro cluster"):
            protocol.recv_preamble(b)

    def test_version_mismatch_rejected(self, pair):
        a, b = pair
        a.sendall(protocol.MAGIC + bytes([protocol.PROTOCOL_VERSION + 1]))
        with pytest.raises(WireError, match="version"):
            protocol.recv_preamble(b)


class TestResultMessage:
    def test_error_result_carries_original_exception(self, pair):
        a, b = pair
        original = ValueError("planted")
        protocol.send_msg(
            a,
            TaskResult(
                task_id=3, status="err", traceback="tb-text", original=original
            ),
        )
        received = protocol.recv_msg(b)
        assert received.status == "err"
        assert isinstance(received.original, ValueError)
        assert str(received.original) == "planted"


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:7077") == ("127.0.0.1", 7077)
        assert parse_address("node-3.cluster:0") == ("node-3.cluster", 0)

    @pytest.mark.parametrize(
        "bad", ["7077", "host:", ":7077", "host:port", "host:-1", "host:70777"]
    )
    def test_bad_addresses_name_the_source(self, bad):
        with pytest.raises(MapReduceError) as excinfo:
            parse_address(bad, variable="REPRO_CLUSTER")
        assert "REPRO_CLUSTER" in str(excinfo.value)

    def test_hello_is_picklable_dataclass(self):
        hello = Hello(worker_id="w", pid=1, host="h")
        assert hello.worker_id == "w"
